"""Static verification overhead on the compile path.

Pass-pipeline validation (``REPRO_VERIFY_IR=1`` / ``ExecOptions(verify_ir=
True)``) re-runs the IR verifier after every optimization pass that changed
the function and checks every bytecode translation.  For that to be usable
as an always-on CI default -- and cheap enough to leave on in production
debugging sessions -- the whole verification layer must stay a small
fraction of the compile time it guards.  This benchmark compiles the worker
functions of representative TPC-H queries cold, with verification off vs
on, and asserts the overhead stays below 5%.  A "compile" here is the full
tier ladder the adaptive engine walks for a hot worker: bytecode
translation, the unoptimized tier, then the optimized tier.

Methodology: the two configurations are timed back to back *per worker
function* (so a machine-load burst has to land inside one half of a pair
to skew it), many samples are taken, and the per-function *minimum* time
per configuration is compared -- the minimum is the least noisy location
estimate for a quantity with one-sided noise.

Run as a script (CI smoke): ``python benchmarks/bench_verify_overhead.py``
Run under pytest for the benchmark fixture: ``pytest benchmarks/bench_verify_overhead.py``
Environment: ``REPRO_BENCH_TINY=1`` shrinks the workload, ``REPRO_BENCH_FULL=1`` grows it.
"""

from __future__ import annotations

import os
import sys
import time

_HERE = os.path.dirname(os.path.abspath(__file__))
for _path in (os.path.join(os.path.dirname(_HERE), "src"), _HERE):
    if _path not in sys.path:
        sys.path.insert(0, _path)

from repro.analysis import verify_bytecode  # noqa: E402
from repro.backend import compile_function  # noqa: E402
from repro.vm import translate_function  # noqa: E402
from repro.workloads import TPCH_QUERIES, populate_tpch  # noqa: E402

TINY = os.environ.get("REPRO_BENCH_TINY", "") == "1"
FULL = os.environ.get("REPRO_BENCH_FULL", "") == "1"

#: Representative compile workload: a scan-aggregate (q1), a 3-way join
#: (q3) and a correlated-shape aggregate (q17) cover the range of worker
#: function sizes the planner emits.
QUERIES = [1, 3, 17]
ITERATIONS = 3 if TINY else (12 if FULL else 6)
TRIALS = 3 if TINY else 5
MAX_OVERHEAD = 0.05


def build_workers():
    """Plan the benchmark queries once; return their worker functions."""
    db = populate_tpch(scale_factor=0.005, seed=3)
    functions = []
    for number in QUERIES:
        generated, _, _ = db.generate(TPCH_QUERIES[number])
        functions.extend(generated.module.functions.values())
    return functions


def compile_once(function, verify: bool) -> float:
    """One cold compile through the engine's full tier ladder.

    This is exactly what the adaptive engine does for a worker that
    escalates all the way: translate to bytecode (plus the bytecode
    verifier when validation is on), compile the unoptimized tier, then
    the optimized tier (with per-pass IR re-verification when on).
    ``clone=True`` (the default) keeps the pristine IR intact, so every
    call compiles the same cold input.
    """
    start = time.perf_counter()
    bytecode, _ = translate_function(function)
    if verify:
        verify_bytecode(bytecode)
    compile_function(function, "unoptimized")
    compile_function(function, "optimized", verify=verify)
    return time.perf_counter() - start


def run_benchmark(report=print) -> dict:
    from conftest import fmt_ms, print_table

    functions = build_workers()
    samples = TRIALS * ITERATIONS

    # Warm both code paths (imports, regex caches) before measuring.
    for function in functions:
        compile_once(function, verify=False)
        compile_once(function, verify=True)

    best_off = [float("inf")] * len(functions)
    best_on = [float("inf")] * len(functions)
    for _ in range(samples):
        for i, function in enumerate(functions):
            off = compile_once(function, verify=False)
            on = compile_once(function, verify=True)
            if off < best_off[i]:
                best_off[i] = off
            if on < best_on[i]:
                best_on[i] = on

    total_off = sum(best_off)
    total_on = sum(best_on)
    overhead = total_on / total_off - 1.0
    per_compile_us = (total_on - total_off) / len(functions) * 1e6

    print_table(
        f"Static verification overhead, cold tier-ladder compiles "
        f"({len(functions)} workers from TPC-H q{QUERIES}, "
        f"{samples} paired samples each)",
        ["verify_ir", "sum of best ms", "mean per compile ms"],
        [["off", fmt_ms(total_off), fmt_ms(total_off / len(functions))],
         ["on", fmt_ms(total_on), fmt_ms(total_on / len(functions))]])
    report(f"overhead {overhead * 100:+.2f}% "
           f"({per_compile_us:+.1f} us/compile, "
           f"limit {MAX_OVERHEAD * 100:.0f}%)")

    return {"overhead": overhead, "best_off": total_off,
            "best_on": total_on, "workers": len(functions)}


# --------------------------------------------------------------------------- #
# pytest entry points
# --------------------------------------------------------------------------- #
def test_verify_overhead_under_limit():
    metrics = run_benchmark()
    assert metrics["overhead"] < MAX_OVERHEAD, metrics


def test_cold_compile_with_verification(benchmark):
    functions = build_workers()
    target = max(functions, key=lambda fn: fn.instruction_count())
    benchmark(lambda: compile_function(target, "optimized", verify=True))


if __name__ == "__main__":
    metrics = run_benchmark()
    ok = metrics["overhead"] < MAX_OVERHEAD
    print(f"\nverification overhead {metrics['overhead'] * 100:+.2f}% "
          f"(< {MAX_OVERHEAD * 100:.0f}% required) -- "
          f"{'PASS' if ok else 'FAIL'}")
    sys.exit(0 if ok else 1)
