"""Partition-parallel pipeline breakers: lock-free hot path, batch kernels.

Two properties of the breaker refactor are asserted here:

1. **Zero lock acquisitions on the aggregation hot path.**  A 4-worker
   parallel GROUP BY with the default partitioned layout accumulates into
   per-worker-slot partials and merges per partition; the only lock left in
   the breaker runtime is the escape hatch's fallback lock, whose
   acquisitions are counted per execution.  The partitioned run must report
   exactly 0 (the single-table run, measured alongside, takes it once per
   input row).

2. **>= 2x vectorized group-by throughput from the numpy batch kernels.**
   The column engine's multi-key grouping used to build Python key tuples
   row by row and reduce MIN/MAX with a per-group mask loop; the batch
   kernels factorize the key columns into int64 codes and reduce via
   ``bincount``/``reduceat``.  Both paths still exist
   (``VectorizedEngine(use_batch_kernels=False)`` is the reference), so the
   speedup is measured old-vs-new on identical plans and data.

Run as a script (CI smoke, tiny scale): ``python benchmarks/bench_pipeline_breakers.py``
Run under pytest for the benchmark fixture: ``pytest benchmarks/bench_pipeline_breakers.py``
Environment: ``REPRO_BENCH_TINY=1`` shrinks the table, ``REPRO_BENCH_FULL=1`` grows it.
"""

from __future__ import annotations

import os
import sys
import time

_HERE = os.path.dirname(os.path.abspath(__file__))
for _path in (os.path.join(os.path.dirname(_HERE), "src"), _HERE):
    if _path not in sys.path:
        sys.path.insert(0, _path)

from repro import Database, SQLType  # noqa: E402
from repro.baselines import VectorizedEngine  # noqa: E402
from repro.options import ExecOptions  # noqa: E402

TINY = os.environ.get("REPRO_BENCH_TINY", "") == "1"
FULL = os.environ.get("REPRO_BENCH_FULL", "") == "1"

ROWS = 40_000 if TINY else (800_000 if FULL else 200_000)
REPEATS = 3
WORKERS = 4

#: Multi-key grouping with MIN/MAX: the shapes whose legacy vectorized path
#: is row-at-a-time (object-tuple keys, per-group mask loops).
GROUP_SQL = ("select region, item, count(*), sum(amount), "
             "min(amount), max(amount) from sales group by region, item")


def build_database() -> Database:
    # result_cache_size=0: lock counts and kernel timings only exist on a
    # real execution; the fallback run repeats the partitioned run's SQL.
    db = Database(morsel_size=4096, workers=WORKERS, result_cache_size=0)
    db.create_table("sales", [("region", SQLType.INT64),
                              ("item", SQLType.INT64),
                              ("amount", SQLType.FLOAT64)])
    db.insert("sales", [(i % 13, (i * 7) % 29, float(i % 1013) * 0.5)
                        for i in range(ROWS)], encode=False)
    return db


# --------------------------------------------------------------------------- #
# part 1: lock-free parallel aggregation
# --------------------------------------------------------------------------- #
def measure_lock_freedom(db: Database) -> dict:
    partitioned = ExecOptions(mode="bytecode", threads=WORKERS)
    single_table = ExecOptions(mode="bytecode", threads=WORKERS,
                               use_partitioned_breakers=False)
    hot = db.execute(GROUP_SQL, options=partitioned)       # warm tiers/cache
    cold = db.execute(GROUP_SQL, options=single_table)
    assert hot.rows == cold.rows
    return {
        "partitions": hot.stats["breaker_partitions"],
        "partial_entries": hot.stats["breaker_partial_entries"],
        "merge_seconds": hot.stats["breaker_merge_seconds"],
        "locks_partitioned": hot.stats["breaker_lock_acquisitions"],
        "locks_single_table": cold.stats["breaker_lock_acquisitions"],
    }


# --------------------------------------------------------------------------- #
# part 2: vectorized batch kernels
# --------------------------------------------------------------------------- #
def measure_vectorized_group_by(db: Database) -> dict:
    _, planning, _ = db.prepare(GROUP_SQL)
    plan = planning.physical
    batch = VectorizedEngine(db.catalog, use_batch_kernels=True)
    legacy = VectorizedEngine(db.catalog, use_batch_kernels=False)
    reference = batch.execute(plan)
    assert reference == legacy.execute(plan)

    def timed(engine) -> float:
        best = float("inf")
        for _ in range(REPEATS):
            start = time.perf_counter()
            engine.execute(plan)
            best = min(best, time.perf_counter() - start)
        return best

    legacy_seconds = timed(legacy)
    batch_seconds = timed(batch)
    return {
        "groups": len(reference),
        "legacy_seconds": legacy_seconds,
        "batch_seconds": batch_seconds,
        "speedup": legacy_seconds / max(batch_seconds, 1e-12),
    }


def run_benchmark(report=print) -> dict:
    from conftest import fmt_ms, print_table

    db = build_database()
    try:
        locks = measure_lock_freedom(db)
        group = measure_vectorized_group_by(db)
        print_table(
            f"Aggregation hot-path locking ({ROWS} rows, "
            f"{WORKERS} workers, bytecode tier)",
            ["layout", "lock acquisitions", "partitions", "merge ms"],
            [["partitioned (default)", str(locks["locks_partitioned"]),
              str(locks["partitions"]), fmt_ms(locks["merge_seconds"])],
             ["single-table fallback", str(locks["locks_single_table"]),
              "-", "-"]])
        print_table(
            f"Vectorized multi-key GROUP BY ({ROWS} rows, "
            f"{group['groups']} groups)",
            ["kernel", "best ms", "speedup"],
            [["row-at-a-time (legacy)", fmt_ms(group["legacy_seconds"]), ""],
             ["numpy batch", fmt_ms(group["batch_seconds"]),
              f"{group['speedup']:.1f}x"]])
        report(f"partitioned run took {locks['locks_partitioned']} locks "
               f"(0 required); batch kernels {group['speedup']:.1f}x "
               f"(>= 2x required)")
        return {"locks": locks, "group_by": group}
    finally:
        db.close()


def _acceptance(metrics) -> bool:
    return (metrics["locks"]["locks_partitioned"] == 0
            and metrics["locks"]["locks_single_table"] > 0
            and metrics["group_by"]["speedup"] >= 2.0)


# --------------------------------------------------------------------------- #
# pytest entry points
# --------------------------------------------------------------------------- #
def test_lock_free_hot_path_and_batch_kernel_speedup():
    metrics = run_benchmark()
    assert metrics["locks"]["locks_partitioned"] == 0, metrics["locks"]
    assert metrics["locks"]["locks_single_table"] > 0, metrics["locks"]
    assert metrics["locks"]["partitions"] >= 2, metrics["locks"]
    assert metrics["group_by"]["speedup"] >= 2.0, metrics["group_by"]


def test_parallel_partitioned_group_by_latency(benchmark):
    db = build_database()
    try:
        options = ExecOptions(mode="optimized", threads=WORKERS)
        db.execute(GROUP_SQL, options=options)  # warm

        def grouped():
            return db.execute(GROUP_SQL, options=options)

        result = benchmark(grouped)
        assert result.stats["breaker_lock_acquisitions"] == 0
    finally:
        db.close()


if __name__ == "__main__":
    metrics = run_benchmark()
    ok = _acceptance(metrics)
    print(f"\nlocks {metrics['locks']['locks_partitioned']} (0 required), "
          f"batch group-by {metrics['group_by']['speedup']:.1f}x "
          f"(>= 2x required) -- {'PASS' if ok else 'FAIL'}")
    sys.exit(0 if ok else 1)
