"""Fig. 2 -- compilation time vs execution time per execution mode (TPC-H Q1).

The paper's figure places the execution modes on a latency/throughput
trade-off curve: the LLVM IR interpreter has (almost) no compilation time but
extremely slow execution; the bytecode interpreter has tiny translation cost
and much better execution; unoptimized and optimized machine code cost
progressively more to produce and run progressively faster.  The reproduction
prints the same two columns for the four modes and asserts the ordering.
"""

from repro.workloads import TPCH_QUERIES

from conftest import fmt_ms, print_table

MODES = ["ir-interp", "bytecode", "unoptimized", "optimized"]


def test_fig2_latency_throughput_tradeoff(tpch_small, benchmark):
    sql = TPCH_QUERIES[1]
    # use_cache=False: the figure plots cold compile cost per mode.
    results = {mode: tpch_small.execute(sql, mode=mode, use_cache=False)
               for mode in MODES}

    rows = []
    for mode in MODES:
        result = results[mode]
        rows.append([mode, fmt_ms(result.timings.compile),
                     fmt_ms(result.timings.execution)])
    print_table("Fig. 2: compilation vs execution time, TPC-H Q1",
                ["mode", "compile [ms]", "execution [ms]"], rows)

    # Shape of the trade-off (paper Fig. 2):
    # compilation cost increases along the mode ladder ...
    assert results["bytecode"].timings.compile < \
        results["unoptimized"].timings.compile < \
        results["optimized"].timings.compile
    # ... while execution time decreases.
    assert results["ir-interp"].timings.execution > \
        results["bytecode"].timings.execution > \
        results["optimized"].timings.execution
    assert results["bytecode"].timings.execution >= \
        results["unoptimized"].timings.execution

    benchmark(lambda: tpch_small.execute(sql, mode="bytecode"))
