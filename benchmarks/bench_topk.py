"""Top-k output breaker: bounded heaps vs sort-then-slice, lock-free.

Three properties of the ORDER BY + LIMIT refactor are asserted here:

1. **>= 5x vectorized top-k throughput.**  The column engine used to
   materialise every output row as a Python tuple, sort all of them and
   slice; the batch preselection lexsorts the key *vectors*, keeps the
   ``limit`` candidate rows (plus boundary ties) and only materialises
   those.  Both paths still exist (``use_topk_breaker=False`` is the
   reference), so the speedup is measured old-vs-new on identical plans
   and data: LIMIT 100 over a million-row table.

2. **Zero lock acquisitions on the compiled engines' top-k hot path.**
   A 4-worker parallel ORDER BY + LIMIT accumulates into per-worker-slot
   bounded heaps (one ``heapq`` per slot, merged once at the end); the
   partitioned run must report exactly 0 breaker lock acquisitions.

3. **Bounded partials.**  The merged heap entries never exceed
   ``workers x limit`` rows -- the breaker never materialises the input.

Run as a script (CI smoke, tiny scale): ``python benchmarks/bench_topk.py``
Run under pytest for the benchmark fixture: ``pytest benchmarks/bench_topk.py``
Environment: ``REPRO_BENCH_TINY=1`` shrinks the table, ``REPRO_BENCH_FULL=1`` grows it.
"""

from __future__ import annotations

import os
import sys
import time

_HERE = os.path.dirname(os.path.abspath(__file__))
for _path in (os.path.join(os.path.dirname(_HERE), "src"), _HERE):
    if _path not in sys.path:
        sys.path.insert(0, _path)

from repro import Database, SQLType  # noqa: E402
from repro.options import ExecOptions  # noqa: E402

TINY = os.environ.get("REPRO_BENCH_TINY", "") == "1"
FULL = os.environ.get("REPRO_BENCH_FULL", "") == "1"

ROWS = 120_000 if TINY else (2_000_000 if FULL else 1_000_000)
LIMIT = 100
REPEATS = 3
WORKERS = 4

TOPK_SQL = (f"select ts, device, reading from events "
            f"order by reading desc, ts limit {LIMIT}")


def build_database() -> Database:
    # result_cache_size=0: the finish-strategy comparison re-runs one SQL
    # string; cached results would flatten both sides to cache latency.
    db = Database(morsel_size=4096, workers=WORKERS, result_cache_size=0)
    db.create_table("events", [("ts", SQLType.INT64),
                               ("device", SQLType.INT64),
                               ("reading", SQLType.FLOAT64)])
    db.insert("events", [(i, i % 97, float((i * 7919) % 100_003))
                         for i in range(ROWS)], encode=False)
    return db


# --------------------------------------------------------------------------- #
# part 1: vectorized batch top-k vs sort-then-slice
# --------------------------------------------------------------------------- #
def measure_vectorized_topk(db: Database) -> dict:
    breaker = ExecOptions(mode="vectorized")
    reference = ExecOptions(mode="vectorized", use_topk_breaker=False)
    fast = db.execute(TOPK_SQL, options=breaker)        # warm plan cache
    slow = db.execute(TOPK_SQL, options=reference)
    assert fast.rows == slow.rows
    assert len(fast.rows) == LIMIT

    def timed(options) -> float:
        best = float("inf")
        for _ in range(REPEATS):
            start = time.perf_counter()
            db.execute(TOPK_SQL, options=options)
            best = min(best, time.perf_counter() - start)
        return best

    slice_seconds = timed(reference)
    topk_seconds = timed(breaker)
    return {
        "rows": ROWS,
        "slice_seconds": slice_seconds,
        "topk_seconds": topk_seconds,
        "speedup": slice_seconds / max(topk_seconds, 1e-12),
    }


# --------------------------------------------------------------------------- #
# part 2: lock-free bounded heaps in the compiled engines
# --------------------------------------------------------------------------- #
def measure_parallel_heaps(db: Database) -> dict:
    partitioned = ExecOptions(mode="bytecode", threads=WORKERS)
    single_table = ExecOptions(mode="bytecode", threads=WORKERS,
                               use_partitioned_breakers=False)
    heap = db.execute(TOPK_SQL, options=partitioned)     # warm tiers/cache
    fallback = db.execute(TOPK_SQL, options=single_table)
    slice_run = db.execute(
        TOPK_SQL, options=ExecOptions(mode="bytecode", threads=WORKERS,
                                      use_topk_breaker=False))
    assert heap.rows == fallback.rows == slice_run.rows
    return {
        "locks_partitioned": heap.stats["breaker_lock_acquisitions"],
        "locks_single_table": fallback.stats["breaker_lock_acquisitions"],
        "partial_entries": heap.stats["breaker_partial_entries"],
        "partial_bound": WORKERS * LIMIT,
    }


def run_benchmark(report=print) -> dict:
    from conftest import fmt_ms, print_table

    db = build_database()
    try:
        topk = measure_vectorized_topk(db)
        heaps = measure_parallel_heaps(db)
        print_table(
            f"Vectorized ORDER BY + LIMIT {LIMIT} ({ROWS} rows)",
            ["finish strategy", "best ms", "speedup"],
            [["sort-then-slice (legacy)", fmt_ms(topk["slice_seconds"]), ""],
             ["batch top-k preselection", fmt_ms(topk["topk_seconds"]),
              f"{topk['speedup']:.1f}x"]])
        print_table(
            f"Compiled top-k heaps ({ROWS} rows, {WORKERS} workers, "
            f"bytecode tier)",
            ["layout", "lock acquisitions", "heap entries (bound)"],
            [["per-worker heaps (default)",
              str(heaps["locks_partitioned"]),
              f"{heaps['partial_entries']} (<= {heaps['partial_bound']})"],
             ["single-heap fallback", str(heaps["locks_single_table"]),
              "-"]])
        report(f"batch top-k {topk['speedup']:.1f}x (>= 5x required); "
               f"partitioned run took {heaps['locks_partitioned']} locks "
               f"(0 required)")
        return {"topk": topk, "heaps": heaps}
    finally:
        db.close()


def _acceptance(metrics) -> bool:
    return (metrics["topk"]["speedup"] >= 5.0
            and metrics["heaps"]["locks_partitioned"] == 0
            and metrics["heaps"]["partial_entries"]
            <= metrics["heaps"]["partial_bound"])


# --------------------------------------------------------------------------- #
# pytest entry points
# --------------------------------------------------------------------------- #
def test_topk_speedup_and_lock_free_heaps():
    metrics = run_benchmark()
    assert metrics["topk"]["speedup"] >= 5.0, metrics["topk"]
    assert metrics["heaps"]["locks_partitioned"] == 0, metrics["heaps"]
    assert metrics["heaps"]["partial_entries"] <= \
        metrics["heaps"]["partial_bound"], metrics["heaps"]


def test_parallel_topk_latency(benchmark):
    db = build_database()
    try:
        options = ExecOptions(mode="optimized", threads=WORKERS)
        db.execute(TOPK_SQL, options=options)  # warm

        def topk():
            return db.execute(TOPK_SQL, options=options)

        result = benchmark(topk)
        assert result.stats["breaker_lock_acquisitions"] == 0
        assert len(result.rows) == LIMIT
    finally:
        db.close()


if __name__ == "__main__":
    metrics = run_benchmark()
    ok = _acceptance(metrics)
    print(f"\nbatch top-k {metrics['topk']['speedup']:.1f}x "
          f"(>= 5x required), locks "
          f"{metrics['heaps']['locks_partitioned']} (0 required) -- "
          f"{'PASS' if ok else 'FAIL'}")
    sys.exit(0 if ok else 1)
