"""Table I -- planning and compilation times across systems.

The paper compares plan preparation of PostgreSQL and MonetDB (planning only)
with HyPer's phases: planning, code generation, bytecode translation,
unoptimized and optimized compilation, for TPC-H Q1-Q5 plus the maximum over
all 22 queries.  The reproduction prints the same table using the Volcano and
vectorized baselines as the PostgreSQL / MonetDB stand-ins and the compiled
engine's phase timings for the remaining columns.
"""

from repro.workloads import TPCH_QUERIES

from conftest import fmt_ms, print_table, tpch_query_set


def _measure_query(db, sql):
    # use_cache=False: Table I reports cold planning/compilation phases.
    volcano = db.execute(sql, mode="volcano").timings
    vectorized = db.execute(sql, mode="vectorized").timings
    bytecode = db.execute(sql, mode="bytecode", use_cache=False).timings
    unoptimized = db.execute(sql, mode="unoptimized", use_cache=False).timings
    optimized = db.execute(sql, mode="optimized", use_cache=False).timings
    return {
        "pg_plan": volcano.planning,
        "monet_plan": vectorized.planning,
        "plan": optimized.planning,
        "cdg": optimized.codegen,
        "bc": bytecode.compile,
        "unopt": unoptimized.compile,
        "opt": optimized.compile,
    }


def test_table1_planning_and_compilation_times(tpch_small, benchmark):
    headers = ["TPC-H #", "PG plan", "Monet plan", "plan", "cdg.", "bc.",
               "unopt.", "opt."]
    rows = []
    maxima = {key: 0.0 for key in ("pg_plan", "monet_plan", "plan", "cdg",
                                   "bc", "unopt", "opt")}
    measured = {}
    for number in tpch_query_set():
        measured[number] = _measure_query(tpch_small, TPCH_QUERIES[number])
        for key in maxima:
            maxima[key] = max(maxima[key], measured[number][key])
    for number in [q for q in (1, 2, 3, 4, 5) if q in measured]:
        m = measured[number]
        rows.append([number, fmt_ms(m["pg_plan"]), fmt_ms(m["monet_plan"]),
                     fmt_ms(m["plan"]), fmt_ms(m["cdg"]), fmt_ms(m["bc"]),
                     fmt_ms(m["unopt"]), fmt_ms(m["opt"])])
    rows.append(["max", fmt_ms(maxima["pg_plan"]), fmt_ms(maxima["monet_plan"]),
                 fmt_ms(maxima["plan"]), fmt_ms(maxima["cdg"]),
                 fmt_ms(maxima["bc"]), fmt_ms(maxima["unopt"]),
                 fmt_ms(maxima["opt"])])
    print_table("Table I: planning and compilation times (ms)", headers, rows)

    # Paper's qualitative claims: bytecode generation is in the same league
    # as planning/code generation, machine-code compilation is roughly an
    # order of magnitude more expensive, and optimized compilation dominates.
    assert maxima["opt"] > maxima["unopt"] > maxima["bc"]
    assert maxima["opt"] > 3 * maxima["bc"]

    benchmark(lambda: tpch_small.prepare(TPCH_QUERIES[1]))
