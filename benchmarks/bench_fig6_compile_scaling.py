"""Fig. 6 -- compilation time as a function of the generated code size.

The paper shows a near-linear relationship between the number of LLVM
instructions of a query and its (un)optimized compilation time over all TPC-H
and TPC-DS queries (300 to 19,000 instructions).  The reproduction measures
the IR instruction count and per-tier preparation time of every TPC-H-derived
and TPC-DS-flavoured query, prints the series, fits the linear cost model the
adaptive policy uses, and checks that compile time grows with code size.
"""

from repro.backend import compile_optimized, compile_unoptimized
from repro.backend.cost_model import CostModel
from repro.vm import translate_function
from repro.workloads import TPCDS_QUERIES, TPCH_QUERIES

from conftest import fmt_ms, print_table, tpch_query_set


def _measure(db, label, sql):
    generated, _, _ = db.generate(sql)
    instructions = generated.instruction_count
    bytecode_seconds = 0.0
    unoptimized_seconds = 0.0
    optimized_seconds = 0.0
    for pipeline in generated.pipelines:
        _, stats = translate_function(pipeline.function)
        bytecode_seconds += stats.translation_seconds
        unoptimized_seconds += compile_unoptimized(pipeline.function).compile_seconds
        optimized_seconds += compile_optimized(pipeline.function).compile_seconds
    return [label, instructions, fmt_ms(bytecode_seconds),
            fmt_ms(unoptimized_seconds), fmt_ms(optimized_seconds),
            (instructions, bytecode_seconds, unoptimized_seconds,
             optimized_seconds)]


def test_fig6_compile_time_scaling(tpch_small, tpcds_small, benchmark):
    rows = []
    samples = []
    for number in tpch_query_set():
        row = _measure(tpch_small, f"TPC-H Q{number}", TPCH_QUERIES[number])
        samples.append(row.pop())
        rows.append(row)
    for number in sorted(TPCDS_QUERIES):
        row = _measure(tpcds_small, f"TPC-DS Q{number}", TPCDS_QUERIES[number])
        samples.append(row.pop())
        rows.append(row)

    rows.sort(key=lambda r: r[1])
    print_table("Fig. 6: compile time vs generated code size",
                ["query", "IR instructions", "bytecode [ms]",
                 "unoptimized [ms]", "optimized [ms]"], rows)

    # Fit the linear model (the paper's empirical cost function).
    model = CostModel()
    model.fit("unoptimized", [(n, u) for n, _, u, _ in samples])
    model.fit("optimized", [(n, o) for n, _, _, o in samples])
    print(f"fitted unoptimized: {model.estimates['unoptimized'].per_instruction_seconds * 1e6:.2f} us/instruction")
    print(f"fitted optimized:   {model.estimates['optimized'].per_instruction_seconds * 1e6:.2f} us/instruction")

    # Shape checks: compile time grows with code size, optimized > unoptimized
    # > bytecode for the largest queries.
    largest = max(samples, key=lambda s: s[0])
    smallest = min(samples, key=lambda s: s[0])
    assert largest[3] > smallest[3]          # optimized grows
    assert largest[3] > largest[2] > largest[1]

    benchmark(lambda: tpch_small.generate(TPCH_QUERIES[1]))
