"""Zone-map scan pruning: selective predicates skip whole storage chunks.

Chunked columnar storage gives every sealed chunk an exact min/max zone
map; a sargable filter over a *clustered* column (values correlated with
insertion order -- timestamps, auto-increment keys) therefore lets the scan
drop almost every chunk before any execution tier touches a row.  This is
storage-level acceleration: the same pruning serves the compiled tiers, the
bytecode VM, the adaptive executor and both interpretation baselines, with
no per-tier changes.

The benchmark runs one selective range predicate (matching < 5% of the
chunks) over a clustered column, pruned vs. ``use_pruning=False``, and
reports per-tier execution-time speedups plus the pruned-chunk fraction.

Acceptance (asserted below): >= 3x execution speedup on the interpreted
and compiled tiers, and > 80% of chunks pruned.

Run as a script (CI smoke, tiny scale): ``python benchmarks/bench_scan_pruning.py``
Run under pytest for the benchmark fixture: ``pytest benchmarks/bench_scan_pruning.py``
Environment: ``REPRO_BENCH_TINY=1`` shrinks the table, ``REPRO_BENCH_FULL=1`` grows it.
"""

from __future__ import annotations

import os
import sys
import time

_HERE = os.path.dirname(os.path.abspath(__file__))
for _path in (os.path.join(os.path.dirname(_HERE), "src"), _HERE):
    if _path not in sys.path:
        sys.path.insert(0, _path)

from repro import Database, SQLType  # noqa: E402
from repro.options import ExecOptions  # noqa: E402

TINY = os.environ.get("REPRO_BENCH_TINY", "") == "1"
FULL = os.environ.get("REPRO_BENCH_FULL", "") == "1"

CHUNK_ROWS = 1024
ROWS = 64 * CHUNK_ROWS if TINY else (512 * CHUNK_ROWS if FULL
                                     else 128 * CHUNK_ROWS)
#: The selective window: two chunks' worth of a clustered column, i.e.
#: ~1.6-3% of the chunks -- comfortably under the "< 5% of chunks" regime.
WINDOW = 2 * CHUNK_ROWS
REPEATS = 3

SQL = ("select count(*) as n, sum(v) as s from events "
       "where ts between ? and ?")
#: Tiers measured: the interpreted VM, the optimizing compiler backend and
#: the column-at-a-time baseline.  (All seven modes share the same scan
#: planner; correctness across all of them is covered by the test suite.)
MEASURED_MODES = ("bytecode", "optimized", "vectorized")
#: Modes the >= 3x acceptance is asserted on.  The vectorized baseline's
#: full scan is a handful of numpy kernels, so its (reported) gain is
#: real but smaller and noisier at CI scale.
ASSERTED_MODES = ("bytecode", "optimized")


def build_database() -> Database:
    # result_cache_size=0: this benchmark times repeated identical scans;
    # a result-cache hit would measure the cache, not the pruning.
    db = Database(morsel_size=4096, result_cache_size=0)
    db.catalog.create_table("events", [("ts", SQLType.INT64),
                                       ("v", SQLType.FLOAT64)],
                            chunk_rows=CHUNK_ROWS)
    # Clustered: ts follows insertion order (a timestamp/sequence column).
    db.insert("events", [(i, float(i % 1000) * 0.25) for i in range(ROWS)],
              encode=False)
    return db


def _window():
    begin = (ROWS // 2 // CHUNK_ROWS) * CHUNK_ROWS  # chunk-aligned middle
    return begin, begin + WINDOW - 1


def measure_mode(db: Database, mode: str) -> dict:
    """Execution seconds (pruned / unpruned) + pruning counters for a tier."""
    begin, end = _window()
    pruned_opts = ExecOptions(mode=mode)
    unpruned_opts = ExecOptions(mode=mode, use_pruning=False)

    def run(options):
        return db.execute(SQL, options=options, params=(begin, end))

    # Warm both paths: tier compilation and the plan-cache entry are paid
    # here, so the timed loop measures scanning, not preparation.
    reference = run(pruned_opts)
    full = run(unpruned_opts)
    assert reference.rows == full.rows

    pruned_seconds = 0.0
    unpruned_seconds = 0.0
    for _ in range(REPEATS):
        result = run(pruned_opts)
        pruned_seconds += result.timings.execution
        result_full = run(unpruned_opts)
        unpruned_seconds += result_full.timings.execution

    stats = reference.stats
    chunks_total = stats["chunks_pruned"] + stats["chunks_scanned"]
    return {
        "mode": mode,
        "pruned_seconds": pruned_seconds / REPEATS,
        "unpruned_seconds": unpruned_seconds / REPEATS,
        "speedup": unpruned_seconds / max(pruned_seconds, 1e-12),
        "chunks_pruned": stats["chunks_pruned"],
        "chunks_total": chunks_total,
        "pruned_fraction": stats["chunks_pruned"] / max(chunks_total, 1),
        "rows": reference.rows,
    }


def run_benchmark(report=print) -> dict:
    from conftest import fmt_ms, print_table

    db = build_database()
    try:
        results = [measure_mode(db, mode) for mode in MEASURED_MODES]
        begin, end = _window()
        fraction = results[0]["pruned_fraction"]
        print_table(
            f"Selective scan over a clustered column "
            f"({ROWS} rows, {CHUNK_ROWS}-row chunks, "
            f"ts BETWEEN {begin} AND {end})",
            ["tier", "unpruned ms", "pruned ms", "speedup", "chunks pruned"],
            [[r["mode"], fmt_ms(r["unpruned_seconds"]),
              fmt_ms(r["pruned_seconds"]), f"{r['speedup']:.1f}x",
              f"{r['chunks_pruned']}/{r['chunks_total']} "
              f"({r['pruned_fraction']:.0%})"]
             for r in results])
        report(f"window matches {WINDOW} rows "
               f"({WINDOW / ROWS:.1%} of the table); "
               f"{fraction:.0%} of chunks pruned")
        return {r["mode"]: r for r in results}
    finally:
        db.close()


def _acceptance(metrics) -> bool:
    return all(metrics[mode]["speedup"] >= 3.0
               and metrics[mode]["pruned_fraction"] > 0.8
               for mode in ASSERTED_MODES)


# --------------------------------------------------------------------------- #
# pytest entry points
# --------------------------------------------------------------------------- #
def test_pruning_speedup_and_fraction():
    metrics = run_benchmark()
    for mode in ASSERTED_MODES:
        assert metrics[mode]["speedup"] >= 3.0, metrics[mode]
        assert metrics[mode]["pruned_fraction"] > 0.8, metrics[mode]
    # Identical results in every measured mode, pruned or not.
    rows = {str(metrics[mode]["rows"]) for mode in MEASURED_MODES}
    assert len(rows) == 1, rows


def test_pruned_scan_latency(benchmark):
    db = build_database()
    try:
        begin, end = _window()
        options = ExecOptions(mode="optimized")
        db.execute(SQL, options=options, params=(begin, end))  # warm

        def scan():
            return db.execute(SQL, options=options, params=(begin, end))

        result = benchmark(scan)
        assert result.stats["chunks_pruned"] > 0
    finally:
        db.close()


if __name__ == "__main__":
    metrics = run_benchmark()
    ok = _acceptance(metrics)
    worst = min(metrics[mode]["speedup"] for mode in ASSERTED_MODES)
    fraction = min(metrics[mode]["pruned_fraction"]
                   for mode in ASSERTED_MODES)
    print(f"\nspeedup {worst:.1f}x (>= 3x required), "
          f"chunks pruned {fraction:.0%} (> 80% required) -- "
          f"{'PASS' if ok else 'FAIL'}")
    sys.exit(0 if ok else 1)
