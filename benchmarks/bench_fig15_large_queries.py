"""Fig. 15 -- compilation times of very large, machine-generated queries.

The paper scales a single-scan query from 10 to 1,900 aggregate expressions
(1,000 to 160,000 LLVM instructions) and shows that optimized compilation
explodes, unoptimized compilation grows steeply, and only the linear-time
bytecode translation stays usable.  The reproduction sweeps the aggregate
count, prints the three series, and checks the growth-rate ordering.
"""

from repro.backend import compile_optimized, compile_unoptimized
from repro.vm import translate_function
from repro.workloads import wide_aggregate_query

from conftest import FULL, fmt_ms, print_table

AGGREGATE_COUNTS = [10, 40, 120, 320] if not FULL else [10, 40, 120, 320, 800,
                                                        1600]


def test_fig15_large_query_compilation(wide_db, benchmark):
    rows = []
    series = []
    for count in AGGREGATE_COUNTS:
        sql = wide_aggregate_query(count)
        generated, _, timings = wide_db.generate(sql)
        bytecode_seconds = 0.0
        unoptimized_seconds = 0.0
        optimized_seconds = 0.0
        for pipeline in generated.pipelines:
            _, stats = translate_function(pipeline.function)
            bytecode_seconds += stats.translation_seconds
            unoptimized_seconds += \
                compile_unoptimized(pipeline.function).compile_seconds
            optimized_seconds += \
                compile_optimized(pipeline.function).compile_seconds
        rows.append([count, generated.instruction_count,
                     fmt_ms(bytecode_seconds), fmt_ms(unoptimized_seconds),
                     fmt_ms(optimized_seconds)])
        series.append((generated.instruction_count, bytecode_seconds,
                       unoptimized_seconds, optimized_seconds))

    print_table("Fig. 15: compilation time of machine-generated queries",
                ["aggregates", "IR instructions", "bytecode [ms]",
                 "unoptimized [ms]", "optimized [ms]"], rows)

    # Shape checks: for the largest query, bytecode translation is the
    # cheapest by a wide margin and optimized compilation the most expensive;
    # the bytecode translation grows roughly linearly (its cost per
    # instruction does not blow up across the sweep).
    largest = series[-1]
    assert largest[1] < largest[2] < largest[3]
    per_instruction_small = series[0][1] / series[0][0]
    per_instruction_large = largest[1] / largest[0]
    assert per_instruction_large < per_instruction_small * 5

    benchmark(lambda: translate_function(
        wide_db.generate(wide_aggregate_query(40))[0].pipelines[0].function))
