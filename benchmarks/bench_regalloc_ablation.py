"""Section IV-C ablation -- register-file size per allocation strategy.

The paper reports, for TPC-DS query 55: 36 KB of registers without reuse,
21 KB with a greedy fixed-window strategy, 6 KB with the loop-aware
linear-time allocator.  The reproduction measures the register file of the
largest worker function of the wide TPC-DS-flavoured queries under the same
three strategies and checks the ordering no-reuse > greedy-window >
loop-aware.
"""

from repro.vm import allocate_registers
from repro.workloads import TPCDS_QUERIES

from conftest import print_table

STRATEGIES = ["no_reuse", "greedy_window", "loop_aware"]


def _largest_worker(db, sql):
    generated, _, _ = db.generate(sql)
    return max((p.function for p in generated.pipelines),
               key=lambda f: f.instruction_count())


def test_register_allocation_strategies(tpcds_small, benchmark):
    rows = []
    orderings = []
    for number in (55, 67, 88):
        worker = _largest_worker(tpcds_small, TPCDS_QUERIES[number])
        sizes = {}
        for strategy in STRATEGIES:
            allocation = allocate_registers(worker, strategy=strategy)
            sizes[strategy] = allocation.register_file_bytes
        rows.append([f"TPC-DS Q{number}", worker.instruction_count()]
                    + [f"{sizes[s]} B" for s in STRATEGIES])
        orderings.append(sizes)

    print_table("Section IV-C: register file size by allocation strategy",
                ["query (largest worker)", "IR instructions"] + STRATEGIES,
                rows)

    for sizes in orderings:
        assert sizes["loop_aware"] <= sizes["greedy_window"] <= \
            sizes["no_reuse"]
    # The loop-aware allocator should give a substantial reduction on the
    # widest query (the paper reports 36 KB -> 6 KB).
    widest = orderings[-1]
    assert widest["loop_aware"] * 2 <= widest["no_reuse"]

    worker = _largest_worker(tpcds_small, TPCDS_QUERIES[55])
    benchmark(lambda: allocate_registers(worker, strategy="loop_aware"))
