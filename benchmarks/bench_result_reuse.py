"""Result-cache throughput on a Zipfian hot-shape workload.

The serving scenario behind ``execute_many`` + the semantic result cache:
a dashboard-style client population hammers a handful of query *shapes*
with a small pool of bindings, Zipf-distributed -- a few (shape, binding)
pairs dominate the traffic.  The plan cache already amortizes preparation;
this benchmark measures what skipping *execution* is worth on top:

* ``executed``  -- every query runs for real (``use_result_cache=False``;
  the plan cache stays on, so this isolates the result cache's benefit).
* ``cached``    -- the default path: repeated identical reads are served
  from the result cache.
* ``dispatched``/``fused`` -- the same batched traffic through per-query
  ``execute`` versus one ``execute_many`` call per client batch.

A stale-read check runs the cached workload with inserts interleaved at
fixed points; every read is compared against a Python oracle over the
table's current contents, and a single stale row fails the run.

Acceptance (asserted below): cached >= 5x executed throughput, 0 stale
results.

Run as a script (CI smoke, tiny scale): ``python benchmarks/bench_result_reuse.py``
Run under pytest for the benchmark fixture: ``pytest benchmarks/bench_result_reuse.py``
Environment: ``REPRO_BENCH_TINY=1`` shrinks the table, ``REPRO_BENCH_FULL=1`` grows it.
"""

from __future__ import annotations

import os
import random
import sys
import time

_HERE = os.path.dirname(os.path.abspath(__file__))
for _path in (os.path.join(os.path.dirname(_HERE), "src"), _HERE):
    if _path not in sys.path:
        sys.path.insert(0, _path)

from repro import Database, SQLType  # noqa: E402
from repro.options import ExecOptions  # noqa: E402

TINY = os.environ.get("REPRO_BENCH_TINY", "") == "1"
FULL = os.environ.get("REPRO_BENCH_FULL", "") == "1"

ROWS = 4_000 if TINY else (60_000 if FULL else 20_000)
QUERIES = 400 if TINY else (2_000 if FULL else 1_000)
#: Bindings per shape: small on purpose -- hot dashboards repeat params.
POOL = 4
ZIPF_S = 1.2

#: Eight hot shapes: filters and aggregates of varying cost over one
#: orders table, each parameterized on one value from a small pool.
SHAPES = [
    "select count(*) as n from orders where store = ?",
    "select sum(price) as s from orders where store = ?",
    "select avg(price) as a, count(*) as n from orders where category = ?",
    "select store, sum(price) as s from orders where category = ? "
    "group by store order by s desc",
    "select count(*) as n from orders where quantity >= ?",
    "select min(price) as lo, max(price) as hi from orders "
    "where store = ?",
    "select category, count(*) as n from orders where quantity = ? "
    "group by category order by n desc limit 5",
    "select sum(price * quantity) as v from orders where store = ?",
]


def build_database(**kwargs) -> Database:
    db = Database(morsel_size=4096, **kwargs)
    db.create_table("orders", [("o_id", SQLType.INT64),
                               ("category", SQLType.INT64),
                               ("store", SQLType.INT64),
                               ("price", SQLType.FLOAT64),
                               ("quantity", SQLType.INT64)])
    db.insert("orders", [(i, i % 7, i % POOL, (i * 37 % 1000) / 10.0,
                          i % 6) for i in range(ROWS)])
    return db


def zipfian_workload(count: int, seed: int = 42) -> list:
    """``(shape index, binding)`` pairs, Zipf-distributed over the
    (shape, binding) universe: rank r drawn with weight 1 / r**ZIPF_S."""
    universe = [(shape, (binding,)) for shape in range(len(SHAPES))
                for binding in range(POOL)]
    weights = [1.0 / (rank + 1) ** ZIPF_S for rank in range(len(universe))]
    rng = random.Random(seed)
    return rng.choices(universe, weights=weights, k=count)


def measure_sequential(db, workload, use_result_cache: bool) -> float:
    options = ExecOptions(use_result_cache=use_result_cache)
    start = time.perf_counter()
    for shape, binding in workload:
        db.execute(SHAPES[shape], params=binding, options=options)
    return time.perf_counter() - start


def measure_fused(db, workload, batch_size: int = 32) -> float:
    """The same traffic as client batches through ``execute_many``: each
    batch is grouped by shape and fused into one call per shape.  Both
    ``dispatched`` and ``fused`` run the default (cache-enabled) path, so
    the comparison measures what fusion adds on top: one lock
    acquisition, one validity check and intra-batch deduplication of
    repeated bindings per group, instead of the full per-query path."""
    start = time.perf_counter()
    for begin in range(0, len(workload), batch_size):
        by_shape: dict = {}
        for shape, binding in workload[begin:begin + batch_size]:
            by_shape.setdefault(shape, []).append(binding)
        for shape, bindings in by_shape.items():
            db.execute_many(SHAPES[shape], bindings)
    return time.perf_counter() - start


def check_no_stale_reads(db) -> int:
    """Cached workload with interleaved inserts; returns stale-row count."""
    stale = 0
    shadow_count = ROWS  # oracle for shape 0 with binding (0,)
    extra_per_store = [0] * POOL
    sql = SHAPES[0]
    for step in range(200 if not TINY else 80):
        binding = step % POOL
        if step % 7 == 3:
            db.insert("orders", [(ROWS + step, step % 7, binding,
                                  1.0, step % 6)])
            extra_per_store[binding] += 1
            shadow_count += 1
        expected = sum(1 for i in range(ROWS)
                       if i % POOL == binding) + extra_per_store[binding]
        result = db.execute(sql, params=(binding,))
        if result.rows != [(expected,)]:
            stale += 1
    return stale


def run_benchmark(report=print) -> dict:
    from conftest import fmt_ms, print_table

    workload = zipfian_workload(QUERIES)
    db = build_database()
    try:
        # Warm the plan cache for both configurations, so the comparison
        # isolates execution-skipping from preparation-skipping.
        for shape in range(len(SHAPES)):
            db.execute(SHAPES[shape], params=(0,),
                       options=ExecOptions(use_result_cache=False))

        executed = measure_sequential(db, workload, use_result_cache=False)
        db.result_cache.clear()
        cached = measure_sequential(db, workload, use_result_cache=True)
        flat = db.metrics.flat_snapshot()
        hit_rate = db.result_cache.stats.hit_rate

        db.result_cache.clear()
        dispatched = measure_sequential(db, workload,
                                        use_result_cache=True)
        db.result_cache.clear()
        fused = measure_fused(db, workload)

        stale = check_no_stale_reads(db)

        n = len(workload)
        print_table(
            f"Zipfian traffic: {len(SHAPES)} shapes x {POOL} bindings, "
            f"{n} queries ({ROWS} rows)",
            ["configuration", "wall ms", "us/query", "queries/s"],
            [["executed (no result cache)", fmt_ms(executed),
              f"{executed / n * 1e6:.1f}", f"{n / executed:,.0f}"],
             ["cached (result cache)", fmt_ms(cached),
              f"{cached / n * 1e6:.1f}", f"{n / cached:,.0f}"],
             ["dispatched (per-query)", fmt_ms(dispatched),
              f"{dispatched / n * 1e6:.1f}", f"{n / dispatched:,.0f}"],
             ["fused (execute_many)", fmt_ms(fused),
              f"{fused / n * 1e6:.1f}", f"{n / fused:,.0f}"]])
        report(f"result cache over the cached sweep: "
               f"{db.result_cache.stats.hits} hits, "
               f"hit rate {hit_rate:.1%}; "
               f"stale results under interleaved inserts: {stale}")
        return {"executed": executed, "cached": cached,
                "dispatched": dispatched, "fused": fused,
                "hit_rate": hit_rate, "stale": stale,
                "speedup": executed / cached,
                "fused_speedup": dispatched / fused}
    finally:
        db.close()


def _acceptance(metrics) -> bool:
    return metrics["speedup"] >= 5.0 and metrics["stale"] == 0


# --------------------------------------------------------------------------- #
# pytest entry points
# --------------------------------------------------------------------------- #
def test_result_cache_speedup_and_freshness():
    metrics = run_benchmark()
    # Acceptance: serving the Zipfian hot set from the result cache is
    # >= 5x per-query execution, with zero stale reads under mutation.
    assert metrics["speedup"] >= 5.0, metrics
    assert metrics["stale"] == 0, metrics
    assert metrics["hit_rate"] >= 0.5, metrics


def test_cached_read_latency(benchmark):
    db = build_database()
    try:
        sql = SHAPES[0]
        db.execute(sql, params=(0,))  # populate the cache entry

        def cached_read():
            return db.execute(sql, params=(0,))

        result = benchmark(cached_read)
        assert result.cache_source == "result"
    finally:
        db.close()


if __name__ == "__main__":
    metrics = run_benchmark()
    ok = _acceptance(metrics)
    print(f"\nspeedup {metrics['speedup']:.2f}x (>= 5x required), "
          f"fused {metrics['fused_speedup']:.2f}x vs dispatched, "
          f"stale {metrics['stale']} (0 required) -- "
          f"{'PASS' if ok else 'FAIL'}")
    sys.exit(0 if ok else 1)
