"""Network serving throughput: wire-protocol clients vs in-process submit.

PR 8 put a TCP front end (:class:`repro.server.QueryServer` + the blocking
client library) over the scheduler.  This benchmark measures what the wire
costs on the interactive, many-client workload the serving layer exists
for -- N concurrent client connections each running a stream of
parameterized prepared queries:

* ``in-process``  -- N sessions submit the same stream straight through
  ``Database.submit`` (the PR 5/6 serving path, no network).
* ``wire``        -- N real TCP connections: prepare once per connection,
  then execute with per-request parameters; results stream back in
  ROW_BATCH frames.

Reported per configuration: sustained queries/sec over the whole run plus
p50/p99 per-request latency.  The assertion is an honesty bound rather
than a speedup: localhost framing + asyncio dispatch may cost at most 15x
of the in-process path on the tiny CI workload (the gap shrinks as
queries grow; the wire adds per-request overhead, not per-row overhead),
and every wire result must match its in-process reference exactly.  The
run also verifies the serving metrics (requests served, connections
accepted) and that the server tears down without leaking threads.

Run as a script (CI smoke, tiny scale): ``python benchmarks/bench_serving_throughput.py``
Run under pytest for the benchmark fixture: ``pytest benchmarks/bench_serving_throughput.py``
Environment: ``REPRO_BENCH_TINY=1`` shrinks the workload, ``REPRO_BENCH_FULL=1`` grows it.
"""

from __future__ import annotations

import os
import sys
import threading
import time

_HERE = os.path.dirname(os.path.abspath(__file__))
for _path in (os.path.join(os.path.dirname(_HERE), "src"), _HERE):
    if _path not in sys.path:
        sys.path.insert(0, _path)

from repro import Database, SQLType, connect  # noqa: E402

TINY = os.environ.get("REPRO_BENCH_TINY", "") == "1"
FULL = os.environ.get("REPRO_BENCH_FULL", "") == "1"

ROWS = 1_200 if TINY else (8_000 if FULL else 2_500)
CLIENTS = 8
QUERIES_PER_CLIENT = 4 if TINY else 16
WORKERS = 4

#: One parameterized hot shape per benchmark: every client prepares it once
#: and executes it with shifting parameters, so the plan cache serves all
#: connections from a single entry while the *results* differ per request.
PARAM_SQL = ("select category, sum(price) as total, count(*) as n "
             "from orders where o_id >= :lo and o_id < :hi "
             "group by category order by category")

#: Honesty bound for the wire-overhead ratio on the tiny CI workload (see
#: module docstring): localhost round trip + framing vs a function call.
MAX_WIRE_SLOWDOWN = 15.0


def build_database(**kwargs) -> Database:
    db = Database(morsel_size=4096, workers=WORKERS, **kwargs)
    db.create_table("orders", [("o_id", SQLType.INT64),
                               ("category", SQLType.INT64),
                               ("price", SQLType.FLOAT64)])
    db.insert("orders", [(i, i % 11, (i * 37 % 1000) / 10.0)
                         for i in range(ROWS)])
    return db


def client_params(client: int, run: int) -> dict:
    span = max(ROWS // 2, 1)
    lo = (client * 131 + run * 17) % span
    return {"lo": lo, "hi": lo + span}


def percentile(sorted_values: list[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(int(q * len(sorted_values)), len(sorted_values) - 1)
    return sorted_values[index]


# --------------------------------------------------------------------------- #
# measurements
# --------------------------------------------------------------------------- #
def measure_in_process(db: Database) -> tuple[float, list[float], list]:
    """N sessions submit the stream via Database.submit; per-query latency."""
    latencies: list[float] = []
    results: list = []
    lock = threading.Lock()
    errors: list[BaseException] = []

    def client_main(client: int) -> None:
        try:
            session = db.session(name=f"inproc-{client}")
            local = []
            for run in range(QUERIES_PER_CLIENT):
                begin = time.perf_counter()
                ticket = session.submit(PARAM_SQL,
                                        params=client_params(client, run))
                rows = ticket.result(timeout=300).rows
                local.append((time.perf_counter() - begin,
                              client, run, rows))
            with lock:
                for latency, c, r, rows in local:
                    latencies.append(latency)
                    results.append((c, r, rows))
        except BaseException as exc:  # pragma: no cover - diagnostic
            errors.append(exc)

    wall = _run_clients(client_main)
    if errors:
        raise errors[0]
    return wall, latencies, results


def measure_wire(db: Database) -> tuple[float, list[float], list]:
    """N TCP connections run the same stream through prepared statements."""
    server = db.serve()
    latencies: list[float] = []
    results: list = []
    lock = threading.Lock()
    errors: list[BaseException] = []

    def client_main(client: int) -> None:
        try:
            conn = connect(*server.address, session_name=f"wire-{client}")
            try:
                stmt = conn.prepare(PARAM_SQL)
                local = []
                for run in range(QUERIES_PER_CLIENT):
                    begin = time.perf_counter()
                    rows = stmt.execute(params=client_params(client, run),
                                        timeout=300).rows
                    local.append((time.perf_counter() - begin,
                                  client, run, rows))
                with lock:
                    for latency, c, r, rows in local:
                        latencies.append(latency)
                        results.append((c, r, rows))
            finally:
                conn.close()
        except BaseException as exc:  # pragma: no cover - diagnostic
            errors.append(exc)

    try:
        wall = _run_clients(client_main)
    finally:
        server.close()
    if errors:
        raise errors[0]
    return wall, latencies, results


def _run_clients(client_main) -> float:
    threads = [threading.Thread(target=client_main, args=(client,))
               for client in range(CLIENTS)]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return time.perf_counter() - start


# --------------------------------------------------------------------------- #
def run_benchmark(report=print) -> dict:
    from conftest import fmt_ms, print_table

    threads_before = threading.active_count()
    db = build_database()
    try:
        total = CLIENTS * QUERIES_PER_CLIENT
        # Warm the single hot plan so both configurations measure serving,
        # not first-compile cost.
        db.execute(PARAM_SQL, params=client_params(0, 0))

        inproc_wall, inproc_lat, inproc_results = measure_in_process(db)
        wire_wall, wire_lat, wire_results = measure_wire(db)

        # Correctness before numbers: every wire result must equal its
        # in-process reference for the same (client, run) parameters.
        reference = {(c, r): rows for c, r, rows in inproc_results}
        mismatches = sum(1 for c, r, rows in wire_results
                         if reference[(c, r)] != rows)

        rows_out = []
        stats = {}
        for label, wall, lat in (("in-process", inproc_wall, inproc_lat),
                                 ("wire", wire_wall, wire_lat)):
            ordered = sorted(lat)
            qps = total / wall
            p50 = percentile(ordered, 0.50)
            p99 = percentile(ordered, 0.99)
            rows_out.append([label, fmt_ms(wall), f"{qps:.1f}",
                             fmt_ms(p50), fmt_ms(p99)])
            stats[label] = {"wall": wall, "qps": qps, "p50": p50, "p99": p99}
        print_table(
            f"Serving throughput ({CLIENTS} clients x {QUERIES_PER_CLIENT} "
            f"prepared queries, {WORKERS}-worker pool, {ROWS} rows)",
            ["configuration", "wall ms", "queries/s", "p50 ms", "p99 ms"],
            rows_out)

        slowdown = stats["in-process"]["qps"] / max(stats["wire"]["qps"],
                                                    1e-9)
        executed = db.metrics.get(
            "server.requests_total.execute").value
        connections = db.metrics.get("server.connections_total").value
        report(f"wire overhead {slowdown:.2f}x vs in-process "
               f"(bound {MAX_WIRE_SLOWDOWN}x); "
               f"{mismatches} result mismatches; "
               f"server counted {executed} executes over "
               f"{connections} connections")
        return {"slowdown": slowdown, "mismatches": mismatches,
                "executes": executed, "connections": connections,
                "threads_before": threads_before, **stats}
    finally:
        db.close()


def check(metrics: dict) -> bool:
    total = CLIENTS * QUERIES_PER_CLIENT
    return (metrics["mismatches"] == 0
            and metrics["slowdown"] <= MAX_WIRE_SLOWDOWN
            and metrics["executes"] == total
            and metrics["connections"] == CLIENTS)


# --------------------------------------------------------------------------- #
# pytest entry points
# --------------------------------------------------------------------------- #
def test_serving_throughput_matches_in_process():
    before = threading.active_count()
    metrics = run_benchmark()
    assert check(metrics), metrics
    # The serving stack must tear down completely: no leaked server loop,
    # reader, pool, or compile threads after db.close().
    deadline = time.monotonic() + 10
    while threading.active_count() > before and time.monotonic() < deadline:
        time.sleep(0.01)
    assert threading.active_count() <= before


def test_wire_prepared_roundtrip_latency(benchmark):
    db = build_database()
    server = db.serve()
    try:
        conn = connect(*server.address)
        try:
            stmt = conn.prepare(PARAM_SQL)
            stmt.execute(params=client_params(0, 0), timeout=300)  # warm

            def round_trip():
                return stmt.execute(params=client_params(0, 1), timeout=300)

            result = benchmark(round_trip)
            assert result.cached
        finally:
            conn.close()
    finally:
        db.close()


if __name__ == "__main__":
    metrics = run_benchmark()
    ok = check(metrics)
    print(f"\nwire slowdown {metrics['slowdown']:.2f}x "
          f"(<= {MAX_WIRE_SLOWDOWN}x required), "
          f"{metrics['mismatches']} mismatches -- "
          f"{'PASS' if ok else 'FAIL'}")
    sys.exit(0 if ok else 1)
