"""Repeated-query throughput: the prepared-query / plan-cache hot path.

The paper's Table I / Fig. 1 point is that compilation latency dominates
short queries -- which is precisely why a system serving repeated query
traffic must not re-parse, re-plan, re-generate IR and re-compile on every
call.  This benchmark shows the amortisation the plan/artifact cache buys:

* a cache hit skips parse / bind / plan / codegen *entirely* (those phases
  report 0) and reuses the compiled tier, leaving only execution time,
* the adaptive mode keeps its per-pipeline function handles, so a tier the
  Fig. 7 policy compiled once is simply the starting mode of the next run,
* an ``insert`` into a referenced table invalidates the entry and the next
  execution transparently re-prepares.
"""

import pytest

from repro import ExecOptions
from repro.backend.cost_model import CostModel, TierEstimate
from repro.workloads import TPCH_QUERIES, populate_tpch

from conftest import fmt_ms, print_table

SQL = TPCH_QUERIES[1]


@pytest.fixture(scope="module")
def repeat_db():
    """A private TPC-H instance (this benchmark mutates lineitem)."""
    return populate_tpch(scale_factor=0.3, seed=42)


def _phase_row(label, timings):
    return [label, fmt_ms(timings.parse + timings.bind), fmt_ms(timings.plan),
            fmt_ms(timings.codegen), fmt_ms(timings.compile),
            fmt_ms(timings.execution), fmt_ms(timings.total)]


def test_repeated_query_skips_preparation(repeat_db, benchmark):
    db = repeat_db
    db.plan_cache.clear()

    first = db.execute(SQL, mode="optimized")
    cached = db.execute(SQL, mode="optimized")

    print_table(
        "Repeated TPC-H Q1, optimized tier: first vs. cached execution (ms)",
        ["execution", "parse+bind", "plan", "codegen", "compile", "execute",
         "total"],
        [_phase_row("first (cold)", first.timings),
         _phase_row("cached (hit)", cached.timings)])

    # A cache hit skips the entire front end and the tier compilation.
    assert not first.cached and cached.cached
    assert first.timings.planning > 0 and first.timings.compile > 0
    assert cached.timings.parse == 0
    assert cached.timings.bind == 0
    assert cached.timings.plan == 0
    assert cached.timings.codegen == 0
    assert cached.timings.compile == 0
    assert cached.rows == first.rows

    # An insert into a referenced table invalidates the cached entry ...
    lineitem = db.catalog.table("lineitem")
    db.insert("lineitem", [lineitem.row(0)], encode=False)
    rebuilt = db.execute(SQL, mode="optimized")
    assert not rebuilt.cached
    assert rebuilt.timings.planning > 0
    # ... and the rebuilt plan sees the new data.
    assert rebuilt.rows != first.rows

    # Steady-state repeated execution (all artifacts cached).
    benchmark(lambda: db.execute(SQL, mode="optimized"))


def test_adaptive_reuses_compiled_tiers(repeat_db):
    db = repeat_db
    # Free compilation + big speedups make the Fig. 7 policy switch
    # deterministically, so the reuse across executions is observable.
    model = CostModel(estimates={
        "bytecode": TierEstimate(0.0, 0.0, 1.0),
        "unoptimized": TierEstimate(0.0, 0.0, 4.0),
        "optimized": TierEstimate(0.0, 0.0, 8.0),
    })
    prepared = db.prepare_query(SQL)
    first = prepared.execute(mode="adaptive", cost_model=model)
    # use_result_cache=False: the rerun must actually execute -- its
    # per-pipeline mode history is the observable being tested.
    second = prepared.execute(
        options=ExecOptions(mode="adaptive", use_result_cache=False),
        cost_model=model)

    rows = [[p.name, "->".join(p.mode_history)] for p in first.pipelines]
    rows += [[p.name + " (rerun)", "->".join(p.mode_history)]
             for p in second.pipelines]
    print_table("Adaptive tier reuse across executions (TPC-H Q1)",
                ["pipeline", "mode history"], rows)

    switched = [p for p in first.pipelines if len(p.mode_history) > 1]
    assert switched, "first adaptive run should switch at least one pipeline"
    # The rerun pays no compilation and starts in the compiled tier.
    assert second.timings.compile == 0.0
    assert any(p.mode_history[0] != "bytecode" for p in second.pipelines)
    assert second.rows == first.rows
