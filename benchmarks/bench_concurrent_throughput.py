"""Concurrent serving throughput: the scheduler + plan cache vs. naive calls.

The paper motivates adaptive compilation with interactive, many-client
workloads.  This benchmark measures what the serving layer (PR 2) plus the
plan/artifact cache (PR 1) deliver for such traffic on one shared database:

* ``serial (cold)``    -- one client, one query at a time, no cache: every
  call pays parse / bind / plan / codegen / tier compilation.  This is the
  engine's behaviour before the caching + scheduling layers existed.
* ``serial (cached)``  -- one client, one query at a time, warm plan cache.
* ``concurrent``       -- 8 client sessions submit the same stream of hot
  queries through ``Database.submit`` onto a 4-worker shared pool.

The headline number asserted below is ``concurrent vs. serial (cold)``
queries/sec (>= 2x).  Honesty note: CPython's GIL serialises the CPU-bound
morsel work, so ``concurrent`` cannot beat ``serial (cached)`` on wall
clock -- the reported win comes from the serving layer amortising
compilation across clients, which is exactly the paper's point about
compile latency dominating short queries.  The benchmark also verifies the
bounded-thread property: with 16 queries in flight, only the pool workers
(+ the shared compile thread) exist -- no per-query thread spawning.

Run as a script (CI smoke, tiny scale): ``python benchmarks/bench_concurrent_throughput.py``
Run under pytest for the benchmark fixture: ``pytest benchmarks/bench_concurrent_throughput.py``
Environment: ``REPRO_BENCH_TINY=1`` shrinks the workload, ``REPRO_BENCH_FULL=1`` grows it.
"""

from __future__ import annotations

import os
import sys
import threading
import time

_HERE = os.path.dirname(os.path.abspath(__file__))
for _path in (os.path.join(os.path.dirname(_HERE), "src"), _HERE):
    if _path not in sys.path:
        sys.path.insert(0, _path)

from repro import Database, SQLType  # noqa: E402

TINY = os.environ.get("REPRO_BENCH_TINY", "") == "1"
FULL = os.environ.get("REPRO_BENCH_FULL", "") == "1"

#: Interactive traffic means *short* queries -- the paper's Table I / Fig. 1
#: regime where compilation dominates execution.  That is the workload a
#: serving layer exists for, so the tables are small and the queries
#: compile-heavy (joins have several pipelines).
ROWS = 1_200 if TINY else (8_000 if FULL else 2_500)
CLIENTS = 8
QUERIES_PER_CLIENT = 2 if TINY else 6
WORKERS = 4
IN_FLIGHT_TARGET = 16

#: The hot query set every client draws from (round-robin).
HOT_QUERIES = [
    "select category, sum(price) as total, count(*) as n "
    "from orders group by category order by category",
    "select c_name, sum(price) as total, count(*) as n "
    "from orders, categories where category = c_id "
    "group by c_name order by total desc",
    "select count(*) as n from orders where price > 50.0 and quantity < 5",
    "select c_name, avg(price) as ap, max(quantity) as mq "
    "from orders, categories where category = c_id and price > 10.0 "
    "group by c_name order by c_name",
]


def build_database(**kwargs) -> Database:
    db = Database(morsel_size=4096, workers=WORKERS, **kwargs)
    db.create_table("orders", [("o_id", SQLType.INT64),
                               ("category", SQLType.INT64),
                               ("price", SQLType.FLOAT64),
                               ("quantity", SQLType.INT64)])
    db.insert("orders", [(i, i % 11, (i * 37 % 1000) / 10.0, i % 9)
                         for i in range(ROWS)])
    db.create_table("categories", [("c_id", SQLType.INT64),
                                   ("c_name", SQLType.STRING)])
    db.insert("categories", [(i, f"cat-{i}") for i in range(11)])
    return db


def query_stream() -> list[str]:
    stream = []
    for client in range(CLIENTS):
        for run in range(QUERIES_PER_CLIENT):
            stream.append(HOT_QUERIES[(client + run) % len(HOT_QUERIES)])
    return stream


# --------------------------------------------------------------------------- #
# measurements
# --------------------------------------------------------------------------- #
def measure_serial(db: Database, use_cache: bool) -> float:
    """Wall seconds for one client running the whole stream back to back."""
    start = time.perf_counter()
    for sql in query_stream():
        db.execute(sql, mode="optimized", use_cache=use_cache)
    return time.perf_counter() - start


def measure_concurrent(db: Database) -> tuple[float, float, float]:
    """8 sessions submit the stream; returns (wall, mean queue, mean run)."""
    sessions = [db.session(mode="optimized", name=f"client-{i}")
                for i in range(CLIENTS)]
    start = time.perf_counter()
    tickets = []
    for run in range(QUERIES_PER_CLIENT):
        for client, session in enumerate(sessions):
            sql = HOT_QUERIES[(client + run) % len(HOT_QUERIES)]
            tickets.append(session.submit(sql))
    results = [ticket.result(timeout=300) for ticket in tickets]
    wall = time.perf_counter() - start
    queue = sum(r.timings.queue for r in results) / len(results)
    run_time = sum(r.timings.total for r in results) / len(results)
    return wall, queue, run_time


def measure_thread_bound(db: Database) -> int:
    """Peak live threads while IN_FLIGHT_TARGET queries are in flight."""
    tickets = [db.submit(HOT_QUERIES[i % len(HOT_QUERIES)], mode="optimized",
                         use_cache=False)
               for i in range(IN_FLIGHT_TARGET)]
    peak = threading.active_count()
    while not all(t.done() for t in tickets):
        peak = max(peak, threading.active_count())
        time.sleep(0.001)
    for ticket in tickets:
        ticket.result(timeout=300)
    return peak


def run_benchmark(report=print) -> dict:
    from conftest import fmt_ms, print_table

    # Baseline *before* the database lazily creates its pool: the bound
    # below then covers every thread this benchmark causes to exist.
    before = threading.active_count()
    db = build_database()
    try:
        total = CLIENTS * QUERIES_PER_CLIENT
        serial_cold = measure_serial(db, use_cache=False)
        db.plan_cache.clear()
        for sql in HOT_QUERIES:  # warm every hot entry once
            db.execute(sql, mode="optimized")
        serial_cached = measure_serial(db, use_cache=True)
        conc_wall, mean_queue, mean_run = measure_concurrent(db)
        peak = measure_thread_bound(db)

        cold_qps = total / serial_cold
        cached_qps = total / serial_cached
        conc_qps = total / conc_wall
        print_table(
            f"Concurrent serving throughput "
            f"({CLIENTS} clients x {QUERIES_PER_CLIENT} queries, "
            f"{WORKERS}-worker pool, {ROWS} rows)",
            ["configuration", "wall ms", "queries/s", "vs serial cold"],
            [["serial (cold)", fmt_ms(serial_cold), f"{cold_qps:.1f}",
              "1.00x"],
             ["serial (cached)", fmt_ms(serial_cached), f"{cached_qps:.1f}",
              f"{cached_qps / cold_qps:.2f}x"],
             ["concurrent (8 clients)", fmt_ms(conc_wall), f"{conc_qps:.1f}",
              f"{conc_qps / cold_qps:.2f}x"]])
        report(f"mean per-query wait {fmt_ms(mean_queue)} ms "
               f"vs run {fmt_ms(mean_run)} ms "
               f"(scheduler queue / PhaseTimings.queue)")
        report(f"live threads with {IN_FLIGHT_TARGET} queries in flight: "
               f"{peak} (baseline {before}, pool {WORKERS} + 1 compile)")
        return {"speedup": conc_qps / cold_qps,
                "cached_ratio": cached_qps / cold_qps,
                "threads_before": before, "threads_peak": peak,
                "scheduler": db.scheduler.stats}
    finally:
        db.close()


# --------------------------------------------------------------------------- #
# pytest entry points
# --------------------------------------------------------------------------- #
def test_concurrent_throughput_and_thread_bound():
    metrics = run_benchmark()
    # Acceptance: >= 2x queries/sec over serial execution, and no
    # per-query thread spawning while 16 queries are in flight.
    assert metrics["speedup"] >= 2.0, metrics
    assert metrics["threads_peak"] <= \
        metrics["threads_before"] + WORKERS + 1, metrics
    assert metrics["scheduler"].peak_running <= WORKERS


def test_hot_submit_latency(benchmark):
    db = build_database()
    try:
        db.execute(HOT_QUERIES[0], mode="optimized")  # warm

        def round_trip():
            return db.submit(HOT_QUERIES[0], mode="optimized").result(
                timeout=300)

        result = benchmark(round_trip)
        assert result.cached
    finally:
        db.close()


if __name__ == "__main__":
    metrics = run_benchmark()
    ok = (metrics["speedup"] >= 2.0
          and metrics["threads_peak"]
          <= metrics["threads_before"] + WORKERS + 1)
    print(f"\nspeedup {metrics['speedup']:.2f}x (>= 2x required) -- "
          f"{'PASS' if ok else 'FAIL'}")
    sys.exit(0 if ok else 1)
