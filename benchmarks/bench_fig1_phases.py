"""Fig. 1 / Fig. 3 -- per-phase times of query processing.

The paper reports, for TPC-H Q1: parsing ~0.05 ms, semantic analysis ~0.1 ms,
optimization ~0.05 ms, code generation ~0.7 ms, then the expensive parts --
LLVM passes + optimized compilation (~49 ms), unoptimized compilation (~6 ms),
bytecode generation (~0.4 ms).  The reproduction prints the same breakdown
measured on this implementation: the *ordering* (planning and code generation
negligible, bytecode translation cheap, optimized compilation dominant) is
the property the adaptive design builds on.
"""

from repro.workloads import TPCH_QUERIES

from conftest import fmt_ms, print_table


def _phase_breakdown(db):
    sql = TPCH_QUERIES[1]
    rows = []
    # use_cache=False: this figure measures the cold path; a plan-cache hit
    # reports 0 for all front-end phases (see bench_repeated_queries.py).
    bytecode = db.execute(sql, mode="bytecode", use_cache=False)
    unoptimized = db.execute(sql, mode="unoptimized", use_cache=False)
    optimized = db.execute(sql, mode="optimized", use_cache=False)
    timings = optimized.timings
    rows.append(["Parser + Semantic Analysis", fmt_ms(timings.parse + timings.bind)])
    rows.append(["Optimizer", fmt_ms(timings.plan)])
    rows.append(["Code Generation (IR)", fmt_ms(timings.codegen)])
    rows.append(["Byte Code Compiler", fmt_ms(bytecode.timings.compile)])
    rows.append(["Compilation Unoptimized", fmt_ms(unoptimized.timings.compile)])
    rows.append(["Compilation Optimized", fmt_ms(optimized.timings.compile)])
    return rows, (bytecode, unoptimized, optimized)


def test_fig1_phase_breakdown(tpch_small, benchmark):
    rows, runs = _phase_breakdown(tpch_small)
    print_table("Fig. 1/3: phases of processing TPC-H Q1 (ms)",
                ["phase", "time [ms]"], rows)

    bytecode, unoptimized, optimized = runs
    # The paper's qualitative claims:
    assert bytecode.timings.compile < unoptimized.timings.compile
    assert unoptimized.timings.compile < optimized.timings.compile
    assert optimized.timings.planning < optimized.timings.compile

    # Benchmark the cheap front-end phases (parse + bind + plan + codegen).
    benchmark(lambda: tpch_small.generate(TPCH_QUERIES[1]))
