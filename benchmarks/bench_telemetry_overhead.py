"""Telemetry overhead on the hot repeated-query path.

The telemetry subsystem (metrics registry + query recorder) must be cheap
enough to leave on by default: level ``basic`` records one query's worth of
sharded counter increments and histogram observations plus a small
:class:`repro.QueryTrace`, and everything derived (cache hit rates, pool
liveness, scheduler counters) is computed at *snapshot* time, never on the
query path.  This benchmark measures exactly the scenario that discipline
protects -- a hot, plan-cached query executed back to back -- with
telemetry ``off`` vs ``basic`` and asserts the overhead stays below 3%.

Methodology: the two configurations run in alternating trials (so drift in
machine load hits both sides equally) and the *minimum* trial time per
configuration is compared -- the minimum is the least noisy location
estimate for a quantity with one-sided noise.

Run as a script (CI smoke): ``python benchmarks/bench_telemetry_overhead.py``
Run under pytest for the benchmark fixture: ``pytest benchmarks/bench_telemetry_overhead.py``
Environment: ``REPRO_BENCH_TINY=1`` shrinks the workload, ``REPRO_BENCH_FULL=1`` grows it.
"""

from __future__ import annotations

import os
import sys
import time

_HERE = os.path.dirname(os.path.abspath(__file__))
for _path in (os.path.join(os.path.dirname(_HERE), "src"), _HERE):
    if _path not in sys.path:
        sys.path.insert(0, _path)

from repro import Database, SQLType  # noqa: E402

TINY = os.environ.get("REPRO_BENCH_TINY", "") == "1"
FULL = os.environ.get("REPRO_BENCH_FULL", "") == "1"

ROWS = 1_500 if TINY else (12_000 if FULL else 4_000)
ITERATIONS = 15 if TINY else (60 if FULL else 40)
TRIALS = 5 if TINY else 7
MAX_OVERHEAD = 0.03

HOT_QUERY = ("select category, sum(price) as total, count(*) as n "
             "from orders where quantity < 7 "
             "group by category order by category")


def build_database() -> Database:
    # result_cache_size=0: the overhead comparison repeats one hot
    # query; result-cache hits would skip the instrumented execution
    # entirely and measure cache latency instead.
    db = Database(morsel_size=4096, workers=2, result_cache_size=0)
    db.create_table("orders", [("o_id", SQLType.INT64),
                               ("category", SQLType.INT64),
                               ("price", SQLType.FLOAT64),
                               ("quantity", SQLType.INT64)])
    db.insert("orders", [(i, i % 13, (i * 37 % 1000) / 10.0, i % 9)
                         for i in range(ROWS)])
    return db


def measure_trial(db: Database, telemetry: str) -> float:
    start = time.perf_counter()
    for _ in range(ITERATIONS):
        db.execute(HOT_QUERY, mode="optimized", telemetry=telemetry)
    return time.perf_counter() - start


def run_benchmark(report=print) -> dict:
    from conftest import fmt_ms, print_table

    db = build_database()
    try:
        # Warm the plan cache and both code paths before measuring.
        db.execute(HOT_QUERY, mode="optimized", telemetry="off")
        db.execute(HOT_QUERY, mode="optimized", telemetry="basic")

        off_times, basic_times = [], []
        for _ in range(TRIALS):
            off_times.append(measure_trial(db, "off"))
            basic_times.append(measure_trial(db, "basic"))

        best_off = min(off_times)
        best_basic = min(basic_times)
        overhead = best_basic / best_off - 1.0
        per_query_us = (best_basic - best_off) / ITERATIONS * 1e6

        print_table(
            f"Telemetry overhead, hot cached query "
            f"({ROWS} rows, {ITERATIONS} executions/trial, {TRIALS} trials)",
            ["telemetry", "best trial ms", "per query ms"],
            [["off", fmt_ms(best_off), fmt_ms(best_off / ITERATIONS)],
             ["basic", fmt_ms(best_basic), fmt_ms(best_basic / ITERATIONS)]])
        report(f"overhead {overhead * 100:+.2f}% "
               f"({per_query_us:+.1f} us/query, limit {MAX_OVERHEAD * 100:.0f}%)")

        recorded = db.metrics.get("query.count").value
        return {"overhead": overhead, "recorded": recorded,
                "best_off": best_off, "best_basic": best_basic}
    finally:
        db.close()


# --------------------------------------------------------------------------- #
# pytest entry points
# --------------------------------------------------------------------------- #
def test_telemetry_basic_overhead_under_limit():
    metrics = run_benchmark()
    assert metrics["overhead"] < MAX_OVERHEAD, metrics
    # The "basic" trials were actually recorded (one count per execution,
    # plus the single warm-up call).
    assert metrics["recorded"] == TRIALS * ITERATIONS + 1, metrics


def test_hot_query_with_telemetry(benchmark):
    db = build_database()
    try:
        db.execute(HOT_QUERY, mode="optimized")  # warm

        result = benchmark(lambda: db.execute(HOT_QUERY, mode="optimized",
                                              telemetry="basic"))
        assert result.cached
    finally:
        db.close()


if __name__ == "__main__":
    metrics = run_benchmark()
    ok = metrics["overhead"] < MAX_OVERHEAD
    print(f"\ntelemetry overhead {metrics['overhead'] * 100:+.2f}% "
          f"(< {MAX_OVERHEAD * 100:.0f}% required) -- "
          f"{'PASS' if ok else 'FAIL'}")
    sys.exit(0 if ok else 1)
