"""Fig. 13 -- geometric mean over TPC-H queries, scale-factor sweep, 8 threads.

The paper's headline experiment: across scale factors from 0.01 to 30 and the
execution modes bytecode / unoptimized / optimized / adaptive, adaptive
execution always tracks the best static mode -- pure interpretation wins at
tiny sizes, compilation wins at large sizes, adaptive never loses badly to
either.

Multi-threaded timings use the virtual-time simulator over real
single-threaded measurements (see DESIGN.md); the scale factors are scaled
down so the sweep fits CI time, preserving the relative data-size ratios.
"""

from repro.adaptive import simulate_adaptive, simulate_static
from repro.adaptive.simulation import cost_model_from_profiles, profile_query
from repro.workloads import TPCH_QUERIES, populate_tpch

from conftest import FULL, geometric_mean, print_table, tpch_query_set

SCALE_FACTORS = [0.01, 0.05, 0.2] if not FULL else [0.01, 0.05, 0.2, 0.5, 1.0]
THREADS = 8
MODES = ["bytecode", "unoptimized", "optimized", "adaptive"]


def test_fig13_scale_factor_sweep(benchmark):
    queries = tpch_query_set()[:6] if not FULL else tpch_query_set()
    table_rows = []
    winners = {}
    for scale_factor in SCALE_FACTORS:
        db = populate_tpch(scale_factor=scale_factor, seed=3)
        profiles = [profile_query(db, TPCH_QUERIES[q], label=f"Q{q}")
                    for q in queries]
        cost_model = cost_model_from_profiles(profiles)
        # Morsel sizes are scaled down with the data set (DESIGN.md).
        morsel = 64
        totals = {mode: [] for mode in MODES}
        for profile in profiles:
            for mode in ("bytecode", "unoptimized", "optimized"):
                totals[mode].append(
                    simulate_static(profile, mode, THREADS,
                                    morsel_size=morsel).total_seconds)
            totals["adaptive"].append(
                simulate_adaptive(profile, THREADS, cost_model=cost_model,
                                  morsel_size=morsel,
                                  initial_morsel_size=16).total_seconds)
        row = [scale_factor]
        means = {}
        for mode in MODES:
            means[mode] = geometric_mean(totals[mode])
            row.append(f"{means[mode] * 1000:.2f}")
        winners[scale_factor] = min(means, key=means.get)
        row.append(winners[scale_factor])
        table_rows.append(row)

    print_table(f"Fig. 13: geometric mean over {len(queries)} TPC-H queries, "
                f"{THREADS} threads (ms)",
                ["scale factor"] + MODES + ["best"], table_rows)

    # Shape checks (paper Fig. 13): adaptive is always within a modest factor
    # of the best static mode, and never the worst mode.
    for row in table_rows:
        values = {mode: float(row[1 + i]) for i, mode in enumerate(MODES)}
        best_static = min(values[m] for m in MODES if m != "adaptive")
        worst_static = max(values[m] for m in MODES if m != "adaptive")
        assert values["adaptive"] <= worst_static
        assert values["adaptive"] <= best_static * 1.6

    # At the smallest scale factor interpretation beats optimized compilation.
    smallest = table_rows[0]
    assert float(smallest[1]) < float(smallest[3])

    benchmark(lambda: simulate_adaptive(
        profile_query(populate_tpch(scale_factor=0.01, seed=3),
                      TPCH_QUERIES[6]), THREADS))
