"""Fig. 7 ablation -- what the adaptive policy decides as work grows.

Not a table of the paper by itself, but the mechanism behind Fig. 13/14: the
extrapolation of the three execution options must pick interpretation for
tiny pipelines, unoptimized compilation for medium ones and optimized
compilation for long-running ones.  This bench sweeps the remaining-work axis
and prints the decision and extrapolated durations at each point.
"""

from repro.adaptive import AdaptivePolicy, Decision, ExecutionMode, PipelineProgress
from repro.backend.cost_model import CostModel, TierEstimate

from conftest import print_table

MODEL = CostModel(estimates={
    "bytecode": TierEstimate(0.0005, 2e-6, 1.0),
    "unoptimized": TierEstimate(0.002, 2e-5, 2.5),
    "optimized": TierEstimate(0.006, 8e-5, 4.0),
})

REMAINING_TUPLES = [1_000, 10_000, 100_000, 1_000_000, 10_000_000, 100_000_000]


def test_policy_decision_sweep(benchmark):
    policy = AdaptivePolicy(MODEL)
    rows = []
    decisions = []
    for remaining in REMAINING_TUPLES:
        progress = PipelineProgress(total_tuples=remaining + 5_000,
                                    num_threads=8)
        progress.record_morsel(0, 5_000, 5_000 / 150_000)
        evaluation = policy.evaluate(progress, ExecutionMode.BYTECODE,
                                     instruction_count=800, active_workers=8,
                                     elapsed_seconds=0.01)
        decisions.append(evaluation.decision)
        rows.append([
            remaining,
            f"{evaluation.keep_seconds * 1000:.2f}",
            f"{evaluation.unoptimized_seconds * 1000:.2f}",
            f"{evaluation.optimized_seconds * 1000:.2f}",
            evaluation.decision.value,
        ])
    print_table("Fig. 7 policy: extrapolated durations by remaining work",
                ["remaining tuples", "keep [ms]", "unoptimized [ms]",
                 "optimized [ms]", "decision"], rows)

    # Small pipelines stay interpreted, huge pipelines compile optimized, and
    # the decision sequence is monotone (never going back to a cheaper tier).
    assert decisions[0] is Decision.DO_NOTHING
    assert decisions[-1] is Decision.OPTIMIZED
    order = {Decision.DO_NOTHING: 0, Decision.UNOPTIMIZED: 1,
             Decision.OPTIMIZED: 2}
    ranks = [order[d] for d in decisions]
    assert ranks == sorted(ranks)

    benchmark(lambda: policy.evaluate(
        _fresh_progress(), ExecutionMode.BYTECODE, 800, 8, 0.01))


def _fresh_progress():
    progress = PipelineProgress(total_tuples=1_000_000, num_threads=8)
    progress.record_morsel(0, 5_000, 5_000 / 150_000)
    return progress
