"""Table II -- execution times of TPC-H queries across engines.

The paper reports per-query execution times (and geometric means over all 22
queries) for PostgreSQL, MonetDB and HyPer's bytecode / unoptimized /
optimized tiers, single-threaded and with 8 threads.  The reproduction prints
the same table: the single-threaded columns are real measurements of the
Volcano baseline, the vectorized baseline and the three compiled-engine
tiers; the 8-thread columns come from the virtual-time simulator (DESIGN.md
documents the substitution).
"""

from repro.adaptive import simulate_static
from repro.adaptive.simulation import profile_query
from repro.workloads import TPCH_QUERIES

from conftest import geometric_mean, print_table, tpch_query_set

THREADS = 8


def test_table2_execution_times(tpch_small, benchmark):
    headers = ["TPC-H #", "PG", "Monet", "bc.", "unopt.", "opt.",
               f"bc. {THREADS}t", f"unopt. {THREADS}t", f"opt. {THREADS}t"]
    rows = []
    columns = {key: [] for key in headers[1:]}

    for number in tpch_query_set():
        sql = TPCH_QUERIES[number]
        volcano = tpch_small.execute(sql, mode="volcano").timings.execution
        vectorized = tpch_small.execute(sql, mode="vectorized").timings.execution
        profile = profile_query(tpch_small, sql, label=f"Q{number}")
        single = {mode: sum(p.rows / p.rates[mode] for p in profile.pipelines)
                  for mode in ("bytecode", "unoptimized", "optimized")}
        # The morsel size is scaled down with the data (DESIGN.md): the
        # scaled TPC-H instance is ~1000x smaller than the paper's SF 1, so
        # a 64-tuple morsel plays the role of the paper's ~10k-tuple morsel.
        parallel = {mode: simulate_static(profile, mode, THREADS,
                                          morsel_size=64,
                                          include_planning=False
                                          ).execution_seconds
                    for mode in ("bytecode", "unoptimized", "optimized")}
        values = [volcano, vectorized, single["bytecode"],
                  single["unoptimized"], single["optimized"],
                  parallel["bytecode"], parallel["unoptimized"],
                  parallel["optimized"]]
        for key, value in zip(headers[1:], values):
            columns[key].append(value)
        rows.append([number] + [f"{v * 1000:.2f}" for v in values])

    geo = ["geo.mean"] + [f"{geometric_mean(columns[key]) * 1000:.2f}"
                          for key in headers[1:]]
    rows.append(geo)
    print_table("Table II: execution times (ms)", headers, rows)

    # Paper's qualitative claims on the geometric means:
    means = {key: geometric_mean(columns[key]) for key in headers[1:]}
    # compiled code beats the bytecode interpreter ...
    assert means["opt."] < means["bc."]
    assert means["unopt."] < means["bc."]
    # ... the tuple-at-a-time engine is the slowest execution strategy ...
    assert means["PG"] > means["opt."]
    # ... and parallel execution scales (virtual time, 8 workers).
    assert means[f"opt. {THREADS}t"] < means["opt."]
    assert means[f"bc. {THREADS}t"] < means["bc."]

    benchmark(lambda: tpch_small.execute(TPCH_QUERIES[6], mode="optimized"))
