"""Shared fixtures and reporting helpers for the benchmark harness.

Every ``bench_*`` module reproduces one table or figure of the paper: it
measures the relevant quantities on this implementation, prints the rows /
series in the same shape the paper reports, and exposes at least one
``benchmark``-fixture measurement so ``pytest benchmarks/ --benchmark-only``
produces timing statistics.

Scale note: the default data sizes are small enough for CI (see DESIGN.md);
set ``REPRO_BENCH_FULL=1`` to run the larger sweep (more scale factors, all
22 TPC-H queries everywhere).
"""

from __future__ import annotations

import faulthandler
import os
import sys

import pytest

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                    "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

# Per-test watchdog matching tests/conftest.py: without pytest-timeout a
# hung benchmark (e.g. a scheduler deadlock) aborts the process instead of
# hanging CI.  Benchmarks get a larger budget than unit tests.
try:
    import pytest_timeout  # noqa: F401
    _HAVE_PYTEST_TIMEOUT = True
except ImportError:
    _HAVE_PYTEST_TIMEOUT = False

_FALLBACK_TIMEOUT = float(os.environ.get("REPRO_BENCH_TIMEOUT", "900"))

if not _HAVE_PYTEST_TIMEOUT and hasattr(faulthandler,
                                        "dump_traceback_later"):
    @pytest.hookimpl(hookwrapper=True)
    def pytest_runtest_protocol(item, nextitem):
        faulthandler.dump_traceback_later(_FALLBACK_TIMEOUT, exit=True)
        try:
            yield
        finally:
            faulthandler.cancel_dump_traceback_later()

from repro import Database                                  # noqa: E402
from repro.workloads import (                               # noqa: E402
    TPCH_QUERIES,
    populate_tpch,
    populate_tpcds,
    populate_wide_table,
)

#: Full sweep toggle.
FULL = os.environ.get("REPRO_BENCH_FULL", "") == "1"

#: Queries used where running all 22 would be too slow for CI.
REPRESENTATIVE_TPCH = [1, 3, 5, 6, 10, 11, 12, 14, 18, 19]


def tpch_query_set() -> list[int]:
    return sorted(TPCH_QUERIES) if FULL else REPRESENTATIVE_TPCH


@pytest.fixture(scope="session")
def tpch_small() -> Database:
    """TPC-H instance used for per-query measurements (about SF 0.05)."""
    return populate_tpch(scale_factor=0.05, seed=1)


@pytest.fixture(scope="session")
def tpcds_small() -> Database:
    return populate_tpcds(fact_rows=3000)


@pytest.fixture(scope="session")
def wide_db() -> Database:
    return populate_wide_table(num_rows=400)


def print_table(title: str, headers: list[str], rows: list[list]) -> None:
    """Print a result table in a fixed-width layout (captured in bench logs)."""
    print()
    print(f"=== {title} ===")
    widths = [max(len(str(h)), *(len(str(r[i])) for r in rows)) if rows
              else len(str(h)) for i, h in enumerate(headers)]
    print("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    for row in rows:
        print("  ".join(str(v).ljust(w) for v, w in zip(row, widths)))


def fmt_ms(seconds: float) -> str:
    return f"{seconds * 1000:.2f}"


def geometric_mean(values: list[float]) -> float:
    if not values:
        return 0.0
    product = 1.0
    for value in values:
        product *= max(value, 1e-12)
    return product ** (1.0 / len(values))
