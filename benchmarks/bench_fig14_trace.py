"""Fig. 14 -- execution trace of TPC-H Q11 with 4 worker threads.

The paper's trace shows: the bytecode mode spreads morsels over all threads
immediately; unoptimized compilation blocks all threads during its up-front
single-threaded compilation; adaptive execution starts interpreting right
away, decides after ~1 ms to compile only the two expensive partsupp
pipelines on a background thread, switches over seamlessly and finishes
first.  The reproduction prints ASCII traces of the three modes and checks
the qualitative properties (adaptive compiles a strict subset of pipelines
and beats the slower static mode).
"""

from repro.adaptive import render_trace, simulate_adaptive, simulate_static
from repro.adaptive.simulation import cost_model_from_profiles, profile_query
from repro.workloads import TPCH_QUERIES

from conftest import print_table

THREADS = 4


def test_fig14_q11_execution_trace(tpch_small, benchmark):
    sql = TPCH_QUERIES[11]
    profile = profile_query(tpch_small, sql, label="TPC-H Q11")
    cost_model = cost_model_from_profiles([profile])

    bytecode = simulate_static(profile, "bytecode", THREADS)
    unoptimized = simulate_static(profile, "unoptimized", THREADS)
    adaptive = simulate_adaptive(profile, THREADS, cost_model=cost_model)

    for result in (bytecode, unoptimized, adaptive):
        print()
        print(render_trace(result.trace, width=90))

    rows = [[result.mode, f"{result.total_seconds * 1000:.2f}",
             f"{result.compile_seconds * 1000:.2f}",
             "; ".join(f"{name}:{'->'.join(modes)}"
                       for name, modes in result.pipeline_modes.items())]
            for result in (bytecode, unoptimized, adaptive)]
    print_table(f"Fig. 14: TPC-H Q11, {THREADS} threads",
                ["mode", "total [ms]", "compile [ms]", "pipeline modes"], rows)

    # Qualitative checks from the paper's discussion of the trace:
    # adaptive starts interpreting (no up-front compilation barrier) ...
    first_adaptive_event = min(adaptive.trace.events, key=lambda e: e.start)
    assert first_adaptive_event.kind == "morsel"
    # ... is at least as fast as the worst static choice ...
    assert adaptive.total_seconds <= max(bytecode.total_seconds,
                                         unoptimized.total_seconds)
    # ... and compiles at most as many pipelines as the static modes do.
    compiled_pipelines = [name for name, modes in
                          adaptive.pipeline_modes.items() if len(modes) > 1]
    assert len(compiled_pipelines) <= len(adaptive.pipeline_modes)

    benchmark(lambda: simulate_adaptive(profile, THREADS,
                                        cost_model=cost_model))
