"""Fig. 14 -- execution trace of TPC-H Q11 with 4 worker threads.

The paper's trace shows: the bytecode mode spreads morsels over all threads
immediately; unoptimized compilation blocks all threads during its up-front
single-threaded compilation; adaptive execution starts interpreting right
away, decides after ~1 ms to compile only the two expensive partsupp
pipelines on a background thread, switches over seamlessly and finishes
first.  The reproduction prints ASCII traces of the three modes and checks
the qualitative properties (adaptive compiles a strict subset of pipelines
and beats the slower static mode).

The simulator's raw event streams are lifted into the unified
:class:`repro.QueryTrace` model (the same structure live executions attach
to their results), so rendering and the ``--json`` dump share one format
with the rest of the telemetry subsystem.

Run as a script: ``python benchmarks/bench_fig14_trace.py [--json [PATH]]``
(``--json`` writes the three traces as one JSON document, to stdout or PATH).
"""

from __future__ import annotations

import json
import os
import sys

_HERE = os.path.dirname(os.path.abspath(__file__))
for _path in (os.path.join(os.path.dirname(_HERE), "src"), _HERE):
    if _path not in sys.path:
        sys.path.insert(0, _path)

from repro.adaptive import render_trace, simulate_adaptive, simulate_static  # noqa: E402
from repro.adaptive.simulation import cost_model_from_profiles, profile_query  # noqa: E402
from repro.telemetry import QueryTrace  # noqa: E402
from repro.workloads import TPCH_QUERIES, populate_tpch  # noqa: E402

THREADS = 4
TINY = os.environ.get("REPRO_BENCH_TINY", "") == "1"


def simulate_all(db):
    """The three Fig. 14 simulations, traces unified into QueryTrace."""
    sql = TPCH_QUERIES[11]
    profile = profile_query(db, sql, label="TPC-H Q11")
    cost_model = cost_model_from_profiles([profile])

    results = {
        "bytecode": simulate_static(profile, "bytecode", THREADS),
        "unoptimized": simulate_static(profile, "unoptimized", THREADS),
        "adaptive": simulate_adaptive(profile, THREADS,
                                      cost_model=cost_model),
    }
    traces = {}
    for mode, result in results.items():
        trace = QueryTrace.from_execution(result.trace, query_id=f"fig14-{mode}",
                                          sql=sql, mode=mode)
        # The simulator reports tier switches as per-pipeline mode chains;
        # recover the switch events for the unified trace from the compile
        # events (a simulated switch completes when its compile event ends).
        for event in result.trace.events:
            if event.kind == "compile" and mode == "adaptive":
                trace.record_tier_switch(
                    event.pipeline, "bytecode", event.mode, at=event.end,
                    synchronous=THREADS == 1,
                    trigger={"source": "simulation"})
        traces[mode] = trace
    return results, traces, cost_model, profile


def traces_to_json(results, traces) -> str:
    document = {mode: {"total_seconds": results[mode].total_seconds,
                       "compile_seconds": results[mode].compile_seconds,
                       "pipeline_modes": {name: "->".join(modes)
                                          for name, modes in
                                          results[mode].pipeline_modes.items()},
                       "trace": traces[mode].to_dict()}
                for mode in results}
    return json.dumps(document, indent=2)


def check_fig14_properties(results) -> None:
    adaptive = results["adaptive"]
    # Qualitative checks from the paper's discussion of the trace:
    # adaptive starts interpreting (no up-front compilation barrier) ...
    first_adaptive_event = min(adaptive.trace.events, key=lambda e: e.start)
    assert first_adaptive_event.kind == "morsel"
    # ... is at least as fast as the worst static choice ...
    assert adaptive.total_seconds <= max(results["bytecode"].total_seconds,
                                         results["unoptimized"].total_seconds)
    # ... and compiles at most as many pipelines as the static modes do.
    compiled_pipelines = [name for name, modes in
                          adaptive.pipeline_modes.items() if len(modes) > 1]
    assert len(compiled_pipelines) <= len(adaptive.pipeline_modes)


def test_fig14_q11_execution_trace(tpch_small, benchmark):
    from conftest import print_table

    results, traces, cost_model, profile = simulate_all(tpch_small)

    for mode in ("bytecode", "unoptimized", "adaptive"):
        print()
        print(render_trace(traces[mode], width=90))

    rows = [[mode, f"{result.total_seconds * 1000:.2f}",
             f"{result.compile_seconds * 1000:.2f}",
             "; ".join(f"{name}:{'->'.join(modes)}"
                       for name, modes in result.pipeline_modes.items())]
            for mode, result in results.items()]
    print_table(f"Fig. 14: TPC-H Q11, {THREADS} threads",
                ["mode", "total [ms]", "compile [ms]", "pipeline modes"], rows)

    check_fig14_properties(results)
    # The unified adaptive trace carries the switch events the raw
    # simulator trace only encodes implicitly.
    compiled = [name for name, modes in
                results["adaptive"].pipeline_modes.items() if len(modes) > 1]
    assert len(traces["adaptive"].tier_switches) == len(compiled)
    # Round-trips as JSON.
    json.loads(traces_to_json(results, traces))

    benchmark(lambda: simulate_adaptive(profile, THREADS,
                                        cost_model=cost_model))


if __name__ == "__main__":
    db = populate_tpch(scale_factor=0.01 if TINY else 0.05, seed=1)
    try:
        results, traces, _, _ = simulate_all(db)
        if "--json" in sys.argv:
            document = traces_to_json(results, traces)
            position = sys.argv.index("--json")
            target = sys.argv[position + 1] \
                if position + 1 < len(sys.argv) else None
            if target:
                with open(target, "w") as handle:
                    handle.write(document + "\n")
                print(f"wrote {target}")
            else:
                print(document)
        else:
            for mode in ("bytecode", "unoptimized", "adaptive"):
                print()
                print(render_trace(traces[mode], width=90))
        check_fig14_properties(results)
        print("\nfig14 trace checks -- PASS")
    finally:
        db.close()
    sys.exit(0)
