"""Parameterized-query amortisation: one plan for a whole query shape.

Before bind parameters, the plan cache (PR 1) only hit on byte-identical
normalized SQL: ``where a = 1`` vs ``where a = 2`` was a full cold
parse / bind / plan / codegen / compile.  This benchmark demonstrates what
first-class parameters plus auto-parameterization buy for the paper's
"heavy repeated traffic" scenario, where clients repeat query *shapes*
with different constants:

* ``cold (literals)``  -- 100 distinct constants with the cache bypassed:
  every execution pays the whole front end and tier compilation.
* ``hot (auto-param)`` -- the same 100 literal statements through the
  default path: the literals are auto-parameterized, so all 100 collide on
  ONE cache entry -- one build, >= 99 hits.
* ``hot (explicit ?)`` -- the same shape as an explicitly prepared
  statement, rebound 100 times.

Acceptance (asserted below): >= 99% plan-cache hit rate over 100 distinct
constants of one shape, and hot execution >= 5x faster than cold.

Run as a script (CI smoke, tiny scale): ``python benchmarks/bench_parameterized_queries.py``
Run under pytest for the benchmark fixture: ``pytest benchmarks/bench_parameterized_queries.py``
Environment: ``REPRO_BENCH_TINY=1`` shrinks the table, ``REPRO_BENCH_FULL=1`` grows it.
"""

from __future__ import annotations

import os
import sys
import time

_HERE = os.path.dirname(os.path.abspath(__file__))
for _path in (os.path.join(os.path.dirname(_HERE), "src"), _HERE):
    if _path not in sys.path:
        sys.path.insert(0, _path)

from repro import Database, SQLType  # noqa: E402

TINY = os.environ.get("REPRO_BENCH_TINY", "") == "1"
FULL = os.environ.get("REPRO_BENCH_FULL", "") == "1"

#: Short-query regime (paper Table I / Fig. 1): compilation dominates, so
#: the table stays small and the query joins + aggregates (several
#: pipelines to generate and compile).  FULL grows the *sweep* (more
#: distinct constants to amortise over), not the data -- this benchmark
#: measures preparation amortisation, not scan throughput.
ROWS = 400 if TINY else 600
DISTINCT_CONSTANTS = 300 if FULL else 100

#: One query shape, 100 different constants.  Deliberately compile-heavy
#: (two joins -> three build/probe pipelines, CASE + several aggregates):
#: the short-query regime where preparation dominates execution.
SHAPE = ("select c_name, s_region, "
         "sum(case when quantity > 4 then price * 1.1 else price end) "
         "as total, avg(price + quantity * 0.25) as ap, count(*) as n "
         "from orders, categories, stores "
         "where category = c_id and store = s_id and o_id >= {0} "
         "and quantity < 7 and price > 1.5 "
         "group by c_name, s_region order by total desc limit 10")
PARAM_SHAPE = SHAPE.replace("{0}", "?")


def build_database(**kwargs) -> Database:
    db = Database(morsel_size=4096, **kwargs)
    db.create_table("orders", [("o_id", SQLType.INT64),
                               ("category", SQLType.INT64),
                               ("store", SQLType.INT64),
                               ("price", SQLType.FLOAT64),
                               ("quantity", SQLType.INT64)])
    db.insert("orders", [(i, i % 11, i % 5, (i * 37 % 1000) / 10.0, i % 9)
                         for i in range(ROWS)])
    db.create_table("categories", [("c_id", SQLType.INT64),
                                   ("c_name", SQLType.STRING)])
    db.insert("categories", [(i, f"cat-{i}") for i in range(11)])
    db.create_table("stores", [("s_id", SQLType.INT64),
                               ("s_region", SQLType.STRING)])
    db.insert("stores", [(i, ["north", "south", "east", "west", "mid"][i])
                         for i in range(5)])
    return db


def _constants():
    return [k * (ROWS // (2 * DISTINCT_CONSTANTS) or 1)
            for k in range(DISTINCT_CONSTANTS)]


def measure_cold(db) -> float:
    start = time.perf_counter()
    for constant in _constants():
        db.execute(SHAPE.format(constant), mode="optimized",
                   use_cache=False)
    return time.perf_counter() - start


def measure_hot_auto(db) -> tuple[float, int, int]:
    db.plan_cache.clear()
    hits_before = db.plan_cache.stats.hits
    misses_before = db.plan_cache.stats.misses
    start = time.perf_counter()
    for constant in _constants():
        db.execute(SHAPE.format(constant), mode="optimized")
    elapsed = time.perf_counter() - start
    return (elapsed, db.plan_cache.stats.hits - hits_before,
            db.plan_cache.stats.misses - misses_before)


def measure_hot_explicit(db) -> float:
    prepared = db.prepare_query(PARAM_SHAPE)
    prepared.execute(mode="optimized", params=(0,))  # pay the build once
    start = time.perf_counter()
    for constant in _constants():
        prepared.execute(mode="optimized", params=(constant,))
    return time.perf_counter() - start


def run_benchmark(report=print) -> dict:
    from conftest import fmt_ms, print_table

    db = build_database()
    try:
        cold = measure_cold(db)
        hot_auto, hits, misses = measure_hot_auto(db)
        hot_explicit = measure_hot_explicit(db)

        # Result sanity: the auto-parameterized path returns what the cold
        # literal path returns.
        probe = SHAPE.format(_constants()[len(_constants()) // 2])
        assert (db.execute(probe).rows
                == db.execute(probe, use_cache=False).rows)

        n = DISTINCT_CONSTANTS
        hit_rate = hits / max(hits + misses, 1)
        print_table(
            f"One query shape, {n} distinct constants "
            f"({ROWS} rows, optimized tier)",
            ["configuration", "wall ms", "ms/query", "vs cold"],
            [["cold (literals, no cache)", fmt_ms(cold),
              fmt_ms(cold / n), "1.00x"],
             ["hot (auto-parameterized)", fmt_ms(hot_auto),
              fmt_ms(hot_auto / n), f"{cold / hot_auto:.2f}x"],
             ["hot (explicit ?, prepared)", fmt_ms(hot_explicit),
              fmt_ms(hot_explicit / n), f"{cold / hot_explicit:.2f}x"]])
        report(f"plan cache over the auto-parameterized sweep: "
               f"{hits} hits / {misses} miss(es) "
               f"({hit_rate:.1%} hit rate)")
        # Headline speedup: cold build-per-query vs the explicitly prepared
        # hot path (the auto-parameterized path additionally re-lexes the
        # literal SQL per call; its ratio is reported in the table above).
        return {"cold": cold, "hot_auto": hot_auto,
                "hot_explicit": hot_explicit,
                "hits": hits, "misses": misses, "hit_rate": hit_rate,
                "auto_speedup": cold / hot_auto,
                "speedup": cold / hot_explicit}
    finally:
        db.close()


def _acceptance(metrics) -> bool:
    return (metrics["hit_rate"] >= 0.99
            and metrics["hits"] >= DISTINCT_CONSTANTS - 1
            and metrics["speedup"] >= 5.0)


# --------------------------------------------------------------------------- #
# pytest entry points
# --------------------------------------------------------------------------- #
def test_parameterized_hit_rate_and_speedup():
    metrics = run_benchmark()
    # Acceptance: one build for the whole shape (>= 99% hit rate over 100
    # distinct constants) and >= 5x hot-vs-cold speedup.
    assert metrics["hit_rate"] >= 0.99, metrics
    assert metrics["hits"] >= DISTINCT_CONSTANTS - 1, metrics
    assert metrics["misses"] <= 1, metrics
    assert metrics["speedup"] >= 5.0, metrics


def test_rebind_latency(benchmark):
    db = build_database()
    try:
        prepared = db.prepare_query(PARAM_SHAPE)
        prepared.execute(mode="optimized", params=(0,))  # warm
        constants = iter(_constants() * 1000)

        def rebind():
            return prepared.execute(mode="optimized",
                                    params=(next(constants),))

        result = benchmark(rebind)
        assert result.cached
    finally:
        db.close()


if __name__ == "__main__":
    metrics = run_benchmark()
    ok = _acceptance(metrics)
    print(f"\nhit rate {metrics['hit_rate']:.1%} (>= 99% required), "
          f"speedup {metrics['speedup']:.2f}x (>= 5x required) -- "
          f"{'PASS' if ok else 'FAIL'}")
    sys.exit(0 if ok else 1)
