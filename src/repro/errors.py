"""Exception hierarchy for the repro query engine.

Every error raised by the library derives from :class:`ReproError`, so callers
can catch a single exception type at the API boundary while the individual
subsystems raise precise subclasses.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all errors raised by the repro library."""


class SQLError(ReproError):
    """Base class for errors in the SQL front end."""


class LexerError(SQLError):
    """A token could not be recognised in the SQL text."""

    def __init__(self, message: str, position: int, line: int, column: int):
        super().__init__(f"{message} (line {line}, column {column})")
        self.position = position
        self.line = line
        self.column = column


class ParserError(SQLError):
    """The SQL text is not syntactically valid."""


class BindError(SQLError):
    """Semantic analysis failed (unknown table/column, type mismatch, ...)."""


class ParameterError(SQLError):
    """A bind parameter was misused.

    Raised when a parameter's type cannot be inferred from its context, when
    the values supplied at execution time do not match the statement's
    parameters (wrong arity, unknown/missing names), or when a value cannot
    be converted to the parameter's inferred SQL type (including NULL, which
    this engine does not support).
    """


class CatalogError(ReproError):
    """Schema or table level error (duplicate table, unknown column, ...)."""


class PlanError(ReproError):
    """The optimizer or physical planner produced or met an invalid plan."""


class CodegenError(ReproError):
    """Code generation from a physical plan to IR failed."""


class IRError(ReproError):
    """The IR is malformed (verifier failures, invalid builder usage, ...)."""


class IRVerificationError(IRError):
    """The IR verifier rejected a module or function.

    Carries the full failure location so a CI log line is actionable on its
    own: ``function_name`` / ``block_name`` locate the defect,
    ``instruction`` holds the offending instruction rendered by
    :mod:`repro.ir.printer` (when one instruction is to blame), and
    ``pass_name`` names the optimization pass whose rewrite broke the
    invariant (when the failure was detected by pass-pipeline validation).
    """

    def __init__(self, message: str, function_name: str = None,
                 block_name: str = None, instruction: str = None,
                 pass_name: str = None):
        location = ""
        if function_name:
            location = function_name
            if block_name:
                location += f"/{block_name}"
        if pass_name:
            message = f"[after pass {pass_name}] {message}"
        if location and not message.startswith(location):
            message = f"{location}: {message}"
        if instruction:
            message += f"\n  in: {instruction}"
        super().__init__(message)
        self.function_name = function_name
        self.block_name = block_name
        self.instruction = instruction
        self.pass_name = pass_name


class VMError(ReproError):
    """Bytecode translation or interpretation failed."""


class BytecodeVerificationError(VMError):
    """The bytecode verifier rejected a translated function.

    ``function_name`` and ``offset`` locate the offending instruction in
    the flat code list; ``instruction`` is its disassembled rendering.
    """

    def __init__(self, message: str, function_name: str = None,
                 offset: int = None, instruction: str = None):
        location = function_name or ""
        if offset is not None:
            location += f"+{offset}"
        if location and not message.startswith(location):
            message = f"{location}: {message}"
        if instruction:
            message += f"\n  in: {instruction}"
        super().__init__(message)
        self.function_name = function_name
        self.offset = offset
        self.instruction = instruction


class BackendError(ReproError):
    """Lowering IR to an executable tier failed."""


class ExecutionError(ReproError):
    """A runtime error occurred while executing a query."""


class OverflowError_(ExecutionError):
    """Checked integer arithmetic overflowed during query execution.

    Named with a trailing underscore to avoid shadowing the builtin
    ``OverflowError`` while still reading naturally at call sites.
    """


class DivisionByZeroError(ExecutionError):
    """A division or modulo by zero occurred during query execution."""


class AdaptiveError(ReproError):
    """The adaptive execution framework was misused or hit an internal error."""


class SchedulerError(ReproError):
    """The concurrent query scheduler was misused (closed database, ...)."""


class AdmissionError(SchedulerError):
    """A query was rejected because the admission queue is full."""


class QueryCancelledError(SchedulerError):
    """The result of a cancelled query ticket was requested."""


class ProtocolError(ReproError):
    """The network wire protocol was violated (bad frame, bad handshake).

    Raised by the frame codecs for malformed, oversized or truncated
    frames, and by both endpoints when the peer breaks the connection
    state machine (e.g. a request before the HELLO handshake).
    """


class ServerError(ReproError):
    """A failure reported by the query server over the wire.

    ``code`` is the machine-readable error class from the ERROR frame
    (``"SQL"``, ``"EXECUTION"``, ``"BUSY"``, ...); ``message`` carries the
    server-side exception text.
    """

    def __init__(self, code: str, message: str):
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.message = message


class AuthenticationError(ServerError):
    """The server rejected the connection's HELLO credentials."""

    def __init__(self, message: str):
        super().__init__("AUTH", message)


class ServerBusyError(ServerError):
    """Admission control rejected the request (wire-level backpressure).

    ``retry_after_ms`` is the server's hint for how long to back off
    before resubmitting.
    """

    def __init__(self, message: str, retry_after_ms: int = 0):
        super().__init__("BUSY", message)
        self.retry_after_ms = int(retry_after_ms)
