"""Bind-parameter specs and value binding.

The binder infers one :class:`ParameterSpec` per parameter slot of a
statement (see :class:`repro.semantics.expressions.ParameterExpr`); at
execution time :func:`bind_parameter_values` validates the caller-supplied
values against those specs -- arity for positional parameters, exact name
sets for named parameters -- and encodes every value into the engine's
internal representation (dates as epoch days, booleans as 0/1, ...).

All misuse surfaces as :class:`repro.errors.ParameterError`, including NULL
values: this engine has no NULL support, so ``None`` is always rejected.
"""

from __future__ import annotations

import datetime as _dt
from collections.abc import Mapping, Sequence
from dataclasses import dataclass
from typing import Optional

from .errors import ParameterError
from .types import SQLType, date_to_days


@dataclass(frozen=True)
class ParameterSpec:
    """One parameter slot of a statement: its position, name and SQL type."""

    index: int
    sql_type: SQLType
    name: Optional[str] = None

    @property
    def label(self) -> str:
        """Human-readable identifier used in error messages."""
        return f":{self.name}" if self.name else f"?{self.index + 1}"


def encode_parameter(value, sql_type: SQLType, label: str):
    """Encode one Python value into the internal form of ``sql_type``.

    Raises :class:`ParameterError` for NULL and for values that cannot be
    converted losslessly (e.g. a non-integral float bound to an INT64
    parameter, or a non-ISO string bound to a DATE parameter).
    """
    if value is None:
        raise ParameterError(
            f"parameter {label} is NULL; this engine does not support NULL "
            f"values")
    if sql_type is SQLType.INT64:
        if isinstance(value, bool):
            return int(value)
        if isinstance(value, int):
            return value
        if isinstance(value, float) and value.is_integer():
            return int(value)
        raise ParameterError(
            f"parameter {label} expects an integer, got {value!r}")
    if sql_type is SQLType.FLOAT64 or sql_type is SQLType.DECIMAL:
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            return float(value)
        raise ParameterError(
            f"parameter {label} expects a number, got {value!r}")
    if sql_type is SQLType.STRING:
        if isinstance(value, str):
            return value
        raise ParameterError(
            f"parameter {label} expects a string, got {value!r}")
    if sql_type is SQLType.DATE:
        if isinstance(value, (_dt.date, str)):
            try:
                return date_to_days(value)
            except ValueError as exc:
                raise ParameterError(
                    f"parameter {label} expects an ISO date, "
                    f"got {value!r}") from exc
        if isinstance(value, int) and not isinstance(value, bool):
            return value  # already epoch days
        raise ParameterError(
            f"parameter {label} expects a date, got {value!r}")
    if sql_type is SQLType.BOOL:
        if isinstance(value, bool):
            return 1 if value else 0
        if isinstance(value, int) and value in (0, 1):
            return value
        raise ParameterError(
            f"parameter {label} expects a boolean, got {value!r}")
    raise ParameterError(
        f"parameter {label} has unsupported type {sql_type}")


def bind_parameter_values(specs: Sequence[ParameterSpec],
                          params) -> list:
    """Validate and encode caller-supplied parameter values.

    ``params`` is a sequence for positional statements, a mapping for named
    statements, or ``None``/empty for statements without parameters.
    Returns the encoded values in slot order.
    """
    specs = list(specs)
    named = any(spec.name is not None for spec in specs)

    if not specs:
        if params:
            raise ParameterError(
                f"query takes no parameters, got {params!r}")
        return []

    if params is None:
        raise ParameterError(
            f"query expects {len(specs)} parameter(s) "
            f"({', '.join(s.label for s in specs)}), got none")

    if named:
        if not isinstance(params, Mapping):
            raise ParameterError(
                "query uses named parameters; pass a mapping of "
                f"name -> value, got {type(params).__name__}")
        expected = {spec.name for spec in specs}
        supplied = {str(key).lower() for key in params}
        missing = sorted(expected - supplied)
        extra = sorted(supplied - expected)
        if missing or extra:
            detail = []
            if missing:
                detail.append(f"missing {missing}")
            if extra:
                detail.append(f"unknown {extra}")
            raise ParameterError(
                f"named parameter mismatch: {'; '.join(detail)}")
        by_name = {str(key).lower(): value for key, value in params.items()}
        return [encode_parameter(by_name[spec.name], spec.sql_type,
                                 spec.label)
                for spec in specs]

    if isinstance(params, Mapping):
        raise ParameterError(
            "query uses positional parameters; pass a sequence of values, "
            f"got a mapping")
    if isinstance(params, str) or not isinstance(params, Sequence):
        raise ParameterError(
            f"positional parameters must be a sequence, got "
            f"{type(params).__name__}")
    values = list(params)
    if len(values) != len(specs):
        raise ParameterError(
            f"query expects {len(specs)} parameter(s), got {len(values)}")
    return [encode_parameter(value, spec.sql_type, spec.label)
            for spec, value in zip(specs, values)]
