"""The planner: BoundQuery -> optimized logical plan -> pipeline plan.

Planning proceeds in four steps:

1. **Predicate classification** -- WHERE/ON conjuncts become per-table filters
   (pushed into scans), equi-join edges, or residual predicates.
2. **Join ordering** -- the binding with the largest filtered cardinality
   becomes the probe-side *driver*; the remaining bindings are attached
   greedily (smallest connected first) as hash-join build sides, producing a
   left-deep join tree.
3. **Logical plan construction** -- scans, joins, aggregation, projection,
   ordering, limit.
4. **Pipeline decomposition** -- one build pipeline per hash join, one probe
   pipeline over the driver, and (for aggregations) a final pipeline scanning
   the materialised aggregate (the paper's "hash table scan" pipeline).
"""

from __future__ import annotations

import dataclasses
import itertools
from dataclasses import dataclass, field
from typing import Optional

from ..catalog import Catalog
from ..errors import PlanError
from ..semantics.binder import BoundQuery, TableBinding
from ..semantics.expressions import (
    AggregateExpr,
    ArithmeticExpr,
    BetweenExpr,
    CaseExpr,
    CastExpr,
    ColumnExpr,
    ComparisonExpr,
    ExtractExpr,
    InListExpr,
    LikeExpr,
    LiteralExpr,
    LogicalExpr,
    NotExpr,
    TypedExpression,
    collect_aggregates,
    collect_columns,
    referenced_bindings,
)
from ..types import SQLType
from ..plan.sargs import extract_scan_predicates
from ..plan.logical import (
    LogicalAggregate,
    LogicalDistinct,
    LogicalFilter,
    LogicalJoin,
    LogicalLimit,
    LogicalOperator,
    LogicalProject,
    LogicalScan,
    LogicalSort,
)
from ..plan.physical import (
    AggregateSink,
    AggregateSpec,
    HashBuildSink,
    IntermediateSource,
    OutputSink,
    PhysFilter,
    PhysHashProbe,
    Pipeline,
    PhysicalPlan,
    TableSource,
)
from .cardinality import CardinalityEstimator


@dataclass
class PlanningResult:
    """Everything planning produces for one query."""

    logical: LogicalOperator
    physical: PhysicalPlan
    #: The optimizer's own cost estimate of the whole query (used only by the
    #: "static decision from estimates" contrast experiments).
    estimated_total_rows: float = 0.0


@dataclass
class _JoinStep:
    """One build side attached to the probe spine."""

    binding: TableBinding
    keys: list[tuple[TypedExpression, TypedExpression]]  # (probe, build)
    filters: list[TypedExpression]
    cardinality: float
    #: LEFT OUTER JOIN step: probe rows without a match survive NULL-padded.
    outer: bool = False
    #: ON conjuncts that must be evaluated per candidate match (everything
    #: of the ON clause that is neither a build-side filter nor an equi key).
    residuals: list[TypedExpression] = field(default_factory=list)


class Planner:
    """Plans bound queries against a catalog."""

    def __init__(self, catalog: Catalog):
        self.catalog = catalog
        self.estimator = CardinalityEstimator(catalog)

    # ------------------------------------------------------------------ #
    # entry point
    # ------------------------------------------------------------------ #
    def plan(self, query: BoundQuery) -> PlanningResult:
        table_filters, join_edges, residuals = self._classify_predicates(query)

        cardinalities = {
            binding.name: self.estimator.scan_cardinality(
                binding, table_filters.get(binding.name, []))
            for binding in query.bindings
        }

        driver, steps = self._order_joins(query, table_filters, join_edges,
                                          cardinalities)
        # LEFT OUTER JOIN builds are excluded from the greedy ordering above
        # (reordering them past other joins would change which rows are
        # preserved); they attach after the inner spine, in FROM-list order.
        steps = steps + self._outer_join_steps(query)
        logical = self._build_logical(query, driver, steps, table_filters,
                                      residuals, cardinalities)
        physical = self._decompose_pipelines(query, driver, steps,
                                             table_filters, residuals,
                                             cardinalities)
        total = cardinalities[driver.name]
        return PlanningResult(logical=logical, physical=physical,
                              estimated_total_rows=total)

    # ------------------------------------------------------------------ #
    # step 1: predicate classification
    # ------------------------------------------------------------------ #
    def _classify_predicates(self, query: BoundQuery):
        table_filters: dict[str, list[TypedExpression]] = {}
        join_edges: list[tuple[str, str, TypedExpression, TypedExpression]] = []
        residuals: list[TypedExpression] = []

        for predicate in query.predicates:
            bindings = referenced_bindings(predicate)
            if len(bindings) == 1:
                table_filters.setdefault(next(iter(bindings)), []).append(
                    predicate)
                continue
            if len(bindings) == 2 and isinstance(predicate, ComparisonExpr) \
                    and predicate.operator == "=" \
                    and isinstance(predicate.left, ColumnExpr) \
                    and isinstance(predicate.right, ColumnExpr):
                left, right = predicate.left, predicate.right
                join_edges.append((left.binding, right.binding, left, right))
                continue
            residuals.append(predicate)
        return table_filters, join_edges, residuals

    # ------------------------------------------------------------------ #
    # step 2: join ordering
    # ------------------------------------------------------------------ #
    def _order_joins(self, query: BoundQuery, table_filters, join_edges,
                     cardinalities):
        nullable = query.nullable_bindings
        bindings = {binding.name: binding for binding in query.bindings
                    if binding.name not in nullable}
        if not bindings:
            raise PlanError("query has no tables")

        driver_name = max(bindings, key=lambda name: cardinalities[name])
        driver = bindings[driver_name]
        placed = {driver_name}
        remaining = set(bindings) - placed

        steps: list[_JoinStep] = []
        while remaining:
            # Candidates connected to the already placed set via equi joins.
            candidates: dict[str, list] = {}
            for left_b, right_b, left_e, right_e in join_edges:
                if left_b in placed and right_b in remaining:
                    candidates.setdefault(right_b, []).append((left_e, right_e))
                elif right_b in placed and left_b in remaining:
                    candidates.setdefault(left_b, []).append((right_e, left_e))
            if candidates:
                # Greedy: smallest filtered build side first.
                chosen = min(candidates, key=lambda name: cardinalities[name])
                keys = candidates[chosen]
            else:
                # Cross product fallback (rare): pick the smallest remaining.
                chosen = min(remaining, key=lambda name: cardinalities[name])
                keys = []
            steps.append(_JoinStep(
                binding=bindings[chosen],
                keys=keys,
                filters=table_filters.get(chosen, []),
                cardinality=cardinalities[chosen]))
            placed.add(chosen)
            remaining.discard(chosen)
        return driver, steps

    def _outer_join_steps(self, query: BoundQuery) -> list[_JoinStep]:
        """One trailing build step per LEFT OUTER JOIN, in FROM-list order.

        Each ON conjunct is classified relative to the preserved/probe side:
        conjuncts touching only the build binding become build-side scan
        filters (a build row failing them can never match, which is
        equivalent), equi comparisons between a build column and a probe-side
        column become hash keys, and everything else (probe-only conjuncts
        included -- they decide matching, not filtering) is evaluated per
        candidate match as a probe residual.
        """
        bindings = {binding.name: binding for binding in query.bindings}
        steps: list[_JoinStep] = []
        for join in query.outer_joins:
            build = join.binding
            filters: list[TypedExpression] = []
            keys: list[tuple[TypedExpression, TypedExpression]] = []
            residuals: list[TypedExpression] = []
            for conjunct in join.conjuncts:
                refs = referenced_bindings(conjunct)
                if refs <= {build}:
                    filters.append(conjunct)
                elif (isinstance(conjunct, ComparisonExpr)
                        and conjunct.operator == "="
                        and isinstance(conjunct.left, ColumnExpr)
                        and isinstance(conjunct.right, ColumnExpr)
                        and len(refs) == 2 and build in refs):
                    if conjunct.right.binding == build:
                        keys.append((conjunct.left, conjunct.right))
                    else:
                        keys.append((conjunct.right, conjunct.left))
                else:
                    residuals.append(conjunct)
            binding = bindings[build]
            steps.append(_JoinStep(
                binding=binding,
                keys=keys,
                filters=filters,
                cardinality=self.estimator.scan_cardinality(binding, filters),
                outer=True,
                residuals=residuals))
        return steps

    # ------------------------------------------------------------------ #
    # step 3: logical plan
    # ------------------------------------------------------------------ #
    def _build_logical(self, query: BoundQuery, driver: TableBinding,
                       steps: list[_JoinStep], table_filters, residuals,
                       cardinalities) -> LogicalOperator:
        node: LogicalOperator = LogicalScan(
            binding=driver.name, table_name=driver.table_name,
            filters=table_filters.get(driver.name, []),
            cardinality=cardinalities[driver.name])
        running = cardinalities[driver.name]
        for step in steps:
            build = LogicalScan(binding=step.binding.name,
                                table_name=step.binding.table_name,
                                filters=step.filters,
                                cardinality=step.cardinality)
            stats = self.catalog.statistics(step.binding.table_name)
            distinct = step.cardinality
            if step.keys:
                build_key = step.keys[0][1]
                column_stats = stats.column(build_key.column) \
                    if isinstance(build_key, ColumnExpr) else None
                if column_stats is not None:
                    distinct = max(column_stats.num_distinct, 1)
            joined = self.estimator.join_cardinality(
                running, step.cardinality, distinct)
            if step.outer:
                # Every probe row survives a left join, matched or not.
                joined = max(running, joined)
            running = joined
            node = LogicalJoin(left=node, right=build, keys=step.keys,
                               residual=list(step.residuals),
                               kind="left" if step.outer else "inner",
                               cardinality=running)
        if residuals:
            node = LogicalFilter(child=node, predicates=list(residuals))

        if query.has_aggregation:
            aggregates = _distinct_aggregates(query)
            node = LogicalAggregate(
                child=node, group_by=list(query.group_by),
                aggregates=aggregates, having=query.having,
                cardinality=max(running / 10.0, 1.0))
        node = LogicalProject(child=node, columns=[(c.name, c.expr)
                                                   for c in query.output])
        if query.distinct:
            node = LogicalDistinct(child=node)
        if query.order_by:
            node = LogicalSort(child=node, keys=list(query.order_by))
        if query.limit is not None:
            node = LogicalLimit(child=node, limit=query.limit)
        return node

    # ------------------------------------------------------------------ #
    # step 4: pipeline decomposition
    # ------------------------------------------------------------------ #
    def _decompose_pipelines(self, query: BoundQuery, driver: TableBinding,
                             steps: list[_JoinStep], table_filters, residuals,
                             cardinalities) -> PhysicalPlan:
        pipelines: list[Pipeline] = []
        table_sources: dict[int, TableSource] = {}
        intermediate_sources: dict[int, IntermediateSource] = {}
        source_counter = itertools.count()
        pipeline_counter = itertools.count()
        scan_occurrence: dict[str, int] = {}

        def new_table_source(binding: TableBinding) -> TableSource:
            source = TableSource(source_id=next(source_counter),
                                 binding=binding.name, table=binding.table)
            table_sources[source.source_id] = source
            return source

        def scan_label(table_name: str) -> str:
            scan_occurrence[table_name] = scan_occurrence.get(table_name, 0) + 1
            occurrence = scan_occurrence[table_name]
            return (f"scan {table_name} {occurrence}"
                    if occurrence > 1 else f"scan {table_name}")

        # Columns needed downstream, per binding (for build payloads).
        needed = self._needed_columns(query, steps, residuals)

        # ---- build pipelines (one per join step) ---------------------------
        probes: list[PhysHashProbe] = []
        for join_id, step in enumerate(steps):
            source = new_table_source(step.binding)
            operators = [PhysFilter(p) for p in step.filters]
            payload = _payload_columns(step.binding.name, needed)
            sink = HashBuildSink(join_id=join_id,
                                 build_keys=[k[1] for k in step.keys],
                                 payload_columns=payload)
            pipelines.append(Pipeline(
                pipeline_id=next(pipeline_counter),
                source=source,
                operators=operators,
                sink=sink,
                estimated_rows=step.cardinality,
                label=scan_label(step.binding.table_name),
                scan_predicates=extract_scan_predicates(
                    step.binding.name, step.filters)))
            probes.append(PhysHashProbe(
                join_id=join_id,
                probe_keys=[k[0] for k in step.keys],
                build_binding=step.binding.name,
                payload_columns=payload,
                residual=list(step.residuals),
                outer=step.outer))

        # ---- probe pipeline over the driver --------------------------------
        probe_operators: list = [PhysFilter(p)
                                 for p in table_filters.get(driver.name, [])]
        available = {driver.name}
        pending_residuals = list(residuals)
        for probe in probes:
            probe_operators.append(probe)
            available.add(probe.build_binding)
            still_pending = []
            for residual in pending_residuals:
                if referenced_bindings(residual) <= available:
                    probe_operators.append(PhysFilter(residual))
                else:
                    still_pending.append(residual)
            pending_residuals = still_pending
        if pending_residuals:
            raise PlanError(
                "residual predicates reference bindings that never become "
                "available; unsupported join shape")

        driver_source = new_table_source(driver)
        driver_sargs = extract_scan_predicates(
            driver.name, table_filters.get(driver.name, []))
        output_columns = [(c.name, c.expr.result_type) for c in query.output]

        if query.has_aggregation:
            agg_id = 0
            group_by = list(query.group_by)
            aggregates = _distinct_aggregates(query)
            specs = []
            for aggregate in aggregates:
                specs.append(AggregateSpec(function=aggregate.function,
                                           argument=aggregate.argument,
                                           result_type=aggregate.result_type))
            intermediate = IntermediateSource(
                source_id=next(source_counter),
                name=f"aggregate {agg_id}",
                binding=f"__agg{agg_id}",
                columns=(
                    [(f"k{i}", expr.result_type)
                     for i, expr in enumerate(group_by)]
                    + [(f"a{j}", spec.result_type)
                       for j, spec in enumerate(specs)]))
            intermediate_sources[intermediate.source_id] = intermediate

            pipelines.append(Pipeline(
                pipeline_id=next(pipeline_counter),
                source=driver_source,
                operators=probe_operators,
                sink=AggregateSink(agg_id=agg_id, group_by=group_by,
                                   aggregates=specs,
                                   intermediate=intermediate),
                estimated_rows=cardinalities[driver.name],
                label=scan_label(driver.table_name),
                scan_predicates=driver_sargs))

            # Rewrite output / having / order-by over the intermediate.
            mapping: dict[tuple, ColumnExpr] = {}
            for i, expr in enumerate(group_by):
                mapping[expr.key()] = ColumnExpr(
                    binding=intermediate.binding, column=f"k{i}",
                    result_type=expr.result_type)
            for j, (spec, aggregate) in enumerate(zip(specs, aggregates)):
                mapping[aggregate.key()] = ColumnExpr(
                    binding=intermediate.binding, column=f"a{j}",
                    result_type=spec.result_type)

            rewritten_output = [(c.name, rewrite_expression(c.expr, mapping))
                                for c in query.output]
            rewritten_having = (rewrite_expression(query.having, mapping)
                                if query.having is not None else None)
            rewritten_order = [(rewrite_expression(expr, mapping), asc)
                               for expr, asc in query.order_by]

            final_operators = ([PhysFilter(rewritten_having)]
                               if rewritten_having is not None else [])
            pipelines.append(Pipeline(
                pipeline_id=next(pipeline_counter),
                source=intermediate,
                operators=final_operators,
                sink=OutputSink(output=rewritten_output,
                                order_by=rewritten_order,
                                limit=query.limit,
                                distinct=query.distinct),
                estimated_rows=max(cardinalities[driver.name] / 10.0, 1.0),
                label="hash table scan"))
        else:
            pipelines.append(Pipeline(
                pipeline_id=next(pipeline_counter),
                source=driver_source,
                operators=probe_operators,
                sink=OutputSink(output=[(c.name, c.expr)
                                        for c in query.output],
                                order_by=list(query.order_by),
                                limit=query.limit,
                                distinct=query.distinct),
                estimated_rows=cardinalities[driver.name],
                label=scan_label(driver.table_name),
                scan_predicates=driver_sargs))

        return PhysicalPlan(pipelines=pipelines,
                            output_columns=output_columns,
                            table_sources=table_sources,
                            intermediate_sources=intermediate_sources,
                            parameters=list(query.parameters))

    # ------------------------------------------------------------------ #
    def _needed_columns(self, query: BoundQuery, steps, residuals
                        ) -> dict[str, dict[str, ColumnExpr]]:
        """Columns of each binding needed after its scan/build pipeline."""
        needed: dict[str, dict[str, ColumnExpr]] = {}

        def note(expr: TypedExpression) -> None:
            for column in collect_columns(expr):
                needed.setdefault(column.binding, {})[column.column] = column

        for column in query.output:
            note(column.expr)
        for expr in query.group_by:
            note(expr)
        if query.having is not None:
            note(query.having)
        for expr, _ in query.order_by:
            note(expr)
        for residual in residuals:
            note(residual)
        for step in steps:
            for probe_key, build_key in step.keys:
                note(probe_key)
                note(build_key)
            for residual in step.residuals:
                note(residual)
        return needed


# --------------------------------------------------------------------------- #
# helpers
# --------------------------------------------------------------------------- #
def _payload_columns(binding: str, needed) -> list[ColumnExpr]:
    columns = needed.get(binding, {})
    return [columns[name] for name in sorted(columns)]


def _distinct_aggregates(query: BoundQuery) -> list[AggregateExpr]:
    """All distinct aggregate expressions of the query (by structural key)."""
    seen: dict[tuple, AggregateExpr] = {}
    sources: list[TypedExpression] = [c.expr for c in query.output]
    if query.having is not None:
        sources.append(query.having)
    sources.extend(expr for expr, _ in query.order_by)
    for expr in sources:
        for aggregate in collect_aggregates(expr):
            seen.setdefault(aggregate.key(), aggregate)
    return list(seen.values())


def rewrite_expression(expr: TypedExpression,
                       mapping: dict[tuple, ColumnExpr]) -> TypedExpression:
    """Replace subexpressions by structural key (used for aggregate outputs)."""
    replacement = mapping.get(expr.key())
    if replacement is not None:
        return replacement

    if isinstance(expr, (ColumnExpr, LiteralExpr)):
        return expr
    if isinstance(expr, ArithmeticExpr):
        return dataclasses.replace(
            expr, left=rewrite_expression(expr.left, mapping),
            right=rewrite_expression(expr.right, mapping))
    if isinstance(expr, ComparisonExpr):
        return dataclasses.replace(
            expr, left=rewrite_expression(expr.left, mapping),
            right=rewrite_expression(expr.right, mapping))
    if isinstance(expr, LogicalExpr):
        return dataclasses.replace(
            expr, operands=[rewrite_expression(op, mapping)
                            for op in expr.operands])
    if isinstance(expr, NotExpr):
        return dataclasses.replace(
            expr, operand=rewrite_expression(expr.operand, mapping))
    if isinstance(expr, BetweenExpr):
        return dataclasses.replace(
            expr, expr=rewrite_expression(expr.expr, mapping),
            low=rewrite_expression(expr.low, mapping),
            high=rewrite_expression(expr.high, mapping))
    if isinstance(expr, InListExpr):
        return dataclasses.replace(
            expr, expr=rewrite_expression(expr.expr, mapping),
            values=[rewrite_expression(v, mapping) for v in expr.values])
    if isinstance(expr, LikeExpr):
        return dataclasses.replace(
            expr, expr=rewrite_expression(expr.expr, mapping))
    if isinstance(expr, CaseExpr):
        return dataclasses.replace(
            expr,
            branches=[(rewrite_expression(c, mapping),
                       rewrite_expression(v, mapping))
                      for c, v in expr.branches],
            default=(rewrite_expression(expr.default, mapping)
                     if expr.default is not None else None))
    if isinstance(expr, ExtractExpr):
        return dataclasses.replace(
            expr, operand=rewrite_expression(expr.operand, mapping))
    if isinstance(expr, CastExpr):
        return dataclasses.replace(
            expr, operand=rewrite_expression(expr.operand, mapping))
    if isinstance(expr, AggregateExpr):
        raise PlanError(
            "aggregate expression was not mapped to the aggregate output")
    return expr
