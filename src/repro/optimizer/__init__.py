"""Query optimizer: predicate classification, cardinality estimation,
greedy join ordering and pipeline decomposition."""

from .cardinality import CardinalityEstimator
from .planner import Planner, PlanningResult

__all__ = ["CardinalityEstimator", "Planner", "PlanningResult"]
