"""Cardinality and selectivity estimation.

The estimates only steer join ordering and provide the "optimizer estimate"
contrast for the adaptive-execution experiments; the adaptive framework
itself deliberately does not rely on them (paper Section III: "without
relying on the notoriously inaccurate cost estimates of query optimizers").
"""

from __future__ import annotations

from typing import Optional

from ..catalog import Catalog
from ..semantics.binder import TableBinding
from ..semantics.expressions import (
    BetweenExpr,
    ColumnExpr,
    ComparisonExpr,
    InListExpr,
    LikeExpr,
    LiteralExpr,
    LogicalExpr,
    NotExpr,
    ParameterExpr,
    TypedExpression,
)


def _constant_operand(expr: TypedExpression):
    """``(is_constant, value)`` for literal-like comparison operands.

    Bind parameters count as constants -- one plan must serve every binding
    -- with the auto-parameterization hint (the literal the parameter
    replaced, already encoded) standing in as the value.  A parameter
    without a hint yields ``value=None`` and falls back to the default
    selectivities.
    """
    if isinstance(expr, LiteralExpr):
        return True, expr.value
    if isinstance(expr, ParameterExpr):
        return True, expr.hint
    return False, None

#: Default selectivities for predicate shapes whose statistics are unknown.
DEFAULT_RANGE_SELECTIVITY = 0.3
DEFAULT_LIKE_SELECTIVITY = 0.25
DEFAULT_EQUALITY_SELECTIVITY = 0.1
DEFAULT_SELECTIVITY = 0.5


class CardinalityEstimator:
    """Estimates scan cardinalities and predicate selectivities."""

    def __init__(self, catalog: Catalog):
        self.catalog = catalog

    # ------------------------------------------------------------------ #
    def scan_cardinality(self, binding: TableBinding,
                         filters: list[TypedExpression]) -> float:
        rows = float(binding.table.num_rows)
        for predicate in filters:
            rows *= self.selectivity(binding, predicate)
        return max(rows, 1.0)

    def join_cardinality(self, probe_rows: float, build_rows: float,
                         build_distinct: float) -> float:
        """Classic |L|x|R| / max(distinct keys) estimate."""
        if build_distinct <= 0:
            build_distinct = max(build_rows, 1.0)
        return max(probe_rows * build_rows / build_distinct, 1.0)

    # ------------------------------------------------------------------ #
    def selectivity(self, binding: TableBinding,
                    predicate: TypedExpression) -> float:
        if isinstance(predicate, ComparisonExpr):
            return self._comparison_selectivity(binding, predicate)
        if isinstance(predicate, BetweenExpr):
            return DEFAULT_RANGE_SELECTIVITY if not predicate.negated else \
                1.0 - DEFAULT_RANGE_SELECTIVITY
        if isinstance(predicate, InListExpr):
            column = predicate.expr
            base = DEFAULT_EQUALITY_SELECTIVITY
            if isinstance(column, ColumnExpr):
                stats = self._column_stats(binding, column)
                if stats is not None and stats.num_distinct > 0:
                    base = 1.0 / stats.num_distinct
            value = min(base * len(predicate.values), 1.0)
            return 1.0 - value if predicate.negated else value
        if isinstance(predicate, LikeExpr):
            value = DEFAULT_LIKE_SELECTIVITY
            return 1.0 - value if predicate.negated else value
        if isinstance(predicate, NotExpr):
            return 1.0 - self.selectivity(binding, predicate.operand)
        if isinstance(predicate, LogicalExpr):
            parts = [self.selectivity(binding, operand)
                     for operand in predicate.operands]
            if predicate.operator == "and":
                result = 1.0
                for part in parts:
                    result *= part
                return result
            # OR: inclusion/exclusion for two, cap otherwise
            result = 0.0
            for part in parts:
                result = result + part - result * part
            return min(result, 1.0)
        return DEFAULT_SELECTIVITY

    # ------------------------------------------------------------------ #
    def _comparison_selectivity(self, binding: TableBinding,
                                predicate: ComparisonExpr) -> float:
        column, value = None, None
        left_const, left_value = _constant_operand(predicate.left)
        right_const, right_value = _constant_operand(predicate.right)
        if isinstance(predicate.left, ColumnExpr) and right_const:
            column, value = predicate.left, right_value
        elif isinstance(predicate.right, ColumnExpr) and left_const:
            column, value = predicate.right, left_value
        if column is None:
            return DEFAULT_SELECTIVITY
        stats = self._column_stats(binding, column)
        if predicate.operator == "=":
            if stats is not None and stats.num_distinct > 0:
                return 1.0 / stats.num_distinct
            return DEFAULT_EQUALITY_SELECTIVITY
        if predicate.operator == "<>":
            if stats is not None and stats.num_distinct > 0:
                return 1.0 - 1.0 / stats.num_distinct
            return 1.0 - DEFAULT_EQUALITY_SELECTIVITY
        # Range predicate: interpolate against min/max when available.
        if stats is not None and isinstance(value, (int, float)) \
                and isinstance(stats.min_value, (int, float)) \
                and isinstance(stats.max_value, (int, float)) \
                and stats.max_value > stats.min_value:
            span = stats.max_value - stats.min_value
            fraction = (value - stats.min_value) / span
            fraction = min(max(fraction, 0.0), 1.0)
            if predicate.operator in ("<", "<="):
                return max(fraction, 0.01)
            return max(1.0 - fraction, 0.01)
        return DEFAULT_RANGE_SELECTIVITY

    def _column_stats(self, binding: TableBinding, column: ColumnExpr):
        if column.binding != binding.name:
            return None
        stats = self.catalog.statistics(binding.table_name)
        return stats.column(column.column)
