"""Catalog and columnar storage."""

from .schema import Column, TableSchema
from .table import Table
from .catalog import Catalog
from .statistics import ColumnStatistics, TableStatistics

__all__ = [
    "Column", "TableSchema", "Table", "Catalog",
    "ColumnStatistics", "TableStatistics",
]
