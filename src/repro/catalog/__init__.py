"""Catalog and columnar storage."""

from .schema import Column, TableSchema
from .table import ColumnView, Table, DEFAULT_CHUNK_ROWS
from .catalog import Catalog
from .statistics import ColumnStatistics, TableStatistics

__all__ = [
    "Column", "TableSchema", "Table", "ColumnView", "DEFAULT_CHUNK_ROWS",
    "Catalog", "ColumnStatistics", "TableStatistics",
]
