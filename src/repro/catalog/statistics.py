"""Simple table/column statistics for the cardinality estimator.

The paper's point is precisely that optimizer estimates are unreliable, so
the adaptive framework does not depend on them; the statistics here exist to
drive join ordering and to let the experiments contrast estimate-driven
up-front decisions with runtime-feedback decisions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..types import SQLType
from .table import Table


@dataclass
class ColumnStatistics:
    """Per-column summary statistics."""

    name: str
    sql_type: SQLType
    num_values: int
    num_distinct: int
    min_value: Optional[object] = None
    max_value: Optional[object] = None

    @property
    def selectivity_of_equality(self) -> float:
        """Estimated selectivity of ``column = constant``."""
        if self.num_distinct <= 0:
            return 1.0
        return 1.0 / self.num_distinct


@dataclass
class TableStatistics:
    """Statistics over a whole table."""

    table_name: str
    num_rows: int
    columns: dict[str, ColumnStatistics]

    def column(self, name: str) -> Optional[ColumnStatistics]:
        return self.columns.get(name.lower())


def compute_table_statistics(table: Table,
                             sample_limit: int = 50_000) -> TableStatistics:
    """Compute statistics, sampling long columns to keep analysis cheap."""
    columns: dict[str, ColumnStatistics] = {}
    num_rows = table.num_rows
    for column in table.schema.columns:
        data = table.column_data(column.name)
        if num_rows > sample_limit:
            step = max(num_rows // sample_limit, 1)
            sample = data[::step]
        else:
            sample = data
        if sample:
            distinct = len(set(sample))
            if num_rows > len(sample):
                # Scale the distinct-count estimate linearly, capped by rows.
                distinct = min(int(distinct * num_rows / len(sample)), num_rows)
            min_value = min(sample)
            max_value = max(sample)
        else:
            distinct, min_value, max_value = 0, None, None
        columns[column.name.lower()] = ColumnStatistics(
            name=column.name,
            sql_type=column.sql_type,
            num_values=num_rows,
            num_distinct=distinct,
            min_value=min_value,
            max_value=max_value,
        )
    return TableStatistics(table_name=table.name, num_rows=num_rows,
                           columns=columns)
