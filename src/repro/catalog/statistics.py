"""Simple table/column statistics for the cardinality estimator.

The paper's point is precisely that optimizer estimates are unreliable, so
the adaptive framework does not depend on them; the statistics here exist to
drive join ordering and to let the experiments contrast estimate-driven
up-front decisions with runtime-feedback decisions.

These statistics may be computed from a strided *sample* of long columns,
which makes ``min_value`` / ``max_value`` approximate (the true extremes can
fall between sample points).  Every sampled statistic therefore carries
``exact=False``.  Anything that must never produce wrong answers -- in
particular zone-map scan pruning -- must not consult these values; pruning
reads the exact per-chunk zone maps of :class:`repro.catalog.Table` instead
(see :mod:`repro.plan.sargs`).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import islice
from typing import Optional

from ..types import SQLType
from .table import Table


@dataclass
class ColumnStatistics:
    """Per-column summary statistics."""

    name: str
    sql_type: SQLType
    num_values: int
    num_distinct: int
    min_value: Optional[object] = None
    max_value: Optional[object] = None
    #: ``False`` when the statistics were computed from a sample: the
    #: min/max then bound only the *sampled* values, not the column, and
    #: ``num_distinct`` is an extrapolation.  Correctness-critical callers
    #: (zone-map pruning) must never consult inexact statistics.
    exact: bool = True

    @property
    def selectivity_of_equality(self) -> float:
        """Estimated selectivity of ``column = constant``."""
        if self.num_distinct <= 0:
            return 1.0
        return 1.0 / self.num_distinct


@dataclass
class TableStatistics:
    """Statistics over a whole table."""

    table_name: str
    num_rows: int
    columns: dict[str, ColumnStatistics]

    def column(self, name: str) -> Optional[ColumnStatistics]:
        return self.columns.get(name.lower())


def compute_table_statistics(table: Table,
                             sample_limit: int = 50_000) -> TableStatistics:
    """Compute statistics, sampling long columns to keep analysis cheap.

    The row count is snapshotted once so concurrent inserts cannot make the
    per-column samples disagree about the table's length.
    """
    columns: dict[str, ColumnStatistics] = {}
    num_rows = table.snapshot_rows()
    for column in table.schema.columns:
        data = table.column_data(column.name)
        # ColumnView iteration walks whole chunks, far cheaper than
        # per-element shift/mask indexing; islice caps it at the snapshot
        # (concurrent inserts can only grow the view past it) and strides
        # without materialising the full column.
        if num_rows > sample_limit:
            step = max(num_rows // sample_limit, 1)
            sample = list(islice(iter(data), 0, num_rows, step))
            sampled = True
        else:
            sample = list(islice(iter(data), num_rows))
            sampled = False
        if sample:
            distinct = len(set(sample))
            if num_rows > len(sample):
                # Scale the distinct-count estimate linearly, capped by rows.
                distinct = min(int(distinct * num_rows / len(sample)), num_rows)
            min_value = min(sample)
            max_value = max(sample)
        else:
            distinct, min_value, max_value = 0, None, None
        columns[column.name.lower()] = ColumnStatistics(
            name=column.name,
            sql_type=column.sql_type,
            num_values=num_rows,
            num_distinct=distinct,
            min_value=min_value,
            max_value=max_value,
            exact=not sampled,
        )
    return TableStatistics(table_name=table.name, num_rows=num_rows,
                           columns=columns)
