"""Columnar tables.

Storage is column-major: every column is a plain Python list whose elements
are already in the engine's internal representation (ints for INT64 / DECIMAL
/ DATE / BOOL, floats for FLOAT64, ``str`` for STRING).  Generated query code
reads columns directly through ``(buffer, offset)`` pointers, so no per-tuple
conversion happens on the hot path.  The vectorized baseline caches numpy
views of numeric columns on demand.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

import numpy as np

from ..errors import CatalogError
from ..types import SQLType, decode_internal_value, encode_python_value
from .schema import Column, TableSchema


class Table:
    """A named, columnar table."""

    def __init__(self, schema: TableSchema):
        self.schema = schema
        self.name = schema.table_name
        self.columns: dict[str, list] = {column.name: []
                                         for column in schema.columns}
        self._numpy_cache: dict[str, np.ndarray] = {}

    # ------------------------------------------------------------------ #
    # loading data
    # ------------------------------------------------------------------ #
    def insert_rows(self, rows: Iterable[Sequence], encode: bool = True) -> int:
        """Append rows (sequences in schema column order).

        ``encode=True`` converts user-level Python values (dates, floats for
        decimals) to the internal representation; generators that already
        produce internal values can pass ``encode=False`` to skip that work.

        Each row is appended atomically: the whole row is validated and
        encoded *before* any column list is touched, so a value that fails
        to encode can never leave ragged columns behind.  Rows preceding
        the failing one stay inserted.
        """
        count = 0
        column_lists = [self.columns[column.name]
                        for column in self.schema.columns]
        types = [column.sql_type for column in self.schema.columns]
        width = len(column_lists)
        try:
            for row in rows:
                if len(row) != width:
                    raise CatalogError(
                        f"row width {len(row)} does not match table "
                        f"{self.name!r} ({width} columns)")
                if encode:
                    row = [encode_python_value(value, sql_type)
                           for sql_type, value in zip(types, row)]
                for target, value in zip(column_lists, row):
                    target.append(value)
                count += 1
        finally:
            # Invalidate even on a failed batch: rows appended before the
            # failure are part of the table now.
            self._numpy_cache.clear()
        return count

    def append_columns(self, columns: dict[str, list]) -> None:
        """Bulk-append pre-encoded column data (used by the data generators)."""
        lengths = {len(values) for values in columns.values()}
        if len(lengths) > 1:
            raise CatalogError("column lengths differ in bulk append")
        expected = set(self.columns.keys())
        if set(columns.keys()) != expected:
            raise CatalogError(
                f"bulk append must provide exactly the columns {sorted(expected)}")
        for name, values in columns.items():
            self.columns[name].extend(values)
        self._numpy_cache.clear()

    # ------------------------------------------------------------------ #
    # access
    # ------------------------------------------------------------------ #
    @property
    def num_rows(self) -> int:
        if not self.schema.columns:
            return 0
        first = self.schema.columns[0].name
        return len(self.columns[first])

    def column_data(self, name: str) -> list:
        try:
            return self.columns[self.schema.column(name).name]
        except KeyError as exc:  # pragma: no cover - schema.column raises first
            raise CatalogError(f"unknown column {name!r}") from exc

    def column_type(self, name: str) -> SQLType:
        return self.schema.column(name).sql_type

    def numpy_column(self, name: str) -> np.ndarray:
        """A cached numpy view of a column (used by the vectorized baseline)."""
        cached = self._numpy_cache.get(name)
        if cached is not None and len(cached) == self.num_rows:
            return cached
        data = self.column_data(name)
        sql_type = self.column_type(name)
        if sql_type is SQLType.FLOAT64:
            array = np.asarray(data, dtype=np.float64)
        elif sql_type is SQLType.STRING:
            array = np.asarray(data, dtype=object)
        else:
            array = np.asarray(data, dtype=np.int64)
        self._numpy_cache[name] = array
        return array

    def row(self, index: int, decode: bool = False) -> tuple:
        """Materialise one row (mainly for tests and debugging)."""
        values = []
        for column in self.schema.columns:
            value = self.columns[column.name][index]
            if decode:
                value = decode_internal_value(value, column.sql_type)
            values.append(value)
        return tuple(values)

    def rows(self, decode: bool = False):
        for index in range(self.num_rows):
            yield self.row(index, decode=decode)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Table {self.name}: {self.num_rows} rows, {len(self.schema)} cols>"
