"""Columnar tables with chunked storage and zone maps.

Storage is column-major and *chunked*: every column is a sequence of
fixed-size chunks (plain Python lists whose elements are already in the
engine's internal representation -- ints for INT64 / DECIMAL / DATE / BOOL,
floats for FLOAT64, ``str`` for STRING).  Appends go to an open *tail*
chunk; once a chunk reaches ``chunk_rows`` elements it is *sealed* and never
mutated again.  Sealed chunks carry exact per-chunk min/max **zone maps**
(computed lazily, cached forever -- the chunk is immutable) which let scans
skip whole chunks whose value range cannot satisfy a filter predicate, and
cached per-chunk numpy arrays, so an insert no longer invalidates the
expensive list-to-numpy conversions of the rows that did not change.

Generated query code reads columns through ``(buffer, offset)`` pointers
where the buffer is a :class:`ColumnView` -- a stable object that resolves a
global row index to ``chunks[index >> shift][index & mask]`` (chunk sizes
are powers of two).  The view's identity survives every insert, so cached
plans stay valid until the catalog's version counters invalidate them.

Thread model: writers serialize on the table lock; readers never take it
for element access (rows below the published row count are fully written
before the count is bumped, and sealed chunks are immutable), only for
row-count snapshots (:meth:`Table.snapshot_rows`, the numpy paths).
"""

from __future__ import annotations

import threading
from typing import Callable, Iterable, Iterator, Optional, Sequence

import numpy as np

from ..errors import CatalogError
from ..types import SQLType, decode_internal_value, encode_python_value
from .schema import Column, TableSchema

#: Default number of rows per column chunk (must be a power of two).  Also
#: the zone-map pruning granularity: a selective scan skips whole chunks.
DEFAULT_CHUNK_ROWS = 4096

#: Cached zone-map entry for a sealed chunk that has no usable zone map
#: (it contains NaN, which poisons ``min()``/``max()`` because every NaN
#: comparison is False).  Such chunks are always scanned.
_NO_ZONE = object()


class ColumnView:
    """A read-only, list-like view of one column's chunked storage.

    Supports ``view[i]`` (global row index), ``len``, iteration, slicing
    and equality against any sequence, so existing callers that treated a
    column as a plain list keep working.  The view object is *stable*: it is
    created once per column and shared by every reader (including pointers
    baked into generated code), while the chunk list it resolves through
    grows in place.
    """

    __slots__ = ("_table", "_chunks", "_shift", "_mask")

    def __init__(self, table: "Table", chunks: list):
        self._table = table
        self._chunks = chunks
        self._shift = table._chunk_shift
        self._mask = table._chunk_mask

    # -- element access (the generated-code hot path) -------------------- #
    def __getitem__(self, index):
        if isinstance(index, slice):
            return self.to_list()[index]
        if index < 0:
            index += len(self)
            if index < 0:
                raise IndexError("column index out of range")
        return self._chunks[index >> self._shift][index & self._mask]

    def __len__(self) -> int:
        return self._table.num_rows

    def __iter__(self) -> Iterator:
        limit = len(self)
        full, rest = divmod(limit, self._mask + 1)
        for chunk_index in range(full):
            # Chunks below the published count's chunk index are sealed and
            # immutable, so they can be yielded without copying.
            yield from self._chunks[chunk_index]
        if rest:
            # The tail may grow concurrently; slice to the snapshot.
            yield from self._chunks[full][:rest]

    def to_list(self) -> list:
        """Materialise the column (up to the current row count) as a list."""
        return list(self)

    def __eq__(self, other) -> bool:
        if isinstance(other, (ColumnView, list, tuple)):
            if len(other) != len(self):
                return False
            return all(a == b for a, b in zip(self, other))
        return NotImplemented

    #: Views are compared by content but hashed (and pooled by the VM's
    #: constant allocator) by identity.
    __hash__ = object.__hash__

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<ColumnView {len(self)} rows / {len(self._chunks)} chunks>"


class Table:
    """A named, columnar table stored as fixed-size column chunks."""

    def __init__(self, schema: TableSchema,
                 chunk_rows: int = DEFAULT_CHUNK_ROWS):
        if chunk_rows <= 0 or (chunk_rows & (chunk_rows - 1)) != 0:
            raise CatalogError(
                f"chunk_rows must be a positive power of two, "
                f"got {chunk_rows}")
        self.schema = schema
        self.name = schema.table_name
        self.chunk_rows = chunk_rows
        self._chunk_shift = chunk_rows.bit_length() - 1
        self._chunk_mask = chunk_rows - 1
        #: column name -> list of chunk lists.  All sealed chunks hold
        #: exactly ``chunk_rows`` values; the last entry is the open tail.
        #: The outer lists grow in place, so :class:`ColumnView` objects
        #: (and pointers in generated code) stay valid across inserts.
        self._chunks: dict[str, list[list]] = {
            column.name: [[]] for column in schema.columns}
        self._views: dict[str, ColumnView] = {
            name: ColumnView(self, chunks)
            for name, chunks in self._chunks.items()}
        #: Rows fully inserted (every column has the value).  Readers treat
        #: this as the published length; writers bump it only after the row
        #: landed in all columns, so a reader can never observe a ragged row.
        self._num_rows = 0
        #: column name -> per-sealed-chunk (min, max) zone maps, computed
        #: lazily (``None`` until first requested, ``_NO_ZONE`` for chunks
        #: with NaN) and exact by construction.
        self._zone_maps: dict[str, list] = {
            column.name: [] for column in schema.columns}
        #: column name -> per-sealed-chunk cached numpy arrays.
        self._numpy_chunks: dict[str, list[Optional[np.ndarray]]] = {
            column.name: [] for column in schema.columns}
        #: column name -> cached (array, row_count) full-column concatenation.
        self._numpy_full: dict[str, tuple[np.ndarray, int]] = {}
        #: Serializes writers and row-count snapshots.
        self._lock = threading.RLock()
        #: Invoked after every data mutation; the owning catalog installs a
        #: callback that bumps the table's version counter and invalidates
        #: its statistics, so *every* mutation path (``insert_rows`` and
        #: ``append_columns`` alike) flows through the same invalidation.
        self._on_change: Optional[Callable[[], None]] = None

    # ------------------------------------------------------------------ #
    # loading data
    # ------------------------------------------------------------------ #
    def insert_rows(self, rows: Iterable[Sequence], encode: bool = True) -> int:
        """Append rows (sequences in schema column order).

        ``encode=True`` converts user-level Python values (dates, floats for
        decimals) to the internal representation; generators that already
        produce internal values can pass ``encode=False`` to skip that work.

        Each row is appended atomically: the whole row is validated and
        encoded *before* any chunk is touched (under the table lock), so a
        value that fails to encode can never leave ragged columns behind.
        Rows preceding the failing one stay inserted.
        """
        count = 0
        names = [column.name for column in self.schema.columns]
        types = [column.sql_type for column in self.schema.columns]
        width = len(names)
        try:
            for row in rows:
                if len(row) != width:
                    raise CatalogError(
                        f"row width {len(row)} does not match table "
                        f"{self.name!r} ({width} columns)")
                if encode:
                    row = [encode_python_value(value, sql_type)
                           for sql_type, value in zip(types, row)]
                with self._lock:
                    for name, value in zip(names, row):
                        self._chunks[name][-1].append(value)
                    # Seal *before* publishing the new row count: readers
                    # derive the sealed-chunk count from ``_num_rows``
                    # without taking the lock, so the zone-map/numpy
                    # bookkeeping slots of a freshly sealed chunk must
                    # exist by the time the count says the chunk is sealed.
                    new_count = self._num_rows + 1
                    if new_count & self._chunk_mask == 0:
                        self._seal_tail_locked()
                    self._num_rows = new_count
                count += 1
        finally:
            if count:
                self._data_changed()
        return count

    def append_columns(self, columns: dict[str, list]) -> None:
        """Bulk-append pre-encoded column data (used by the data generators).

        Routes through the same change notification as ``insert_rows``, so
        the catalog's per-table version is bumped and cached plans or
        statistics can never survive a bulk append.
        """
        lengths = {len(values) for values in columns.values()}
        if len(lengths) > 1:
            raise CatalogError("column lengths differ in bulk append")
        expected = set(self._chunks.keys())
        if set(columns.keys()) != expected:
            raise CatalogError(
                f"bulk append must provide exactly the columns {sorted(expected)}")
        if not lengths or not lengths.pop():
            return
        appended = False
        try:
            with self._lock:
                total = len(next(iter(columns.values())))
                cursor = 0
                while cursor < total:
                    space = self.chunk_rows - len(
                        self._chunks[self.schema.columns[0].name][-1])
                    take = min(space, total - cursor)
                    for name, values in columns.items():
                        self._chunks[name][-1].extend(
                            values[cursor:cursor + take])
                    cursor += take
                    appended = True
                    # Seal before publishing the count (see insert_rows).
                    new_count = self._num_rows + take
                    if new_count & self._chunk_mask == 0:
                        self._seal_tail_locked()
                    self._num_rows = new_count
        finally:
            if appended:
                self._data_changed()

    def _seal_tail_locked(self) -> None:
        """Close the (full) tail chunk and open a fresh one (lock held)."""
        for chunks in self._chunks.values():
            chunks.append([])
        for zone_maps in self._zone_maps.values():
            zone_maps.append(None)
        for numpy_chunks in self._numpy_chunks.values():
            numpy_chunks.append(None)

    def _data_changed(self) -> None:
        """Invalidate mutable caches and notify the owning catalog."""
        with self._lock:
            self._numpy_full.clear()
        callback = self._on_change
        if callback is not None:
            callback()

    # ------------------------------------------------------------------ #
    # access
    # ------------------------------------------------------------------ #
    @property
    def num_rows(self) -> int:
        return self._num_rows

    def snapshot_rows(self) -> int:
        """The published row count, read under the table lock.

        Use this (once) when reading several columns that must be sliced
        consistently: concurrent inserts keep growing the chunks, but every
        row below the snapshot is fully written in *all* columns.
        """
        with self._lock:
            return self._num_rows

    @property
    def num_chunks(self) -> int:
        """Number of chunks covering the current rows (incl. the tail)."""
        rows = self._num_rows
        if rows == 0:
            return 0
        return (rows + self.chunk_rows - 1) >> self._chunk_shift

    @property
    def num_sealed_chunks(self) -> int:
        return self._num_rows >> self._chunk_shift

    @property
    def columns(self) -> dict[str, ColumnView]:
        """Column name -> view, for callers that treated columns as lists."""
        return dict(self._views)

    def column_data(self, name: str) -> ColumnView:
        try:
            return self._views[self.schema.column(name).name]
        except KeyError as exc:  # pragma: no cover - schema.column raises first
            raise CatalogError(f"unknown column {name!r}") from exc

    def column_type(self, name: str) -> SQLType:
        return self.schema.column(name).sql_type

    def column_chunks(self, name: str) -> list[list]:
        """The raw chunk lists of one column (sealed chunks are immutable)."""
        return self._chunks[self.schema.column(name).name]

    # ------------------------------------------------------------------ #
    # zone maps
    # ------------------------------------------------------------------ #
    def zone_map(self, name: str, chunk_index: int) -> Optional[tuple]:
        """Exact ``(min, max)`` of one *sealed* chunk, or ``None``.

        ``None`` means the chunk is not sealed (the open tail, or beyond the
        current data): its contents can still change, so it must always be
        scanned.  Sealed-chunk zone maps are computed from the full chunk --
        never from sampled statistics -- so pruning on them is exact.
        """
        if chunk_index >= self.num_sealed_chunks:
            return None
        key = self.schema.column(name).name
        zone_maps = self._zone_maps[key]
        zone = zone_maps[chunk_index]
        if zone is None:
            chunk = self._chunks[key][chunk_index]
            if (self.column_type(name) is SQLType.FLOAT64
                    and any(value != value for value in chunk)):
                # NaN makes min()/max() order-dependent garbage; record
                # that this chunk has no zone map so it is always scanned.
                zone = _NO_ZONE
            else:
                zone = (min(chunk), max(chunk))
            zone_maps[chunk_index] = zone
        return None if zone is _NO_ZONE else zone

    # ------------------------------------------------------------------ #
    # numpy access (vectorized baseline)
    # ------------------------------------------------------------------ #
    def _numpy_dtype(self, sql_type: SQLType):
        if sql_type is SQLType.FLOAT64:
            return np.float64
        if sql_type is SQLType.STRING:
            return object
        return np.int64

    def numpy_chunk(self, name: str, chunk_index: int,
                    limit: Optional[int] = None) -> np.ndarray:
        """A numpy array of one chunk (cached forever for sealed chunks).

        ``limit`` (a row count *within the chunk*) bounds how much of an
        unsealed tail chunk is materialised; sealed chunks ignore it.
        """
        key = self.schema.column(name).name
        dtype = self._numpy_dtype(self.column_type(name))
        if chunk_index < self.num_sealed_chunks:
            cache = self._numpy_chunks[key]
            cached = cache[chunk_index]
            if cached is None:
                cached = np.asarray(self._chunks[key][chunk_index],
                                    dtype=dtype)
                cache[chunk_index] = cached
            return cached
        tail = self._chunks[key][chunk_index]
        if limit is None:
            limit = len(tail)
        return np.asarray(tail[:limit], dtype=dtype)

    def numpy_column(self, name: str) -> np.ndarray:
        """A cached numpy view of a whole column.

        The row count is snapshotted once under the table lock and every
        chunk is sliced to it, so the returned array is internally
        consistent even while concurrent inserts keep appending.  Sealed
        chunks reuse their cached per-chunk arrays; only the open tail is
        re-converted, so repeated calls after inserts cost one small
        conversion plus a concatenation instead of an O(table) rebuild.
        """
        rows = self.snapshot_rows()
        key = self.schema.column(name).name
        cached = self._numpy_full.get(key)
        if cached is not None and cached[1] == rows:
            return cached[0]
        array = self._assemble_numpy(name, rows)
        with self._lock:
            # Publish only if still current (a concurrent insert may have
            # advanced the table past our snapshot; the array itself is
            # still a correct prefix for our caller).
            if self._num_rows == rows:
                self._numpy_full[key] = (array, rows)
        return array

    def _assemble_numpy(self, name: str, rows: int) -> np.ndarray:
        dtype = self._numpy_dtype(self.column_type(name))
        if rows == 0:
            return np.asarray([], dtype=dtype)
        pieces = []
        full, remainder = divmod(rows, self.chunk_rows)
        for chunk_index in range(full):
            pieces.append(self.numpy_chunk(name, chunk_index))
        if remainder:
            key = self.schema.column(name).name
            tail = self._chunks[key][full]
            pieces.append(np.asarray(tail[:remainder], dtype=dtype))
        if len(pieces) == 1:
            return pieces[0]
        return np.concatenate(pieces)

    def numpy_ranges(self, name: str,
                     ranges: Sequence[tuple[int, int]]) -> np.ndarray:
        """Concatenate arbitrary ``[begin, end)`` row ranges of one column.

        Ranges may span several chunks; pieces are assembled per chunk so
        sealed chunks come from the per-chunk numpy cache (whole-chunk
        pieces are the cached arrays themselves, partial pieces are views).
        This is the scan-pruning entry point of the vectorized engine.
        """
        dtype = self._numpy_dtype(self.column_type(name))
        pieces = []
        for begin, end in ranges:
            while begin < end:
                chunk_index = begin >> self._chunk_shift
                chunk_begin = chunk_index << self._chunk_shift
                piece_end = min(end, chunk_begin + self.chunk_rows)
                chunk = self.numpy_chunk(name, chunk_index,
                                         limit=piece_end - chunk_begin)
                lo = begin - chunk_begin
                hi = piece_end - chunk_begin
                pieces.append(chunk if lo == 0 and hi == len(chunk)
                              else chunk[lo:hi])
                begin = piece_end
        if not pieces:
            return np.asarray([], dtype=dtype)
        if len(pieces) == 1:
            return pieces[0]
        return np.concatenate(pieces)

    def numpy_snapshot(self, names: Sequence[str]
                       ) -> tuple[dict[str, np.ndarray], int]:
        """Arrays for several columns sliced to one consistent row count.

        This is the race-free entry point for the vectorized engine: the
        row count is snapshotted *once*, so all returned arrays have the
        same length even while pool workers append rows concurrently.
        """
        rows = self.snapshot_rows()
        arrays: dict[str, np.ndarray] = {}
        for name in names:
            key = self.schema.column(name).name
            cached = self._numpy_full.get(key)
            if cached is not None and cached[1] == rows:
                arrays[name] = cached[0]
            else:
                arrays[name] = self._assemble_numpy(name, rows)
        return arrays, rows

    # ------------------------------------------------------------------ #
    def row(self, index: int, decode: bool = False) -> tuple:
        """Materialise one row (mainly for tests and debugging)."""
        values = []
        for column in self.schema.columns:
            value = self._views[column.name][index]
            if decode:
                value = decode_internal_value(value, column.sql_type)
            values.append(value)
        return tuple(values)

    def rows(self, decode: bool = False):
        for index in range(self.num_rows):
            yield self.row(index, decode=decode)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<Table {self.name}: {self.num_rows} rows, "
                f"{len(self.schema)} cols, {self.num_chunks} chunks>")
