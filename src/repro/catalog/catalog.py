"""The catalog: a named collection of tables plus their statistics."""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from ..errors import CatalogError
from ..types import SQLType
from .schema import TableSchema
from .statistics import TableStatistics, compute_table_statistics
from .table import Table


class Catalog:
    """Holds every table of a database instance."""

    def __init__(self):
        self._tables: dict[str, Table] = {}
        self._statistics: dict[str, TableStatistics] = {}

    # ------------------------------------------------------------------ #
    # DDL
    # ------------------------------------------------------------------ #
    def create_table(self, name: str,
                     columns: Sequence[tuple[str, SQLType]]) -> Table:
        key = name.lower()
        if key in self._tables:
            raise CatalogError(f"table {name!r} already exists")
        table = Table(TableSchema.of(name, columns))
        self._tables[key] = table
        return table

    def register_table(self, table: Table) -> Table:
        key = table.name.lower()
        if key in self._tables:
            raise CatalogError(f"table {table.name!r} already exists")
        self._tables[key] = table
        return table

    def drop_table(self, name: str) -> None:
        key = name.lower()
        if key not in self._tables:
            raise CatalogError(f"table {name!r} does not exist")
        del self._tables[key]
        self._statistics.pop(key, None)

    # ------------------------------------------------------------------ #
    # lookup
    # ------------------------------------------------------------------ #
    def has_table(self, name: str) -> bool:
        return name.lower() in self._tables

    def table(self, name: str) -> Table:
        try:
            return self._tables[name.lower()]
        except KeyError as exc:
            raise CatalogError(f"table {name!r} does not exist") from exc

    def table_names(self) -> list[str]:
        return sorted(table.name for table in self._tables.values())

    def __contains__(self, name: str) -> bool:
        return self.has_table(name)

    # ------------------------------------------------------------------ #
    # statistics
    # ------------------------------------------------------------------ #
    def statistics(self, name: str, refresh: bool = False) -> TableStatistics:
        key = name.lower()
        table = self.table(name)
        cached = self._statistics.get(key)
        if cached is not None and not refresh and cached.num_rows == table.num_rows:
            return cached
        stats = compute_table_statistics(table)
        self._statistics[key] = stats
        return stats

    def invalidate_statistics(self, name: Optional[str] = None) -> None:
        if name is None:
            self._statistics.clear()
        else:
            self._statistics.pop(name.lower(), None)
