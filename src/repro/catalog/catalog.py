"""The catalog: a named collection of tables plus their statistics."""

from __future__ import annotations

import threading

from typing import Iterable, Optional, Sequence

from ..errors import CatalogError
from ..types import SQLType
from .schema import TableSchema
from .statistics import TableStatistics, compute_table_statistics
from .table import Table


class Catalog:
    """Holds every table of a database instance.

    Every DDL operation and every statistics invalidation bumps a global
    version counter and records the new value for the affected table.  Cached
    query plans snapshot the versions of the tables they reference and drop
    out of the plan cache when any of them changes (see :mod:`repro.cache`).
    """

    def __init__(self):
        self._tables: dict[str, Table] = {}
        self._statistics: dict[str, TableStatistics] = {}
        #: Global, monotonically increasing DDL/statistics counter.
        self.version = 0
        #: Per-table version: the global counter value of its last change.
        self._versions: dict[str, int] = {}
        #: Guards the read-modify-write of the version counters: concurrent
        #: inserts losing an increment would let a stale cached plan pass
        #: its validity check.
        self._version_lock = threading.Lock()

    def _bump_version(self, key: str) -> None:
        with self._version_lock:
            self.version += 1
            self._versions[key] = self.version

    def table_version(self, name: str) -> int:
        """The version counter of one table (0 if it never existed)."""
        return self._versions.get(name.lower(), 0)

    # ------------------------------------------------------------------ #
    # DDL
    # ------------------------------------------------------------------ #
    def create_table(self, name: str,
                     columns: Sequence[tuple[str, SQLType]],
                     chunk_rows: Optional[int] = None) -> Table:
        key = name.lower()
        if key in self._tables:
            raise CatalogError(f"table {name!r} already exists")
        if chunk_rows is None:
            table = Table(TableSchema.of(name, columns))
        else:
            table = Table(TableSchema.of(name, columns),
                          chunk_rows=chunk_rows)
        return self.register_table(table)

    def register_table(self, table: Table) -> Table:
        key = table.name.lower()
        if key in self._tables:
            raise CatalogError(f"table {table.name!r} already exists")
        self._tables[key] = table
        # Every data mutation of the table (row inserts *and* bulk column
        # appends) must invalidate its statistics and bump its version so
        # cached plans drop out; routing the notification through the table
        # itself means no mutation path can forget to do so.
        table._on_change = lambda key=key: self._table_data_changed(key)
        self._bump_version(key)
        return table

    def _table_data_changed(self, key: str) -> None:
        """A registered table's data changed: invalidate derived state."""
        self._statistics.pop(key, None)
        self._bump_version(key)

    def drop_table(self, name: str) -> None:
        key = name.lower()
        if key not in self._tables:
            raise CatalogError(f"table {name!r} does not exist")
        self._tables[key]._on_change = None
        del self._tables[key]
        self._statistics.pop(key, None)
        self._bump_version(key)

    # ------------------------------------------------------------------ #
    # lookup
    # ------------------------------------------------------------------ #
    def has_table(self, name: str) -> bool:
        return name.lower() in self._tables

    def table(self, name: str) -> Table:
        try:
            return self._tables[name.lower()]
        except KeyError as exc:
            raise CatalogError(f"table {name!r} does not exist") from exc

    def table_names(self) -> list[str]:
        return sorted(table.name for table in self._tables.values())

    def __contains__(self, name: str) -> bool:
        return self.has_table(name)

    # ------------------------------------------------------------------ #
    # statistics
    # ------------------------------------------------------------------ #
    def statistics(self, name: str, refresh: bool = False) -> TableStatistics:
        key = name.lower()
        table = self.table(name)
        cached = self._statistics.get(key)
        if cached is not None and not refresh and cached.num_rows == table.num_rows:
            return cached
        stats = compute_table_statistics(table)
        self._statistics[key] = stats
        return stats

    def invalidate_statistics(self, name: Optional[str] = None) -> None:
        if name is None:
            self._statistics.clear()
            for key in self._tables:
                self._bump_version(key)
        else:
            self._statistics.pop(name.lower(), None)
            self._bump_version(name.lower())
