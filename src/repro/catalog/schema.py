"""Table schemas: ordered, typed column definitions."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..errors import CatalogError
from ..types import SQLType


@dataclass(frozen=True)
class Column:
    """A single column definition."""

    name: str
    sql_type: SQLType

    def __post_init__(self):
        if not self.name:
            raise CatalogError("column name must not be empty")


@dataclass
class TableSchema:
    """An ordered list of column definitions with name lookup."""

    table_name: str
    columns: list[Column] = field(default_factory=list)

    def __post_init__(self):
        seen: set[str] = set()
        for column in self.columns:
            lowered = column.name.lower()
            if lowered in seen:
                raise CatalogError(
                    f"duplicate column {column.name!r} in table "
                    f"{self.table_name!r}")
            seen.add(lowered)

    # ------------------------------------------------------------------ #
    @classmethod
    def of(cls, table_name: str,
           columns: Sequence[tuple[str, SQLType]]) -> "TableSchema":
        """Convenience constructor from ``[(name, type), ...]`` pairs."""
        return cls(table_name, [Column(name, sql_type)
                                for name, sql_type in columns])

    def column_names(self) -> list[str]:
        return [column.name for column in self.columns]

    def has_column(self, name: str) -> bool:
        lowered = name.lower()
        return any(column.name.lower() == lowered for column in self.columns)

    def column(self, name: str) -> Column:
        lowered = name.lower()
        for column in self.columns:
            if column.name.lower() == lowered:
                return column
        raise CatalogError(
            f"table {self.table_name!r} has no column {name!r}")

    def column_index(self, name: str) -> int:
        lowered = name.lower()
        for index, column in enumerate(self.columns):
            if column.name.lower() == lowered:
                return index
        raise CatalogError(
            f"table {self.table_name!r} has no column {name!r}")

    def __len__(self) -> int:
        return len(self.columns)

    def __iter__(self):
        return iter(self.columns)
