"""Semantic result caching: skip execution entirely for repeated hot reads.

The plan cache (:mod:`repro.cache`) amortizes *preparation* across repeated
query shapes; this module amortizes *execution* across repeated identical
reads.  A :class:`ResultCache` maps a semantic key -- the normalized plan
key, the execution mode and the type-qualified bound parameter values -- to
the materialized rows of a previous execution, so a repeated identical read
returns without touching the scanner, the breakers or the worker pool.

Correctness rides on the catalog's per-table version counters, exactly like
plan-cache invalidation: every entry stores a snapshot of the versions of
all referenced tables taken *before* its execution started, and a lookup
only hits when every referenced table still has that version.  Tables bump
their version *after* appended rows become visible
(:meth:`repro.catalog.table.Table._data_changed` runs after the append
completes), so the pre-execution snapshot is conservative: a mutation that
races with the caching execution leaves the entry keyed to an older
version and every later lookup misses.  Stale hits are impossible; the
failure mode is always a harmless re-execution.

Keys are built exclusively by :func:`result_cache_key` -- the single
sanctioned constructor (enforced by the ``result-cache-key`` lint rule in
:mod:`repro.analysis.lint.rules`).  It type-qualifies every bound value, so
``a = 2`` (INT64) and ``a = 2.0`` (FLOAT64) can never collide even though
``hash(2) == hash(2.0)`` in Python; the plan key already carries the
auto-parameterization hint-type tag for the literal forms.  ``LIMIT ?``
values participate like every other parameter: they are ordinary slots of
``planning.physical.parameters`` and therefore part of the encoded-value
tuple.

Admission is bounded three ways: per-entry row count, per-entry estimated
bytes, and a total byte budget over the whole cache (on top of the LRU
entry capacity).  Oversized results are rejected up front -- a result cache
must stay a cache of *small hot* results, not a second copy of the tables.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Optional


#: Default admission bounds (see :class:`ResultCache`).
DEFAULT_CAPACITY = 512
DEFAULT_MAX_BYTES = 64 * 1024 * 1024
DEFAULT_MAX_ENTRY_ROWS = 10_000
DEFAULT_MAX_ENTRY_BYTES = 4 * 1024 * 1024


def result_cache_key(plan_key: str, mode: str, values) -> tuple:
    """The semantic cache key of one execution.

    This is the *only* sanctioned way to build a result-cache key (the
    ``result-cache-key`` lint rule rejects ``ResultCache.get``/``put``
    calls whose key came from anywhere else).

    ``plan_key`` is the plan-cache key -- normalized SQL plus, for
    auto-parameterized statements, the hint-type tag that already separates
    ``a = 2`` from ``a = 2.0`` at the plan level.  ``values`` are the
    *encoded* parameter values in slot order
    (:func:`repro.parameters.bind_parameter_values`); each is additionally
    qualified by its Python type so equal-hashing values of different types
    (``2`` / ``2.0`` / ``True``) can never collide in the key.
    """
    return (plan_key, mode,
            tuple((type(value).__name__, value) for value in values))


@dataclass
class ResultCacheStats:
    """Counters of one :class:`ResultCache` instance."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0
    #: Results refused admission by the row-count / byte bounds.
    rejected: int = 0
    #: Estimated bytes currently resident.
    bytes: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


def _estimate_row_bytes(row: tuple) -> int:
    """Rough resident size of one result row (admission accounting only)."""
    total = 56  # tuple object overhead
    for value in row:
        if isinstance(value, str):
            total += 56 + len(value)
        else:
            total += 32
    return total


@dataclass
class CachedResult:
    """One materialized query result plus its validity snapshot."""

    column_names: list[str]
    column_types: list
    rows: list[tuple]
    mode: str
    #: Referenced table name -> catalog version *before* the execution that
    #: produced these rows started reading.
    table_versions: dict[str, int]
    early_terminated: bool = False
    nbytes: int = 0

    def is_current(self, table_version: Callable[[str], int]) -> bool:
        """Whether every referenced table still has the snapshot version."""
        return all(table_version(name) == version
                   for name, version in self.table_versions.items())

    def to_result(self):
        """A fresh :class:`repro.engine.QueryResult` over the cached rows.

        Rows are shallow-copied (tuples are immutable) so a caller sorting
        its result in place cannot corrupt the cached copy.  Timings are
        all zero -- no work happened -- and the result is flagged
        ``cached`` with ``cache_source="result"``.
        """
        from .engine import PhaseTimings, QueryResult

        result = QueryResult(
            column_names=list(self.column_names),
            column_types=list(self.column_types),
            rows=list(self.rows),
            mode=self.mode,
            timings=PhaseTimings(),
            early_terminated=self.early_terminated)
        result.cached = True
        result.cache_source = "result"
        return result


class ResultCache:
    """A bounded, thread-safe LRU cache of materialized query results.

    ``capacity`` bounds the entry count, ``max_bytes`` the total estimated
    resident bytes; ``max_entry_rows`` / ``max_entry_bytes`` are per-result
    admission bounds (a result exceeding either is simply not cached).
    ``capacity=0`` disables the cache entirely.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY,
                 max_bytes: int = DEFAULT_MAX_BYTES,
                 max_entry_rows: int = DEFAULT_MAX_ENTRY_ROWS,
                 max_entry_bytes: int = DEFAULT_MAX_ENTRY_BYTES):
        if capacity < 0:
            raise ValueError(f"cache capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self.max_bytes = max_bytes
        self.max_entry_rows = max_entry_rows
        self.max_entry_bytes = max_entry_bytes
        self._entries: OrderedDict[tuple, CachedResult] = OrderedDict()
        self._lock = threading.Lock()
        self.stats = ResultCacheStats()

    # ------------------------------------------------------------------ #
    @property
    def enabled(self) -> bool:
        return self.capacity > 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: tuple) -> bool:
        with self._lock:
            return key in self._entries

    # ------------------------------------------------------------------ #
    def get(self, key: tuple,
            table_version: Callable[[str], int]) -> Optional[CachedResult]:
        """The cached result for ``key``, or ``None`` on miss/invalidation.

        ``table_version`` maps a table name to its *current* catalog
        version; an entry whose stored snapshot no longer matches is
        dropped and counted as an invalidation.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                return None
            if not entry.is_current(table_version):
                del self._entries[key]
                self.stats.bytes -= entry.nbytes
                self.stats.invalidations += 1
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return entry

    def put(self, key: tuple, table_versions: dict[str, int],
            result) -> bool:
        """Admit one result under ``key``; returns whether it was cached.

        ``table_versions`` is the pre-execution version snapshot of every
        table the query read; ``result`` is the finished
        :class:`repro.engine.QueryResult`.  Oversized results (row count or
        estimated bytes above the per-entry bounds) are rejected.
        """
        if self.capacity == 0:
            return False
        rows = result.rows
        if len(rows) > self.max_entry_rows:
            with self._lock:
                self.stats.rejected += 1
            return False
        nbytes = sum(_estimate_row_bytes(row) for row in rows)
        if nbytes > self.max_entry_bytes:
            with self._lock:
                self.stats.rejected += 1
            return False
        entry = CachedResult(
            column_names=list(result.column_names),
            column_types=list(result.column_types),
            rows=list(rows),
            mode=result.mode,
            table_versions=dict(table_versions),
            early_terminated=result.early_terminated,
            nbytes=nbytes)
        with self._lock:
            previous = self._entries.pop(key, None)
            if previous is not None:
                self.stats.bytes -= previous.nbytes
            self._entries[key] = entry
            self.stats.bytes += nbytes
            while self._entries and (len(self._entries) > self.capacity
                                     or self.stats.bytes > self.max_bytes):
                _, evicted = self._entries.popitem(last=False)
                self.stats.bytes -= evicted.nbytes
                self.stats.evictions += 1
        return True

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.stats.bytes = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<ResultCache entries={len(self)} "
                f"bytes={self.stats.bytes} capacity={self.capacity}>")
