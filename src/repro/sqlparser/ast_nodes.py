"""Abstract syntax tree produced by the SQL parser.

The nodes carry no type information; semantic analysis
(:mod:`repro.semantics`) resolves names against the catalog and produces the
typed expression tree used by the planner and code generator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence


# --------------------------------------------------------------------------- #
# expressions
# --------------------------------------------------------------------------- #
class Expression:
    """Base class for all expression AST nodes."""


@dataclass
class Literal(Expression):
    """An integer, float, string or date literal."""

    value: object
    kind: str  # "int" | "float" | "string" | "date" | "bool"


@dataclass
class Parameter(Expression):
    """A bind-parameter placeholder (``?`` positional or ``:name`` named).

    ``index`` is the parameter's slot in the statement's parameter vector:
    positional parameters get one slot per ``?`` in lexical order, named
    parameters get one slot per distinct name (first-occurrence order).
    """

    index: int
    name: Optional[str] = None


@dataclass
class ColumnRef(Expression):
    """A possibly qualified column reference (``alias.column`` or ``column``)."""

    name: str
    table: Optional[str] = None

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.table}.{self.name}" if self.table else self.name


@dataclass
class UnaryOp(Expression):
    """``-expr`` or ``NOT expr``."""

    operator: str
    operand: Expression


@dataclass
class BinaryOp(Expression):
    """Arithmetic, comparison or logical binary operation."""

    operator: str
    left: Expression
    right: Expression


@dataclass
class Between(Expression):
    """``expr BETWEEN low AND high`` (inclusive)."""

    expr: Expression
    low: Expression
    high: Expression
    negated: bool = False


@dataclass
class InList(Expression):
    """``expr IN (value, ...)``."""

    expr: Expression
    values: list[Expression]
    negated: bool = False


@dataclass
class Like(Expression):
    """``expr LIKE 'pattern'`` with ``%`` and ``_`` wildcards."""

    expr: Expression
    pattern: str
    negated: bool = False


@dataclass
class FunctionCall(Expression):
    """A function or aggregate call, e.g. ``sum(x)`` or ``year(o_orderdate)``."""

    name: str
    args: list[Expression]
    distinct: bool = False
    is_star: bool = False  # count(*)


@dataclass
class CaseWhen(Expression):
    """``CASE WHEN cond THEN value [WHEN ...] [ELSE value] END``."""

    branches: list[tuple[Expression, Expression]]
    default: Optional[Expression] = None


@dataclass
class Cast(Expression):
    """``CAST(expr AS type_name)``."""

    expr: Expression
    type_name: str


@dataclass
class Extract(Expression):
    """``EXTRACT(field FROM expr)`` -- only YEAR/MONTH/DAY are supported."""

    field: str
    expr: Expression


@dataclass
class IntervalLiteral(Expression):
    """``INTERVAL '3' MONTH`` style literal used in date arithmetic."""

    value: int
    unit: str  # "year" | "month" | "day"


# --------------------------------------------------------------------------- #
# query structure
# --------------------------------------------------------------------------- #
@dataclass
class SelectItem:
    """One item of the SELECT list."""

    expr: Optional[Expression]
    alias: Optional[str] = None
    is_star: bool = False


@dataclass
class TableRef:
    """A base table reference with an optional alias."""

    table: str
    alias: Optional[str] = None

    @property
    def binding_name(self) -> str:
        return self.alias or self.table


@dataclass
class Join:
    """An explicit ``JOIN ... ON`` clause attached to the from-list.

    ``kind`` is ``"inner"``, ``"left"``, ``"right"`` or ``"full"``; the
    source location of the join keyword rides along so the binder can point
    its error at the unsupported construct.
    """

    table: TableRef
    condition: Expression
    kind: str = "inner"
    line: int = 0
    column: int = 0


@dataclass
class OrderItem:
    """One ORDER BY key."""

    expr: Expression
    ascending: bool = True


@dataclass
class SelectStatement:
    """A full SELECT statement."""

    select_items: list[SelectItem]
    from_tables: list[TableRef] = field(default_factory=list)
    joins: list[Join] = field(default_factory=list)
    where: Optional[Expression] = None
    group_by: list[Expression] = field(default_factory=list)
    having: Optional[Expression] = None
    order_by: list[OrderItem] = field(default_factory=list)
    #: An ``int`` literal or a :class:`Parameter` placeholder (``LIMIT ?``).
    limit: Optional[object] = None
    distinct: bool = False
    #: Parameter slot -> name (``None`` for positional slots).  One entry per
    #: distinct parameter of the statement, in slot order.
    parameters: list[Optional[str]] = field(default_factory=list)
