"""SQL front end: lexer, AST and recursive-descent parser."""

from .lexer import Lexer, Token, TokenType, tokenize
from .parser import Parser, parse
from . import ast_nodes as ast

__all__ = ["Lexer", "Token", "TokenType", "tokenize", "Parser", "parse", "ast"]
