"""Recursive-descent SQL parser."""

from __future__ import annotations

from typing import Optional

from ..errors import ParserError
from . import ast_nodes as ast
from .lexer import Token, TokenType, tokenize


class Parser:
    """Parses one SELECT statement from a token stream."""

    def __init__(self, text: str):
        self.text = text
        self.tokens = tokenize(text)
        self.index = 0
        #: Parameter slot -> name (None for positional ``?`` slots).
        self.parameters: list[Optional[str]] = []
        self._named_slots: dict[str, int] = {}
        self._has_positional = False

    # ------------------------------------------------------------------ #
    # token helpers
    # ------------------------------------------------------------------ #
    @property
    def current(self) -> Token:
        return self.tokens[self.index]

    def _advance(self) -> Token:
        token = self.current
        if token.type is not TokenType.END:
            self.index += 1
        return token

    def _error(self, message: str) -> ParserError:
        token = self.current
        return ParserError(
            f"{message} (near {token.value!r}, line {token.line}, "
            f"column {token.column})")

    def _accept_keyword(self, keyword: str) -> bool:
        if self.current.matches_keyword(keyword):
            self._advance()
            return True
        return False

    def _expect_keyword(self, keyword: str) -> None:
        if not self._accept_keyword(keyword):
            raise self._error(f"expected keyword {keyword.upper()}")

    def _accept_punct(self, value: str) -> bool:
        token = self.current
        if token.type is TokenType.PUNCTUATION and token.value == value:
            self._advance()
            return True
        return False

    def _expect_punct(self, value: str) -> None:
        if not self._accept_punct(value):
            raise self._error(f"expected {value!r}")

    def _accept_operator(self, value: str) -> bool:
        token = self.current
        if token.type is TokenType.OPERATOR and token.value == value:
            self._advance()
            return True
        return False

    def _expect_identifier(self) -> str:
        token = self.current
        if token.type is TokenType.IDENTIFIER:
            self._advance()
            return token.value
        # Allow non-reserved keywords (year/month/day/date) as identifiers.
        if token.type is TokenType.KEYWORD and token.value in (
                "year", "month", "day", "date"):
            self._advance()
            return token.value
        raise self._error("expected an identifier")

    # ------------------------------------------------------------------ #
    # entry point
    # ------------------------------------------------------------------ #
    def parse_statement(self) -> ast.SelectStatement:
        statement = self._parse_select()
        self._accept_punct(";")
        if self.current.type is not TokenType.END:
            raise self._error("unexpected trailing input")
        return statement

    # ------------------------------------------------------------------ #
    # SELECT
    # ------------------------------------------------------------------ #
    def _parse_select(self) -> ast.SelectStatement:
        self._expect_keyword("select")
        distinct = self._accept_keyword("distinct")
        select_items = self._parse_select_list()

        from_tables: list[ast.TableRef] = []
        joins: list[ast.Join] = []
        if self._accept_keyword("from"):
            from_tables, joins = self._parse_from()

        where = None
        if self._accept_keyword("where"):
            where = self._parse_expression()

        group_by: list[ast.Expression] = []
        if self._accept_keyword("group"):
            self._expect_keyword("by")
            group_by.append(self._parse_expression())
            while self._accept_punct(","):
                group_by.append(self._parse_expression())

        having = None
        if self._accept_keyword("having"):
            having = self._parse_expression()

        order_by: list[ast.OrderItem] = []
        if self._accept_keyword("order"):
            self._expect_keyword("by")
            order_by.append(self._parse_order_item())
            while self._accept_punct(","):
                order_by.append(self._parse_order_item())

        limit = None
        if self._accept_keyword("limit"):
            token = self.current
            if token.type is TokenType.PARAMETER:
                self._advance()
                limit = self._make_parameter(token.value)
            elif token.type is TokenType.INTEGER:
                limit = int(token.value)
                self._advance()
            else:
                raise self._error(
                    "LIMIT expects an integer or a bind parameter")

        return ast.SelectStatement(
            select_items=select_items,
            from_tables=from_tables,
            joins=joins,
            where=where,
            group_by=group_by,
            having=having,
            order_by=order_by,
            limit=limit,
            distinct=distinct,
            parameters=self.parameters,
        )

    def _parse_select_list(self) -> list[ast.SelectItem]:
        items = [self._parse_select_item()]
        while self._accept_punct(","):
            items.append(self._parse_select_item())
        return items

    def _parse_select_item(self) -> ast.SelectItem:
        if self.current.type is TokenType.OPERATOR and self.current.value == "*":
            self._advance()
            return ast.SelectItem(expr=None, is_star=True)
        expr = self._parse_expression()
        alias = None
        if self._accept_keyword("as"):
            alias = self._expect_identifier()
        elif self.current.type is TokenType.IDENTIFIER:
            alias = self._expect_identifier()
        return ast.SelectItem(expr=expr, alias=alias)

    def _parse_order_item(self) -> ast.OrderItem:
        expr = self._parse_expression()
        ascending = True
        if self._accept_keyword("desc"):
            ascending = False
        else:
            self._accept_keyword("asc")
        return ast.OrderItem(expr=expr, ascending=ascending)

    # ------------------------------------------------------------------ #
    # FROM / JOIN
    # ------------------------------------------------------------------ #
    def _parse_from(self) -> tuple[list[ast.TableRef], list[ast.Join]]:
        tables = [self._parse_table_ref()]
        joins: list[ast.Join] = []
        while True:
            if self._accept_punct(","):
                tables.append(self._parse_table_ref())
                continue
            token = self.current
            if token.type is TokenType.KEYWORD and token.value in (
                    "inner", "join", "left", "right", "full"):
                kind = "inner"
                if self._accept_keyword("left"):
                    kind = "left"
                elif self._accept_keyword("right"):
                    kind = "right"
                elif self._accept_keyword("full"):
                    kind = "full"
                else:
                    self._accept_keyword("inner")
                if kind != "inner":
                    self._accept_keyword("outer")
                self._expect_keyword("join")
                table = self._parse_table_ref()
                self._expect_keyword("on")
                condition = self._parse_expression()
                joins.append(ast.Join(table=table, condition=condition,
                                      kind=kind, line=token.line,
                                      column=token.column))
                continue
            break
        return tables, joins

    def _parse_table_ref(self) -> ast.TableRef:
        table = self._expect_identifier()
        alias = None
        if self._accept_keyword("as"):
            alias = self._expect_identifier()
        elif self.current.type is TokenType.IDENTIFIER:
            alias = self._expect_identifier()
        return ast.TableRef(table=table, alias=alias)

    # ------------------------------------------------------------------ #
    # expressions (precedence climbing)
    # ------------------------------------------------------------------ #
    def _parse_expression(self) -> ast.Expression:
        return self._parse_or()

    def _parse_or(self) -> ast.Expression:
        left = self._parse_and()
        while self._accept_keyword("or"):
            right = self._parse_and()
            left = ast.BinaryOp("or", left, right)
        return left

    def _parse_and(self) -> ast.Expression:
        left = self._parse_not()
        while self._accept_keyword("and"):
            right = self._parse_not()
            left = ast.BinaryOp("and", left, right)
        return left

    def _parse_not(self) -> ast.Expression:
        if self._accept_keyword("not"):
            return ast.UnaryOp("not", self._parse_not())
        return self._parse_comparison()

    def _parse_comparison(self) -> ast.Expression:
        left = self._parse_additive()

        negated = False
        if self.current.matches_keyword("not"):
            # NOT BETWEEN / NOT IN / NOT LIKE
            next_token = self.tokens[self.index + 1]
            if next_token.type is TokenType.KEYWORD and next_token.value in (
                    "between", "in", "like"):
                self._advance()
                negated = True

        if self._accept_keyword("between"):
            low = self._parse_additive()
            self._expect_keyword("and")
            high = self._parse_additive()
            return ast.Between(expr=left, low=low, high=high, negated=negated)

        if self._accept_keyword("in"):
            self._expect_punct("(")
            values = [self._parse_expression()]
            while self._accept_punct(","):
                values.append(self._parse_expression())
            self._expect_punct(")")
            return ast.InList(expr=left, values=values, negated=negated)

        if self._accept_keyword("like"):
            token = self.current
            if token.type is not TokenType.STRING:
                raise self._error("LIKE expects a string literal pattern")
            self._advance()
            return ast.Like(expr=left, pattern=token.value, negated=negated)

        for operator in ("=", "<>", "!=", "<=", ">=", "<", ">"):
            if self._accept_operator(operator):
                right = self._parse_additive()
                canonical = "<>" if operator == "!=" else operator
                return ast.BinaryOp(canonical, left, right)
        return left

    def _parse_additive(self) -> ast.Expression:
        left = self._parse_multiplicative()
        while True:
            if self._accept_operator("+"):
                left = ast.BinaryOp("+", left, self._parse_multiplicative())
            elif self._accept_operator("-"):
                left = ast.BinaryOp("-", left, self._parse_multiplicative())
            elif self._accept_operator("||"):
                left = ast.BinaryOp("||", left, self._parse_multiplicative())
            else:
                return left

    def _parse_multiplicative(self) -> ast.Expression:
        left = self._parse_unary()
        while True:
            if self._accept_operator("*"):
                left = ast.BinaryOp("*", left, self._parse_unary())
            elif self._accept_operator("/"):
                left = ast.BinaryOp("/", left, self._parse_unary())
            elif self._accept_operator("%"):
                left = ast.BinaryOp("%", left, self._parse_unary())
            else:
                return left

    def _parse_unary(self) -> ast.Expression:
        if self._accept_operator("-"):
            return ast.UnaryOp("-", self._parse_unary())
        if self._accept_operator("+"):
            return self._parse_unary()
        return self._parse_primary()

    # ------------------------------------------------------------------ #
    def _parse_primary(self) -> ast.Expression:
        token = self.current

        if token.type is TokenType.PARAMETER:
            self._advance()
            return self._make_parameter(token.value)

        if token.type is TokenType.INTEGER:
            self._advance()
            return ast.Literal(int(token.value), "int")
        if token.type is TokenType.FLOAT:
            self._advance()
            return ast.Literal(float(token.value), "float")
        if token.type is TokenType.STRING:
            self._advance()
            return ast.Literal(token.value, "string")

        if token.matches_keyword("true"):
            self._advance()
            return ast.Literal(True, "bool")
        if token.matches_keyword("false"):
            self._advance()
            return ast.Literal(False, "bool")

        if token.matches_keyword("date"):
            # DATE '1995-01-01'
            self._advance()
            literal = self.current
            if literal.type is not TokenType.STRING:
                raise self._error("DATE expects a string literal")
            self._advance()
            return ast.Literal(literal.value, "date")

        if token.matches_keyword("interval"):
            self._advance()
            literal = self.current
            if literal.type not in (TokenType.STRING, TokenType.INTEGER):
                raise self._error("INTERVAL expects a quoted or integer value")
            self._advance()
            unit_token = self.current
            if unit_token.type is not TokenType.KEYWORD or unit_token.value \
                    not in ("year", "month", "day"):
                raise self._error("INTERVAL unit must be YEAR, MONTH or DAY")
            self._advance()
            return ast.IntervalLiteral(int(literal.value), unit_token.value)

        if token.matches_keyword("case"):
            return self._parse_case()

        if token.matches_keyword("cast"):
            self._advance()
            self._expect_punct("(")
            expr = self._parse_expression()
            self._expect_keyword("as")
            type_name = self._expect_identifier()
            self._expect_punct(")")
            return ast.Cast(expr=expr, type_name=type_name)

        if token.matches_keyword("extract"):
            self._advance()
            self._expect_punct("(")
            field_token = self.current
            if field_token.type is not TokenType.KEYWORD or \
                    field_token.value not in ("year", "month", "day"):
                raise self._error("EXTRACT field must be YEAR, MONTH or DAY")
            self._advance()
            self._expect_keyword("from")
            expr = self._parse_expression()
            self._expect_punct(")")
            return ast.Extract(field=field_token.value, expr=expr)

        if token.type is TokenType.IDENTIFIER or (
                token.type is TokenType.KEYWORD
                and token.value in ("year", "month", "day")):
            return self._parse_identifier_expression()

        if self._accept_punct("("):
            expr = self._parse_expression()
            self._expect_punct(")")
            return expr

        raise self._error("expected an expression")

    def _make_parameter(self, name: str) -> ast.Parameter:
        """Allocate (or reuse, for named parameters) a parameter slot."""
        if name == "":
            if self._named_slots:
                raise self._error(
                    "cannot mix positional (?) and named (:name) parameters")
            self._has_positional = True
            index = len(self.parameters)
            self.parameters.append(None)
            return ast.Parameter(index=index)
        if self._has_positional:
            raise self._error(
                "cannot mix positional (?) and named (:name) parameters")
        index = self._named_slots.get(name)
        if index is None:
            index = len(self.parameters)
            self._named_slots[name] = index
            self.parameters.append(name)
        return ast.Parameter(index=index, name=name)

    def _parse_identifier_expression(self) -> ast.Expression:
        name = self._expect_identifier()

        # Function call?
        if self._accept_punct("("):
            if (self.current.type is TokenType.OPERATOR
                    and self.current.value == "*"):
                self._advance()
                self._expect_punct(")")
                return ast.FunctionCall(name=name, args=[], is_star=True)
            distinct = self._accept_keyword("distinct")
            args: list[ast.Expression] = []
            if not self._accept_punct(")"):
                args.append(self._parse_expression())
                while self._accept_punct(","):
                    args.append(self._parse_expression())
                self._expect_punct(")")
            return ast.FunctionCall(name=name, args=args, distinct=distinct)

        # Qualified column reference?
        if self._accept_punct("."):
            column = self._expect_identifier()
            return ast.ColumnRef(name=column, table=name)
        return ast.ColumnRef(name=name)

    def _parse_case(self) -> ast.Expression:
        self._expect_keyword("case")
        branches: list[tuple[ast.Expression, ast.Expression]] = []
        default: Optional[ast.Expression] = None
        while self._accept_keyword("when"):
            condition = self._parse_expression()
            self._expect_keyword("then")
            value = self._parse_expression()
            branches.append((condition, value))
        if self._accept_keyword("else"):
            default = self._parse_expression()
        self._expect_keyword("end")
        if not branches:
            raise self._error("CASE requires at least one WHEN branch")
        return ast.CaseWhen(branches=branches, default=default)


def parse(text: str) -> ast.SelectStatement:
    """Parse one SELECT statement."""
    return Parser(text).parse_statement()
