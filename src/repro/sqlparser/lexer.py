"""SQL lexer.

Produces a flat token stream for the recursive-descent parser.  The dialect
is case-insensitive for keywords and identifiers; string literals use single
quotes with ``''`` as the escape for a quote character.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, Optional

from ..errors import LexerError


class TokenType(enum.Enum):
    KEYWORD = "keyword"
    IDENTIFIER = "identifier"
    INTEGER = "integer"
    FLOAT = "float"
    STRING = "string"
    OPERATOR = "operator"
    PUNCTUATION = "punctuation"
    #: A bind-parameter placeholder: ``?`` (value ``""``) or ``:name``
    #: (value is the lower-cased name).
    PARAMETER = "parameter"
    END = "end"


#: Reserved words recognised by the parser (everything else is an identifier).
KEYWORDS = {
    "select", "distinct", "from", "where", "group", "by", "having", "order",
    "limit", "as", "and", "or", "not", "in", "between", "like", "is", "null",
    "join", "inner", "left", "outer", "right", "full", "on", "asc", "desc",
    "case", "when", "then",
    "else", "end", "date", "interval", "year", "month", "day", "exists",
    "union", "all", "cast", "substring", "extract", "for", "true", "false",
}

#: Multi-character operators, longest first so the scanner is greedy.
_OPERATORS = ("<>", "!=", ">=", "<=", "||", "=", "<", ">", "+", "-", "*", "/",
              "%")

_PUNCTUATION = {"(", ")", ",", ".", ";"}


@dataclass(frozen=True)
class Token:
    type: TokenType
    value: str
    position: int
    line: int
    column: int

    def matches_keyword(self, keyword: str) -> bool:
        return self.type is TokenType.KEYWORD and self.value == keyword

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Token({self.type.value}, {self.value!r})"


class Lexer:
    """Single-pass scanner over SQL text."""

    def __init__(self, text: str):
        self.text = text
        self.position = 0
        self.line = 1
        self.column = 1

    # ------------------------------------------------------------------ #
    def tokens(self) -> Iterator[Token]:
        while True:
            token = self.next_token()
            yield token
            if token.type is TokenType.END:
                return

    def next_token(self) -> Token:
        self._skip_whitespace_and_comments()
        if self.position >= len(self.text):
            return self._token(TokenType.END, "")

        ch = self.text[self.position]

        if ch.isdigit() or (ch == "." and self._peek(1).isdigit()):
            return self._scan_number()
        if ch == "'":
            return self._scan_string()
        if ch.isalpha() or ch == "_":
            return self._scan_word()
        if ch == "?":
            token = self._token(TokenType.PARAMETER, "")
            self._advance(1)
            return token
        if ch == ":" and (self._peek(1).isalpha() or self._peek(1) == "_"):
            return self._scan_named_parameter()
        for operator in _OPERATORS:
            if self.text.startswith(operator, self.position):
                token = self._token(TokenType.OPERATOR, operator)
                self._advance(len(operator))
                return token
        if ch in _PUNCTUATION:
            token = self._token(TokenType.PUNCTUATION, ch)
            self._advance(1)
            return token
        raise LexerError(f"unexpected character {ch!r}", self.position,
                         self.line, self.column)

    # ------------------------------------------------------------------ #
    def _peek(self, offset: int) -> str:
        index = self.position + offset
        return self.text[index] if index < len(self.text) else ""

    def _advance(self, count: int) -> None:
        for _ in range(count):
            if self.position < len(self.text) and self.text[self.position] == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
            self.position += 1

    def _token(self, token_type: TokenType, value: str) -> Token:
        return Token(token_type, value, self.position, self.line, self.column)

    def _skip_whitespace_and_comments(self) -> None:
        while self.position < len(self.text):
            ch = self.text[self.position]
            if ch.isspace():
                self._advance(1)
            elif self.text.startswith("--", self.position):
                while (self.position < len(self.text)
                       and self.text[self.position] != "\n"):
                    self._advance(1)
            elif self.text.startswith("/*", self.position):
                end = self.text.find("*/", self.position + 2)
                if end < 0:
                    raise LexerError("unterminated block comment",
                                     self.position, self.line, self.column)
                self._advance(end + 2 - self.position)
            else:
                return

    def _scan_number(self) -> Token:
        start = self.position
        start_token = self._token(TokenType.INTEGER, "")
        is_float = False
        while self.position < len(self.text):
            ch = self.text[self.position]
            if ch.isdigit():
                self._advance(1)
            elif ch == "." and not is_float:
                is_float = True
                self._advance(1)
            elif ch in "eE" and self._peek(1).isdigit():
                is_float = True
                self._advance(2)
            else:
                break
        value = self.text[start:self.position]
        token_type = TokenType.FLOAT if is_float else TokenType.INTEGER
        return Token(token_type, value, start_token.position,
                     start_token.line, start_token.column)

    def _scan_string(self) -> Token:
        start_token = self._token(TokenType.STRING, "")
        self._advance(1)  # opening quote
        parts: list[str] = []
        while True:
            if self.position >= len(self.text):
                raise LexerError("unterminated string literal",
                                 start_token.position, start_token.line,
                                 start_token.column)
            ch = self.text[self.position]
            if ch == "'":
                if self._peek(1) == "'":
                    parts.append("'")
                    self._advance(2)
                    continue
                self._advance(1)
                break
            parts.append(ch)
            self._advance(1)
        return Token(TokenType.STRING, "".join(parts), start_token.position,
                     start_token.line, start_token.column)

    def _scan_named_parameter(self) -> Token:
        start_token = self._token(TokenType.PARAMETER, "")
        self._advance(1)  # the colon
        start = self.position
        while self.position < len(self.text):
            ch = self.text[self.position]
            if ch.isalnum() or ch == "_":
                self._advance(1)
            else:
                break
        name = self.text[start:self.position].lower()
        return Token(TokenType.PARAMETER, name, start_token.position,
                     start_token.line, start_token.column)

    def _scan_word(self) -> Token:
        start = self.position
        start_token = self._token(TokenType.IDENTIFIER, "")
        while self.position < len(self.text):
            ch = self.text[self.position]
            if ch.isalnum() or ch == "_":
                self._advance(1)
            else:
                break
        word = self.text[start:self.position]
        lowered = word.lower()
        if lowered in KEYWORDS:
            return Token(TokenType.KEYWORD, lowered, start_token.position,
                         start_token.line, start_token.column)
        return Token(TokenType.IDENTIFIER, lowered, start_token.position,
                     start_token.line, start_token.column)


def tokenize(text: str) -> list[Token]:
    """Tokenize SQL text into a list ending with an END token."""
    return list(Lexer(text).tokens())
