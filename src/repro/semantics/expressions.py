"""Typed expression tree produced by semantic analysis.

These expressions are the common currency between the optimizer, the code
generator and the two baseline engines: every engine evaluates exactly the
same tree, which guarantees that result comparisons across engines test the
execution strategy rather than subtle semantic differences (the paper's
argument for a single engine with multiple execution modes).

DECIMAL columns are promoted to FLOAT64 at the expression level: a decimal
column read produces the scaled integer which is immediately converted to its
numeric value.  This keeps the storage compact (scaled int64) while making
all arithmetic uniform.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence

from ..errors import BindError
from ..types import SQLType

#: Aggregate function names understood by the binder.
AGGREGATE_FUNCTIONS = {"sum", "count", "avg", "min", "max"}


class TypedExpression:
    """Base class: every node knows its result SQL type."""

    result_type: SQLType

    # Structural identity -------------------------------------------------
    def key(self) -> tuple:
        """A hashable structural key (used for group-by / select matching)."""
        raise NotImplementedError

    def children(self) -> list["TypedExpression"]:
        return []

    def walk(self) -> Iterator["TypedExpression"]:
        yield self
        for child in self.children():
            yield from child.walk()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.key()}>"


@dataclass
class ColumnExpr(TypedExpression):
    """A reference to a column of a bound table (``binding.column``)."""

    binding: str
    column: str
    result_type: SQLType
    #: Original storage type (DECIMAL columns surface as FLOAT64).
    storage_type: SQLType = None  # type: ignore[assignment]

    def __post_init__(self):
        if self.storage_type is None:
            self.storage_type = self.result_type

    def key(self) -> tuple:
        return ("col", self.binding, self.column)


@dataclass
class LiteralExpr(TypedExpression):
    """A constant."""

    value: object
    result_type: SQLType

    def key(self) -> tuple:
        return ("lit", self.result_type.value, self.value)


@dataclass
class ParameterExpr(TypedExpression):
    """A bind parameter (``?`` or ``:name``), evaluated from the params vector.

    ``result_type`` is inferred by the binder from the parameter's context
    (``None`` only while binding is still in progress).  ``hint`` optionally
    carries the *encoded* literal value the parameter replaced during
    auto-parameterization; it is used exclusively by cardinality estimation,
    never by execution, and is deliberately not part of the structural key so
    one cached plan serves every binding of the same query shape.
    """

    index: int
    name: Optional[str] = None
    result_type: Optional[SQLType] = None  # type: ignore[assignment]
    hint: object = None

    def key(self) -> tuple:
        return ("param", self.index)


@dataclass
class ArithmeticExpr(TypedExpression):
    """``left <op> right`` with op in ``+ - * / %``."""

    operator: str
    left: TypedExpression
    right: TypedExpression
    result_type: SQLType

    def key(self) -> tuple:
        return ("arith", self.operator, self.left.key(), self.right.key())

    def children(self):
        return [self.left, self.right]


@dataclass
class ComparisonExpr(TypedExpression):
    """``left <op> right`` with op in ``= <> < <= > >=``; result BOOL."""

    operator: str
    left: TypedExpression
    right: TypedExpression
    result_type: SQLType = SQLType.BOOL

    def key(self) -> tuple:
        return ("cmp", self.operator, self.left.key(), self.right.key())

    def children(self):
        return [self.left, self.right]


@dataclass
class LogicalExpr(TypedExpression):
    """N-ary AND / OR."""

    operator: str  # "and" | "or"
    operands: list[TypedExpression]
    result_type: SQLType = SQLType.BOOL

    def key(self) -> tuple:
        return ("logic", self.operator,
                tuple(op.key() for op in self.operands))

    def children(self):
        return list(self.operands)


@dataclass
class NotExpr(TypedExpression):
    """Logical negation."""

    operand: TypedExpression
    result_type: SQLType = SQLType.BOOL

    def key(self) -> tuple:
        return ("not", self.operand.key())

    def children(self):
        return [self.operand]


@dataclass
class BetweenExpr(TypedExpression):
    """``expr BETWEEN low AND high`` (inclusive; bounds are literals or exprs)."""

    expr: TypedExpression
    low: TypedExpression
    high: TypedExpression
    negated: bool = False
    result_type: SQLType = SQLType.BOOL

    def key(self) -> tuple:
        return ("between", self.negated, self.expr.key(), self.low.key(),
                self.high.key())

    def children(self):
        return [self.expr, self.low, self.high]


@dataclass
class InListExpr(TypedExpression):
    """``expr IN (literal, ...)``."""

    expr: TypedExpression
    values: list[TypedExpression]
    negated: bool = False
    result_type: SQLType = SQLType.BOOL

    def key(self) -> tuple:
        return ("in", self.negated, self.expr.key(),
                tuple(v.key() for v in self.values))

    def children(self):
        return [self.expr] + list(self.values)


@dataclass
class LikeExpr(TypedExpression):
    """``expr LIKE pattern`` with %/_ wildcards."""

    expr: TypedExpression
    pattern: str
    negated: bool = False
    result_type: SQLType = SQLType.BOOL

    def key(self) -> tuple:
        return ("like", self.negated, self.expr.key(), self.pattern)

    def children(self):
        return [self.expr]


@dataclass
class CaseExpr(TypedExpression):
    """``CASE WHEN ... THEN ... ELSE ... END``."""

    branches: list[tuple[TypedExpression, TypedExpression]]
    default: Optional[TypedExpression]
    result_type: SQLType

    def key(self) -> tuple:
        return ("case",
                tuple((c.key(), v.key()) for c, v in self.branches),
                self.default.key() if self.default is not None else None)

    def children(self):
        out: list[TypedExpression] = []
        for condition, value in self.branches:
            out.extend((condition, value))
        if self.default is not None:
            out.append(self.default)
        return out


@dataclass
class ExtractExpr(TypedExpression):
    """``EXTRACT(YEAR|MONTH|DAY FROM date_expr)`` -> INT64."""

    field_name: str
    operand: TypedExpression
    result_type: SQLType = SQLType.INT64

    def key(self) -> tuple:
        return ("extract", self.field_name, self.operand.key())

    def children(self):
        return [self.operand]


@dataclass
class CastExpr(TypedExpression):
    """Explicit cast between numeric types."""

    operand: TypedExpression
    result_type: SQLType

    def key(self) -> tuple:
        return ("cast", self.result_type.value, self.operand.key())

    def children(self):
        return [self.operand]


@dataclass
class AggregateExpr(TypedExpression):
    """An aggregate call.  ``argument`` is None for ``count(*)``."""

    function: str
    argument: Optional[TypedExpression]
    distinct: bool
    result_type: SQLType

    def key(self) -> tuple:
        return ("agg", self.function, self.distinct,
                self.argument.key() if self.argument is not None else None)

    def children(self):
        return [self.argument] if self.argument is not None else []


# --------------------------------------------------------------------------- #
# helpers
# --------------------------------------------------------------------------- #
def collect_aggregates(expr: TypedExpression) -> list[AggregateExpr]:
    """All aggregate nodes inside ``expr`` (in walk order, with duplicates)."""
    return [node for node in expr.walk() if isinstance(node, AggregateExpr)]


def collect_columns(expr: TypedExpression) -> list[ColumnExpr]:
    """All column references inside ``expr``."""
    return [node for node in expr.walk() if isinstance(node, ColumnExpr)]


def referenced_bindings(expr: TypedExpression) -> set[str]:
    """Names of all table bindings an expression touches."""
    return {column.binding for column in collect_columns(expr)}


def expressions_equal(a: TypedExpression, b: TypedExpression) -> bool:
    """Structural equality (used to match select items to group-by keys)."""
    return a.key() == b.key()


def split_conjuncts(expr: Optional[TypedExpression]) -> list[TypedExpression]:
    """Flatten a predicate into its top-level AND conjuncts."""
    if expr is None:
        return []
    if isinstance(expr, LogicalExpr) and expr.operator == "and":
        out: list[TypedExpression] = []
        for operand in expr.operands:
            out.extend(split_conjuncts(operand))
        return out
    return [expr]


def conjunction(conjuncts: Sequence[TypedExpression]
                ) -> Optional[TypedExpression]:
    """Combine conjuncts back into a single predicate (or None)."""
    conjuncts = [c for c in conjuncts if c is not None]
    if not conjuncts:
        return None
    if len(conjuncts) == 1:
        return conjuncts[0]
    return LogicalExpr("and", list(conjuncts))


def like_to_predicate(pattern: str):
    """Compile a SQL LIKE pattern into a Python predicate over strings.

    Fast paths for the common prefix / suffix / containment patterns keep the
    per-tuple cost low; anything else falls back to a compiled regex.
    """
    import re

    has_underscore = "_" in pattern
    if not has_underscore:
        body = pattern.strip("%")
        if "%" not in body:
            leading = pattern.startswith("%")
            trailing = pattern.endswith("%")
            if leading and trailing:
                return lambda s, _needle=body: _needle in s
            if trailing and not leading:
                return lambda s, _needle=body: s.startswith(_needle)
            if leading and not trailing:
                return lambda s, _needle=body: s.endswith(_needle)
            return lambda s, _needle=body: s == _needle
    regex = re.compile(
        "^" + re.escape(pattern).replace("%", ".*").replace("_", ".") + "$",
        re.DOTALL)
    return lambda s, _regex=regex: _regex.match(s) is not None
