"""Semantic analysis: name resolution, type checking, typed expressions."""

from .expressions import (
    TypedExpression,
    ColumnExpr,
    LiteralExpr,
    ArithmeticExpr,
    ComparisonExpr,
    LogicalExpr,
    NotExpr,
    BetweenExpr,
    InListExpr,
    LikeExpr,
    CaseExpr,
    ExtractExpr,
    CastExpr,
    AggregateExpr,
    AGGREGATE_FUNCTIONS,
    collect_aggregates,
    collect_columns,
    expressions_equal,
)
from .binder import Binder, BoundQuery, TableBinding, OutputColumn

__all__ = [
    "TypedExpression", "ColumnExpr", "LiteralExpr", "ArithmeticExpr",
    "ComparisonExpr", "LogicalExpr", "NotExpr", "BetweenExpr", "InListExpr",
    "LikeExpr", "CaseExpr", "ExtractExpr", "CastExpr", "AggregateExpr",
    "AGGREGATE_FUNCTIONS", "collect_aggregates", "collect_columns",
    "expressions_equal",
    "Binder", "BoundQuery", "TableBinding", "OutputColumn",
]
