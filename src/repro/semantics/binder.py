"""The binder: turns a parsed AST into a typed, name-resolved BoundQuery."""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass, field
from typing import Optional

from ..catalog import Catalog, Table
from ..errors import BindError, ParameterError
from ..parameters import ParameterSpec, encode_parameter
from ..sqlparser import ast_nodes as ast
from ..types import (
    SQLType,
    date_to_days,
    decimal_to_scaled,
    scaled_to_decimal,
)
from .expressions import (
    AGGREGATE_FUNCTIONS,
    AggregateExpr,
    ArithmeticExpr,
    BetweenExpr,
    CaseExpr,
    CastExpr,
    ColumnExpr,
    ComparisonExpr,
    ExtractExpr,
    InListExpr,
    LikeExpr,
    LiteralExpr,
    LogicalExpr,
    NotExpr,
    ParameterExpr,
    TypedExpression,
    collect_aggregates,
    referenced_bindings,
    split_conjuncts,
)


@dataclass
class TableBinding:
    """A FROM-clause entry: an alias bound to a catalog table."""

    name: str          # binding name (alias or table name)
    table: Table

    @property
    def table_name(self) -> str:
        return self.table.name


@dataclass
class OutputColumn:
    """One column of the query result."""

    name: str
    expr: TypedExpression

    @property
    def result_type(self) -> SQLType:
        return self.expr.result_type


@dataclass
class BoundOuterJoin:
    """One LEFT OUTER JOIN: its preserved-side ON conjuncts stay attached.

    ``binding`` names the join's build side (the right input).  The
    conjuncts are *not* folded into the global predicate pool -- treating a
    left join's ON clause as a WHERE filter would drop the preserved rows
    -- so the planner classifies them per join (equi keys, build-side
    filters, probe residuals).
    """

    binding: str
    conjuncts: list[TypedExpression] = field(default_factory=list)


@dataclass
class BoundQuery:
    """The fully resolved query, ready for planning."""

    bindings: list[TableBinding]
    #: WHERE / inner-JOIN-ON conjuncts, unclassified (the optimizer splits
    #: them).  LEFT JOIN conjuncts live in :attr:`outer_joins` instead.
    predicates: list[TypedExpression]
    output: list[OutputColumn]
    group_by: list[TypedExpression] = field(default_factory=list)
    having: Optional[TypedExpression] = None
    order_by: list[tuple[TypedExpression, bool]] = field(default_factory=list)
    #: An ``int`` literal or a :class:`ParameterExpr` (``LIMIT ?``).
    limit: Optional[object] = None
    distinct: bool = False
    #: One spec per bind-parameter slot, in slot order (empty when the
    #: statement has no parameters).
    parameters: list[ParameterSpec] = field(default_factory=list)
    #: LEFT OUTER JOINs in FROM-clause order; their build bindings are
    #: nullable (NULL-padded for unmatched preserved rows).
    outer_joins: list[BoundOuterJoin] = field(default_factory=list)

    @property
    def nullable_bindings(self) -> set[str]:
        return {join.binding for join in self.outer_joins}

    @property
    def has_aggregation(self) -> bool:
        if self.group_by:
            return True
        return any(collect_aggregates(col.expr) for col in self.output)

    def binding(self, name: str) -> TableBinding:
        for binding in self.bindings:
            if binding.name == name:
                return binding
        raise BindError(f"unknown binding {name!r}")


class Binder:
    """Performs semantic analysis of one SELECT statement."""

    def __init__(self, catalog: Catalog):
        self.catalog = catalog
        #: Parameter-binding state, reset per :meth:`bind` call.
        self._param_types: dict[int, SQLType] = {}
        self._param_nodes: dict[int, list[ParameterExpr]] = {}
        #: Slots whose type came from an auto-parameterization hint rather
        #: than a binding context; they may still be re-typed the way the
        #: literal they replaced would have been coerced.
        self._param_provisional: set[int] = set()
        self._param_names: list[Optional[str]] = []
        self._param_hints: Optional[list] = None

    # ------------------------------------------------------------------ #
    def bind(self, statement: ast.SelectStatement,
             parameter_hints: Optional[list] = None) -> BoundQuery:
        """Bind ``statement``; ``parameter_hints`` optionally supplies the
        literal values that auto-parameterization extracted (one per slot),
        used to seed parameter types and cardinality estimates."""
        self._param_types = {}
        self._param_nodes = {}
        self._param_provisional = set()
        self._param_names = list(statement.parameters)
        if parameter_hints is not None \
                and len(parameter_hints) != len(self._param_names):
            raise ParameterError(
                f"got {len(parameter_hints)} parameter hints for "
                f"{len(self._param_names)} parameter slot(s)")
        self._param_hints = (list(parameter_hints)
                             if parameter_hints is not None else None)
        bindings = self._bind_from(statement)
        scope = _Scope(bindings)

        predicates: list[TypedExpression] = []
        outer_joins: list[BoundOuterJoin] = []
        for join in statement.joins:
            condition = self._bind_expression(join.condition, scope)
            self._require_bool(condition, "JOIN condition")
            conjuncts = split_conjuncts(condition)
            if join.kind == "left":
                # A left join's ON clause must stay attached to the join:
                # folding it into the WHERE pool would drop preserved rows.
                outer_joins.append(BoundOuterJoin(
                    binding=(join.table.alias or join.table.table).lower(),
                    conjuncts=conjuncts))
            else:
                predicates.extend(conjuncts)
        if statement.where is not None:
            where = self._bind_expression(statement.where, scope)
            self._require_bool(where, "WHERE clause")
            predicates.extend(split_conjuncts(where))
        for predicate in predicates:
            if collect_aggregates(predicate):
                raise BindError("aggregates are not allowed in WHERE/ON")

        output = self._bind_select_list(statement, scope)
        group_by = [self._bind_expression(expr, scope)
                    for expr in statement.group_by]
        # Allow GROUP BY on select aliases / positions.
        group_by = [self._resolve_group_key(expr, raw, output)
                    for expr, raw in zip(group_by, statement.group_by)]

        having = None
        if statement.having is not None:
            having = self._bind_expression(statement.having, scope)
            self._require_bool(having, "HAVING clause")

        order_by = []
        for item in statement.order_by:
            order_by.append((self._bind_order_key(item.expr, scope, output),
                             item.ascending))

        limit = statement.limit
        if isinstance(limit, ast.Parameter):
            limit = self._bind_parameter(limit)
            self._set_parameter_type(limit, SQLType.INT64)

        bound = BoundQuery(
            bindings=bindings,
            predicates=predicates,
            output=output,
            group_by=group_by,
            having=having,
            order_by=order_by,
            limit=limit,
            distinct=statement.distinct,
            parameters=self._finalize_parameters(),
            outer_joins=outer_joins,
        )
        self._validate_aggregation(bound)
        self._validate_nullable_usage(bound)
        return bound

    # ------------------------------------------------------------------ #
    # bind parameters
    # ------------------------------------------------------------------ #
    def _param_label(self, index: int) -> str:
        name = (self._param_names[index]
                if index < len(self._param_names) else None)
        return f":{name}" if name else f"?{index + 1}"

    def _bind_parameter(self, node: ast.Parameter) -> ParameterExpr:
        expr = ParameterExpr(index=node.index, name=node.name)
        declared = self._param_types.get(node.index)
        if declared is not None:
            expr.result_type = declared
        elif self._param_hints is not None:
            natural = _natural_hint_type(self._param_hints[node.index])
            if natural is not None:
                self._param_types[node.index] = natural
                self._param_provisional.add(node.index)
                expr.result_type = natural
        self._param_nodes.setdefault(node.index, []).append(expr)
        return expr

    def _set_parameter_type(self, param: ParameterExpr,
                            target: SQLType) -> None:
        """Fix a parameter slot's type, propagating to all its occurrences."""
        index = param.index
        current = self._param_types.get(index)
        if current is not None and current is not target \
                and index not in self._param_provisional:
            raise ParameterError(
                f"parameter {self._param_label(index)} is used both as "
                f"{current} and as {target}")
        self._param_types[index] = target
        self._param_provisional.discard(index)
        for node in self._param_nodes.get(index, []):
            node.result_type = target

    def _infer_parameter_from(self, param: ParameterExpr,
                              target: Optional[SQLType]) -> None:
        """Give ``param`` a type based on the context type ``target``.

        An untyped parameter simply takes the context type.  A provisionally
        typed one (auto-parameterization hint) is re-typed exactly the way
        the literal it replaced would have been coerced: int -> float
        promotion and string -> date conversion; every other combination is
        left to the regular coercion rules, so mismatches raise the same
        :class:`BindError` the literal form raises.
        """
        current = self._param_types.get(param.index)
        if current is None:
            if target is None:
                raise ParameterError(
                    f"cannot infer the type of parameter "
                    f"{self._param_label(param.index)} from another untyped "
                    f"parameter")
            self._set_parameter_type(param, target)
            return
        if target is None or current is target:
            return
        if param.index in self._param_provisional:
            if current is SQLType.INT64 and target is SQLType.FLOAT64:
                self._set_parameter_type(param, SQLType.FLOAT64)
                return
            if current is SQLType.STRING and target is SQLType.DATE:
                self._set_parameter_type(param, SQLType.DATE)
                return
        # A definite type meeting a different context: numeric/date/bool
        # combinations are left to the regular coercion rules (they have
        # well-defined literal semantics); anything else is a conflicting
        # use of one parameter slot.
        coercible = {SQLType.INT64, SQLType.FLOAT64, SQLType.DATE,
                     SQLType.BOOL}
        if current not in coercible or target not in coercible:
            raise ParameterError(
                f"parameter {self._param_label(param.index)} is used both "
                f"as {current} and as {target}")

    def _require_parameter_type(self, expr: TypedExpression,
                                context: str) -> None:
        if isinstance(expr, ParameterExpr) and expr.result_type is None:
            raise ParameterError(
                f"cannot infer the type of parameter "
                f"{self._param_label(expr.index)} in {context}")

    def _finalize_parameters(self) -> list[ParameterSpec]:
        specs: list[ParameterSpec] = []
        for index in range(len(self._param_names)):
            sql_type = self._param_types.get(index)
            if sql_type is None:
                raise ParameterError(
                    f"cannot infer the type of parameter "
                    f"{self._param_label(index)}; use it in a typed context "
                    f"(e.g. compared with a column)")
            specs.append(ParameterSpec(index=index, sql_type=sql_type,
                                       name=self._param_names[index]))
            if self._param_hints is not None:
                try:
                    hint = encode_parameter(self._param_hints[index],
                                            sql_type,
                                            self._param_label(index))
                except ParameterError:
                    hint = None
                for node in self._param_nodes.get(index, []):
                    node.hint = hint
        return specs

    # ------------------------------------------------------------------ #
    # FROM clause
    # ------------------------------------------------------------------ #
    def _bind_from(self, statement: ast.SelectStatement) -> list[TableBinding]:
        refs = list(statement.from_tables) + [j.table for j in statement.joins]
        if not refs:
            raise BindError("queries without a FROM clause are not supported")
        for join in statement.joins:
            if join.kind in ("right", "full"):
                construct = ("RIGHT OUTER JOIN" if join.kind == "right"
                             else "FULL OUTER JOIN")
                raise BindError(
                    f"{construct} is not supported (line {join.line}, "
                    f"column {join.column}); only INNER JOIN and "
                    f"LEFT [OUTER] JOIN are available -- rewrite a RIGHT "
                    f"join by swapping its inputs")
            if join.kind not in ("inner", "left"):  # pragma: no cover
                raise BindError(f"unknown join kind {join.kind!r}")
        bindings: list[TableBinding] = []
        seen: set[str] = set()
        for ref in refs:
            if not self.catalog.has_table(ref.table):
                raise BindError(f"table {ref.table!r} does not exist")
            name = (ref.alias or ref.table).lower()
            if name in seen:
                raise BindError(f"duplicate table binding {name!r}")
            seen.add(name)
            bindings.append(TableBinding(name=name,
                                         table=self.catalog.table(ref.table)))
        return bindings

    # ------------------------------------------------------------------ #
    # SELECT list
    # ------------------------------------------------------------------ #
    def _bind_select_list(self, statement: ast.SelectStatement,
                          scope: "_Scope") -> list[OutputColumn]:
        output: list[OutputColumn] = []
        for item in statement.select_items:
            if item.is_star:
                for binding in scope.bindings:
                    for column in binding.table.schema.columns:
                        expr = scope.column(binding.name, column.name)
                        output.append(OutputColumn(name=column.name, expr=expr))
                continue
            expr = self._bind_expression(item.expr, scope)
            name = item.alias or _default_output_name(item.expr, len(output))
            output.append(OutputColumn(name=name, expr=expr))
        if not output:
            raise BindError("empty SELECT list")
        return output

    def _resolve_group_key(self, bound: TypedExpression, raw: ast.Expression,
                           output: list[OutputColumn]) -> TypedExpression:
        """Resolve GROUP BY entries given as output aliases or positions."""
        if isinstance(raw, ast.Literal) and raw.kind == "int":
            index = int(raw.value) - 1
            if not 0 <= index < len(output):
                raise BindError(f"GROUP BY position {raw.value} out of range")
            return output[index].expr
        return bound

    def _bind_order_key(self, raw: ast.Expression, scope: "_Scope",
                        output: list[OutputColumn]) -> TypedExpression:
        if isinstance(raw, ast.Literal) and raw.kind == "int":
            index = int(raw.value) - 1
            if not 0 <= index < len(output):
                raise BindError(f"ORDER BY position {raw.value} out of range")
            return output[index].expr
        if isinstance(raw, ast.ColumnRef) and raw.table is None:
            for column in output:
                if column.name == raw.name:
                    return column.expr
        return self._bind_expression(raw, scope)

    def _validate_aggregation(self, bound: BoundQuery) -> None:
        if not bound.has_aggregation:
            if bound.having is not None:
                raise BindError("HAVING requires GROUP BY or aggregates")
            return
        group_keys = {expr.key() for expr in bound.group_by}
        for column in bound.output:
            self._check_aggregated_expr(column.expr, group_keys, column.name)
        if bound.having is not None:
            self._check_aggregated_expr(bound.having, group_keys, "HAVING")
        for expr, _ in bound.order_by:
            self._check_aggregated_expr(expr, group_keys, "ORDER BY")

    def _validate_nullable_usage(self, bound: BoundQuery) -> None:
        """Restrict where NULL-padded (left-join build) columns may appear.

        The engine is NULL-free everywhere except the left-join padding
        emitted at the very end of a pipeline, so nullable columns are only
        allowed where a NULL can flow straight to the client: as bare
        column references in the SELECT list and in ORDER BY, and inside
        their own join's ON condition.  Everything else -- WHERE, GROUP BY,
        aggregate arguments, HAVING, other joins' conditions, expressions
        over nullable columns -- is rejected with a precise error, which
        keeps NULL keys out of every breaker path.
        """
        nullable = bound.nullable_bindings
        if not nullable:
            return

        def check(expr: TypedExpression, context: str,
                  allow_bare: bool = False) -> None:
            if allow_bare and isinstance(expr, ColumnExpr):
                return
            used = referenced_bindings(expr) & nullable
            if used:
                name = sorted(used)[0]
                raise BindError(
                    f"column(s) of LEFT JOIN table {name!r} can be NULL and "
                    f"may only appear as bare columns in the SELECT list or "
                    f"ORDER BY, not in {context}")

        for predicate in bound.predicates:
            check(predicate, "WHERE or an inner JOIN condition")
        for join in bound.outer_joins:
            others = nullable - {join.binding}
            for conjunct in join.conjuncts:
                used = referenced_bindings(conjunct) & others
                if used:
                    raise BindError(
                        f"column(s) of LEFT JOIN table {sorted(used)[0]!r} "
                        f"can be NULL and may not appear in another join's "
                        f"ON condition")
        for column in bound.output:
            check(column.expr, "an expression of the SELECT list",
                  allow_bare=True)
        for expr in bound.group_by:
            check(expr, "GROUP BY")
        if bound.having is not None:
            check(bound.having, "HAVING")
        for expr, _ in bound.order_by:
            check(expr, "an ORDER BY expression", allow_bare=True)

    def _check_aggregated_expr(self, expr: TypedExpression,
                               group_keys: set, context: str) -> None:
        """Every column used outside an aggregate must be a group key."""
        if expr.key() in group_keys or isinstance(expr, AggregateExpr):
            return
        if isinstance(expr, ColumnExpr):
            raise BindError(
                f"column {expr.binding}.{expr.column} in {context} must "
                f"appear in GROUP BY or inside an aggregate")
        for child in expr.children():
            self._check_aggregated_expr(child, group_keys, context)

    # ------------------------------------------------------------------ #
    # expressions
    # ------------------------------------------------------------------ #
    def _require_bool(self, expr: TypedExpression, context: str) -> None:
        if isinstance(expr, ParameterExpr) and expr.result_type is None:
            self._set_parameter_type(expr, SQLType.BOOL)
        if expr.result_type is not SQLType.BOOL:
            raise BindError(f"{context} must be a boolean expression")

    def _bind_expression(self, node: ast.Expression,
                         scope: "_Scope") -> TypedExpression:
        if isinstance(node, ast.Literal):
            return _bind_literal(node)
        if isinstance(node, ast.Parameter):
            return self._bind_parameter(node)
        if isinstance(node, ast.ColumnRef):
            return scope.resolve(node)
        if isinstance(node, ast.UnaryOp):
            return self._bind_unary(node, scope)
        if isinstance(node, ast.BinaryOp):
            return self._bind_binary(node, scope)
        if isinstance(node, ast.Between):
            expr = self._bind_expression(node.expr, scope)
            low = self._bind_expression(node.low, scope)
            high = self._bind_expression(node.high, scope)
            if isinstance(expr, ParameterExpr) and expr.result_type is None:
                reference = low if low.result_type is not None else high
                self._infer_parameter_from(expr, reference.result_type)
            low = self._coerce(low, expr)
            high = self._coerce(high, expr)
            return BetweenExpr(expr=expr, low=low, high=high,
                               negated=node.negated)
        if isinstance(node, ast.InList):
            expr = self._bind_expression(node.expr, scope)
            values = [self._bind_expression(v, scope) for v in node.values]
            if isinstance(expr, ParameterExpr) and expr.result_type is None:
                for value in values:
                    if value.result_type is not None:
                        self._infer_parameter_from(expr, value.result_type)
                        break
            values = [self._coerce(v, expr) for v in values]
            return InListExpr(expr=expr, values=values, negated=node.negated)
        if isinstance(node, ast.Like):
            expr = self._bind_expression(node.expr, scope)
            if isinstance(expr, ParameterExpr) and expr.result_type is None:
                self._set_parameter_type(expr, SQLType.STRING)
            if expr.result_type is not SQLType.STRING:
                raise BindError("LIKE requires a string operand")
            return LikeExpr(expr=expr, pattern=node.pattern,
                            negated=node.negated)
        if isinstance(node, ast.FunctionCall):
            return self._bind_function(node, scope)
        if isinstance(node, ast.CaseWhen):
            return self._bind_case(node, scope)
        if isinstance(node, ast.Cast):
            return self._bind_cast(node, scope)
        if isinstance(node, ast.Extract):
            operand = self._bind_expression(node.expr, scope)
            if isinstance(operand, ParameterExpr) \
                    and operand.result_type is None:
                self._set_parameter_type(operand, SQLType.DATE)
            if operand.result_type is not SQLType.DATE:
                raise BindError("EXTRACT requires a DATE operand")
            return ExtractExpr(field_name=node.field, operand=operand)
        if isinstance(node, ast.IntervalLiteral):
            raise BindError(
                "INTERVAL literals are only supported in date +/- INTERVAL "
                "expressions with a literal date")
        raise BindError(f"unsupported expression node {type(node).__name__}")

    def _bind_unary(self, node: ast.UnaryOp, scope) -> TypedExpression:
        if node.operator == "not":
            operand = self._bind_expression(node.operand, scope)
            self._require_bool(operand, "NOT")
            return NotExpr(operand)
        if node.operator == "-":
            operand = self._bind_expression(node.operand, scope)
            if isinstance(operand, LiteralExpr):
                return LiteralExpr(-operand.value, operand.result_type)
            self._require_parameter_type(operand, "unary minus")
            zero = LiteralExpr(0.0 if operand.result_type is SQLType.FLOAT64
                               else 0, operand.result_type)
            return ArithmeticExpr("-", zero, operand, operand.result_type)
        raise BindError(f"unsupported unary operator {node.operator!r}")

    def _bind_binary(self, node: ast.BinaryOp, scope) -> TypedExpression:
        if node.operator in ("and", "or"):
            left = self._bind_expression(node.left, scope)
            right = self._bind_expression(node.right, scope)
            self._require_bool(left, node.operator.upper())
            self._require_bool(right, node.operator.upper())
            return LogicalExpr(node.operator, [left, right])

        # date +/- interval folding (only with a literal date operand)
        if node.operator in ("+", "-") and isinstance(node.right,
                                                      ast.IntervalLiteral):
            left = self._bind_expression(node.left, scope)
            if (isinstance(left, LiteralExpr)
                    and left.result_type is SQLType.DATE):
                return _shift_date_literal(left, node.right,
                                           negate=node.operator == "-")
            raise BindError("INTERVAL arithmetic requires a literal date")

        left = self._bind_expression(node.left, scope)
        right = self._bind_expression(node.right, scope)

        if node.operator in ("=", "<>", "<", "<=", ">", ">="):
            left, right = self._coerce_pair(left, right)
            return ComparisonExpr(node.operator, left, right)

        if node.operator in ("+", "-", "*", "/", "%"):
            left, right = self._coerce_pair(left, right)
            result_type = left.result_type
            if node.operator == "/" and result_type is SQLType.INT64:
                # SQL integer division keeps integer semantics here.
                result_type = SQLType.INT64
            if not result_type.is_numeric and result_type is not SQLType.DATE:
                raise BindError(
                    f"operator {node.operator!r} requires numeric operands")
            if result_type is SQLType.DATE:
                # date - date yields a day count; date + int yields a date.
                result_type = (SQLType.INT64 if node.operator == "-"
                               else SQLType.DATE)
            return ArithmeticExpr(node.operator, left, right, result_type)

        if node.operator == "||":
            raise BindError("string concatenation is not supported")
        raise BindError(f"unsupported binary operator {node.operator!r}")

    def _bind_function(self, node: ast.FunctionCall, scope) -> TypedExpression:
        name = node.name.lower()
        if name in AGGREGATE_FUNCTIONS:
            if node.is_star or not node.args:
                if name != "count":
                    raise BindError(f"{name}(*) is not valid")
                return AggregateExpr("count", None, node.distinct,
                                     SQLType.INT64)
            if len(node.args) != 1:
                raise BindError(f"aggregate {name} takes exactly one argument")
            argument = self._bind_expression(node.args[0], scope)
            self._require_parameter_type(argument, f"aggregate {name}()")
            if name == "count":
                result_type = SQLType.INT64
            elif name == "avg":
                result_type = SQLType.FLOAT64
            elif name in ("min", "max"):
                result_type = argument.result_type
            else:  # sum
                result_type = (SQLType.INT64
                               if argument.result_type is SQLType.INT64
                               else SQLType.FLOAT64)
            if name in ("sum", "avg") and not argument.result_type.is_numeric:
                raise BindError(f"{name} requires a numeric argument")
            return AggregateExpr(name, argument, node.distinct, result_type)
        if name == "year":
            if len(node.args) != 1:
                raise BindError("year() takes exactly one argument")
            operand = self._bind_expression(node.args[0], scope)
            if isinstance(operand, ParameterExpr) \
                    and operand.result_type is None:
                self._set_parameter_type(operand, SQLType.DATE)
            if operand.result_type is not SQLType.DATE:
                raise BindError("year() requires a DATE argument")
            return ExtractExpr(field_name="year", operand=operand)
        raise BindError(f"unknown function {node.name!r}")

    def _bind_case(self, node: ast.CaseWhen, scope) -> TypedExpression:
        branches = []
        result_type: Optional[SQLType] = None
        for condition, value in node.branches:
            bound_cond = self._bind_expression(condition, scope)
            self._require_bool(bound_cond, "CASE WHEN condition")
            bound_value = self._bind_expression(value, scope)
            branches.append((bound_cond, bound_value))
            result_type = result_type or bound_value.result_type
        default = (self._bind_expression(node.default, scope)
                   if node.default is not None else None)
        if result_type is None and default is not None:
            result_type = default.result_type
        if result_type is None:
            raise ParameterError(
                "cannot infer the CASE result type from parameters alone")
        if default is None:
            default = LiteralExpr(
                0.0 if result_type is SQLType.FLOAT64 else 0, result_type)
        # Harmonise branch types (int vs float).
        target = result_type
        for _, value in branches + [(None, default)]:
            if value.result_type is SQLType.FLOAT64:
                target = SQLType.FLOAT64
        for _, value in branches + [(None, default)]:
            if isinstance(value, ParameterExpr):
                self._infer_parameter_from(value, target)
        branches = [(c, self._cast_to(v, target)) for c, v in branches]
        default = self._cast_to(default, target)
        return CaseExpr(branches=branches, default=default, result_type=target)

    def _bind_cast(self, node: ast.Cast, scope) -> TypedExpression:
        operand = self._bind_expression(node.expr, scope)
        target = {"int": SQLType.INT64, "integer": SQLType.INT64,
                  "bigint": SQLType.INT64, "float": SQLType.FLOAT64,
                  "double": SQLType.FLOAT64,
                  "decimal": SQLType.FLOAT64}.get(node.type_name.lower())
        if target is None:
            raise BindError(f"unsupported CAST target {node.type_name!r}")
        if isinstance(operand, ParameterExpr) and operand.result_type is None:
            self._set_parameter_type(operand, target)
        return self._cast_to(operand, target)

    # ------------------------------------------------------------------ #
    # coercion
    # ------------------------------------------------------------------ #
    def _cast_to(self, expr: TypedExpression,
                 target: SQLType) -> TypedExpression:
        if expr.result_type is target:
            return expr
        if isinstance(expr, LiteralExpr):
            if target is SQLType.FLOAT64:
                return LiteralExpr(float(expr.value), target)
            if target is SQLType.INT64:
                return LiteralExpr(int(expr.value), target)
        return CastExpr(operand=expr, result_type=target)

    def _coerce(self, value: TypedExpression,
                reference: TypedExpression) -> TypedExpression:
        """Coerce ``value`` (usually a literal) to ``reference``'s type."""
        target = reference.result_type
        if isinstance(value, ParameterExpr):
            self._infer_parameter_from(value, target)
        if value.result_type is target:
            return value
        if isinstance(value, LiteralExpr):
            if target is SQLType.DATE and isinstance(value.value, str):
                return LiteralExpr(date_to_days(value.value), SQLType.DATE)
            if target is SQLType.FLOAT64:
                return LiteralExpr(float(value.value), target)
            if target is SQLType.INT64 and value.result_type is SQLType.FLOAT64:
                return LiteralExpr(value.value, SQLType.FLOAT64)
            if target is SQLType.STRING:
                return LiteralExpr(str(value.value), target)
        if target is SQLType.FLOAT64 and value.result_type is SQLType.INT64:
            return CastExpr(operand=value, result_type=SQLType.FLOAT64)
        return value

    def _coerce_pair(self, left: TypedExpression, right: TypedExpression
                     ) -> tuple[TypedExpression, TypedExpression]:
        left_param = isinstance(left, ParameterExpr)
        right_param = isinstance(right, ParameterExpr)
        if left_param and right_param:
            if left.result_type is None and right.result_type is None:
                raise ParameterError(
                    f"cannot infer the types of parameters "
                    f"{self._param_label(left.index)} and "
                    f"{self._param_label(right.index)} combined with each "
                    f"other")
            if left.result_type is None:
                self._infer_parameter_from(left, right.result_type)
            else:
                self._infer_parameter_from(right, left.result_type)
        elif left_param:
            self._infer_parameter_from(left, right.result_type)
        elif right_param:
            self._infer_parameter_from(right, left.result_type)

        lt, rt = left.result_type, right.result_type
        if lt is rt:
            return left, right
        # string literal compared against a date column (or vice versa)
        if lt is SQLType.DATE and rt is SQLType.STRING and \
                isinstance(right, LiteralExpr):
            return left, LiteralExpr(date_to_days(right.value), SQLType.DATE)
        if rt is SQLType.DATE and lt is SQLType.STRING and \
                isinstance(left, LiteralExpr):
            return LiteralExpr(date_to_days(left.value), SQLType.DATE), right
        # int vs float -> float
        if lt is SQLType.FLOAT64 and rt is SQLType.INT64:
            return left, self._cast_to(right, SQLType.FLOAT64)
        if lt is SQLType.INT64 and rt is SQLType.FLOAT64:
            return self._cast_to(left, SQLType.FLOAT64), right
        # date vs int (date arithmetic results)
        if lt is SQLType.DATE and rt is SQLType.INT64:
            return left, right
        if lt is SQLType.INT64 and rt is SQLType.DATE:
            return left, right
        if SQLType.BOOL in (lt, rt) and {lt, rt} <= {SQLType.BOOL,
                                                     SQLType.INT64}:
            return left, right
        raise BindError(f"cannot compare/combine {lt} with {rt}")


# --------------------------------------------------------------------------- #
# scope and literals
# --------------------------------------------------------------------------- #
class _Scope:
    """Column resolution scope over the FROM-clause bindings."""

    def __init__(self, bindings: list[TableBinding]):
        self.bindings = bindings
        self._by_name = {binding.name: binding for binding in bindings}

    def column(self, binding_name: str, column_name: str) -> ColumnExpr:
        binding = self._by_name[binding_name]
        column = binding.table.schema.column(column_name)
        result_type = (SQLType.FLOAT64 if column.sql_type is SQLType.DECIMAL
                       else column.sql_type)
        return ColumnExpr(binding=binding_name, column=column.name,
                          result_type=result_type,
                          storage_type=column.sql_type)

    def resolve(self, ref: ast.ColumnRef) -> ColumnExpr:
        if ref.table is not None:
            binding = self._by_name.get(ref.table.lower())
            if binding is None:
                raise BindError(f"unknown table alias {ref.table!r}")
            if not binding.table.schema.has_column(ref.name):
                raise BindError(
                    f"table {binding.table_name!r} has no column {ref.name!r}")
            return self.column(binding.name, ref.name)
        matches = [binding for binding in self.bindings
                   if binding.table.schema.has_column(ref.name)]
        if not matches:
            raise BindError(f"unknown column {ref.name!r}")
        if len(matches) > 1:
            names = ", ".join(binding.name for binding in matches)
            raise BindError(f"column {ref.name!r} is ambiguous ({names})")
        return self.column(matches[0].name, ref.name)


def _natural_hint_type(value) -> Optional[SQLType]:
    """The SQL type a raw auto-parameterization hint value naturally has."""
    if isinstance(value, bool):
        return SQLType.BOOL
    if isinstance(value, int):
        return SQLType.INT64
    if isinstance(value, float):
        return SQLType.FLOAT64
    if isinstance(value, str):
        return SQLType.STRING
    return None


def _bind_literal(node: ast.Literal) -> LiteralExpr:
    if node.kind == "int":
        return LiteralExpr(int(node.value), SQLType.INT64)
    if node.kind == "float":
        return LiteralExpr(float(node.value), SQLType.FLOAT64)
    if node.kind == "bool":
        return LiteralExpr(1 if node.value else 0, SQLType.BOOL)
    if node.kind == "date":
        return LiteralExpr(date_to_days(node.value), SQLType.DATE)
    return LiteralExpr(str(node.value), SQLType.STRING)


def _shift_date_literal(literal: LiteralExpr, interval: ast.IntervalLiteral,
                        negate: bool) -> LiteralExpr:
    from ..types import days_to_date

    amount = -interval.value if negate else interval.value
    date = days_to_date(literal.value)
    if interval.unit == "day":
        shifted = date + _dt.timedelta(days=amount)
    else:
        months = amount * (12 if interval.unit == "year" else 1)
        total = date.year * 12 + (date.month - 1) + months
        year, month = divmod(total, 12)
        day = min(date.day, _days_in_month(year, month + 1))
        shifted = _dt.date(year, month + 1, day)
    return LiteralExpr(date_to_days(shifted), SQLType.DATE)


def _days_in_month(year: int, month: int) -> int:
    if month == 12:
        return 31
    return (_dt.date(year, month + 1, 1) - _dt.date(year, month, 1)).days


def _default_output_name(node: ast.Expression, index: int) -> str:
    if isinstance(node, ast.ColumnRef):
        return node.name
    if isinstance(node, ast.FunctionCall):
        return node.name
    return f"col{index}"
