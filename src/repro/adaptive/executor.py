"""Adaptive and static multi-threaded query executors.

:class:`AdaptiveExecutor` implements the paper's execution loop: every
pipeline starts on all worker threads in the bytecode interpreter, progress
is tracked per morsel, and the Fig. 7 policy decides when to compile the
pipeline's worker function.  With more than one worker thread the compilation
runs on a background thread while the other threads keep interpreting; with a
single thread the compilation happens synchronously (matching the w=1 case of
the extrapolation formula).

:class:`StaticParallelExecutor` executes a query with one fixed tier chosen
up front: all worker functions are compiled first (single-threaded -- the
paper's point about idle cores during compilation), then the pipelines run
morsel-parallel.

Note on parallelism: CPython's GIL prevents real speedups for the
pure-Python interpreters, so wall-clock numbers from these executors do not
scale with the thread count.  They are functionally faithful (work stealing,
seamless mode switches, no lost work) and are used by the tests and examples;
the paper's multi-threaded *timing* experiments use the virtual-time
simulator in :mod:`repro.adaptive.simulation` instead (see DESIGN.md).
"""

from __future__ import annotations

import threading
import time
from typing import Optional

from ..backend.cost_model import CostModel, default_cost_model
from ..codegen import GeneratedPipeline, GeneratedQuery
from ..engine import PhaseTimings, PipelineExecution, QueryResult
from ..errors import AdaptiveError
from ..optimizer import PlanningResult
from .modes import ExecutionMode, FunctionHandle
from .morsel import MorselDispatcher
from .policy import AdaptivePolicy, Decision
from .progress import PipelineProgress
from .trace import ExecutionTrace, TraceEvent

#: Initial morsel size for adaptive execution (grows towards the maximum),
#: giving the policy early sample points as described in the paper.
INITIAL_MORSEL_SIZE = 1024


class AdaptiveExecutor:
    """Executes a generated query with per-pipeline adaptive mode switching."""

    def __init__(self, database, num_threads: int = 1,
                 collect_trace: bool = False,
                 cost_model: Optional[CostModel] = None,
                 policy: Optional[AdaptivePolicy] = None,
                 handles: Optional[dict[int, FunctionHandle]] = None):
        self.database = database
        self.num_threads = max(num_threads, 1)
        self.collect_trace = collect_trace
        self.cost_model = cost_model or default_cost_model()
        self.policy = policy or AdaptivePolicy(self.cost_model)
        #: Optional shared ``pipeline index -> FunctionHandle`` map.  A
        #: prepared query passes its own dict here so bytecode translations
        #: and compiled tiers survive across executions (the compile work is
        #: paid once, later runs start in the best tier already reached).
        self.handles = handles

    # ------------------------------------------------------------------ #
    def execute(self, generated: GeneratedQuery, planning: PlanningResult,
                timings: PhaseTimings) -> QueryResult:
        trace = ExecutionTrace(label="adaptive")
        query_start = time.perf_counter()
        pipeline_stats: list[PipelineExecution] = []

        for index, pipeline in enumerate(generated.pipelines):
            stats = self._run_pipeline(index, pipeline, generated, trace,
                                       query_start, timings)
            pipeline_stats.append(stats)

        return self.database._assemble_result(
            generated, planning, timings, "adaptive", pipeline_stats,
            trace=trace if self.collect_trace else None)

    # ------------------------------------------------------------------ #
    def _run_pipeline(self, index: int, pipeline: GeneratedPipeline,
                      generated: GeneratedQuery, trace: ExecutionTrace,
                      query_start: float,
                      timings: PhaseTimings) -> PipelineExecution:
        rows = generated.state.source_row_count(pipeline.pipeline)
        handle = self.handles.get(index) if self.handles is not None else None
        if handle is None:
            handle = FunctionHandle(pipeline.function, vm=self.database._vm)
            timings.compile += handle.bytecode_seconds
            if self.handles is not None:
                self.handles[index] = handle

        progress = PipelineProgress(rows, self.num_threads)
        dispatcher = MorselDispatcher(
            rows, morsel_size=self.database.morsel_size,
            initial_size=min(INITIAL_MORSEL_SIZE,
                             self.database.morsel_size))
        decision_lock = threading.Lock()
        compile_threads: list[threading.Thread] = []
        #: Wall-clock seconds of finished background compilations.  Appended
        #: from the compiler threads (list.append is atomic under the GIL)
        #: and summed into ``timings.compile`` after they are joined, so the
        #: multi-threaded path accounts compilation exactly like the
        #: synchronous w=1 path does.
        background_compile_seconds: list[float] = []
        pipeline_start = time.perf_counter()

        def maybe_switch(now: float, thread_id: int) -> None:
            """Evaluate the policy (single evaluator at a time, paper III-C)."""
            if not decision_lock.acquire(blocking=False):
                return
            try:
                if handle.compiling is not None:
                    return
                current = handle.mode
                if current is ExecutionMode.OPTIMIZED:
                    return
                evaluation = self.policy.evaluate(
                    progress, current, handle.instruction_count,
                    active_workers=self.num_threads,
                    elapsed_seconds=now - pipeline_start)
                target = evaluation.decision.target_mode
                if target is None or handle.is_compiled(target):
                    return
                if self.num_threads == 1:
                    # Single worker: compile synchronously (w=1 in Fig. 7).
                    compile_start = time.perf_counter()
                    handle.compile(target)
                    compile_end = time.perf_counter()
                    trace.add(TraceEvent(thread_id,
                                         compile_start - query_start,
                                         compile_end - query_start,
                                         "compile", pipeline.name,
                                         target.tier_name))
                    timings.compile += compile_end - compile_start
                    progress.reset_rates()
                    return

                def compile_job():
                    compile_start = time.perf_counter()
                    handle.compile(target)
                    compile_end = time.perf_counter()
                    trace.add(TraceEvent(self.num_threads,  # compiler thread
                                         compile_start - query_start,
                                         compile_end - query_start,
                                         "compile", pipeline.name,
                                         target.tier_name))
                    background_compile_seconds.append(
                        compile_end - compile_start)
                    progress.reset_rates()

                # Mark the handle as compiling *before* releasing the decision
                # lock: ``handle.compile`` only sets the marker once the
                # background thread is scheduled, so without this a second
                # evaluation in that window would spawn a duplicate compile
                # thread for the same target.
                handle.compiling = target
                job = threading.Thread(target=compile_job,
                                       name=f"compile-{pipeline.name}",
                                       daemon=True)
                compile_threads.append(job)
                job.start()
            finally:
                decision_lock.release()

        def worker_loop(thread_id: int) -> None:
            while True:
                morsel = dispatcher.next_morsel()
                if morsel is None:
                    return
                executable, mode = handle.executable()
                start = time.perf_counter()
                executable(None, morsel.begin, morsel.end)
                end = time.perf_counter()
                progress.record_morsel(thread_id, morsel.size, end - start)
                trace.add(TraceEvent(thread_id, start - query_start,
                                     end - query_start, "morsel",
                                     pipeline.name, mode.tier_name,
                                     morsel.size))
                maybe_switch(end, thread_id)

        if rows > 0:
            if self.num_threads == 1:
                worker_loop(0)
            else:
                threads = [threading.Thread(target=worker_loop, args=(i,),
                                            name=f"worker-{i}")
                           for i in range(self.num_threads)]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()
        for job in compile_threads:
            job.join()
        timings.compile += sum(background_compile_seconds)

        if pipeline.finish is not None:
            pipeline.finish()
        elapsed = time.perf_counter() - pipeline_start
        timings.execution += elapsed

        mode_history: list[str] = []
        for event in trace.events:
            if event.pipeline == pipeline.name and event.kind == "morsel":
                if not mode_history or mode_history[-1] != event.mode:
                    mode_history.append(event.mode)
        return PipelineExecution(
            name=pipeline.name, rows=rows,
            morsels=dispatcher.dispatched, seconds=elapsed,
            mode_history=mode_history or ["bytecode"],
            ir_instructions=pipeline.function.instruction_count())


class StaticParallelExecutor:
    """Morsel-parallel execution with a single, statically chosen tier."""

    def __init__(self, database, mode: str, num_threads: int = 1,
                 collect_trace: bool = False,
                 tiers: Optional[dict] = None):
        if mode not in ("bytecode", "unoptimized", "optimized", "ir-interp"):
            raise AdaptiveError(f"unsupported static tier {mode!r}")
        self.database = database
        self.mode = mode
        self.num_threads = max(num_threads, 1)
        self.collect_trace = collect_trace
        #: Optional shared ``(pipeline index, mode) -> executable`` tier
        #: cache, provided by a prepared query (see engine._tier_for).
        self.tiers = tiers

    def execute(self, generated: GeneratedQuery, planning: PlanningResult,
                timings: PhaseTimings) -> QueryResult:
        trace = ExecutionTrace(label=self.mode)
        query_start = time.perf_counter()
        pipeline_stats: list[PipelineExecution] = []

        # Up-front, single-threaded compilation of every worker function --
        # while this runs, all worker threads are idle (paper Section II-A).
        executables = []
        for index, pipeline in enumerate(generated.pipelines):
            executable, compile_seconds = self.database._tier_for(
                pipeline.function, index, self.mode, self.tiers)
            timings.compile += compile_seconds
            executables.append(executable)

        for pipeline, executable in zip(generated.pipelines, executables):
            rows = generated.state.source_row_count(pipeline.pipeline)
            dispatcher = MorselDispatcher(rows,
                                          morsel_size=self.database.morsel_size)
            pipeline_start = time.perf_counter()

            def worker_loop(thread_id: int) -> None:
                while True:
                    morsel = dispatcher.next_morsel()
                    if morsel is None:
                        return
                    start = time.perf_counter()
                    executable(None, morsel.begin, morsel.end)
                    end = time.perf_counter()
                    trace.add(TraceEvent(thread_id, start - query_start,
                                         end - query_start, "morsel",
                                         pipeline.name, self.mode,
                                         morsel.size))

            if rows > 0:
                if self.num_threads == 1:
                    worker_loop(0)
                else:
                    threads = [threading.Thread(target=worker_loop, args=(i,))
                               for i in range(self.num_threads)]
                    for thread in threads:
                        thread.start()
                    for thread in threads:
                        thread.join()
            if pipeline.finish is not None:
                pipeline.finish()
            elapsed = time.perf_counter() - pipeline_start
            timings.execution += elapsed
            pipeline_stats.append(PipelineExecution(
                name=pipeline.name, rows=rows,
                morsels=dispatcher.dispatched, seconds=elapsed,
                mode_history=[self.mode],
                ir_instructions=pipeline.function.instruction_count()))

        return self.database._assemble_result(
            generated, planning, timings, self.mode, pipeline_stats,
            trace=trace if self.collect_trace else None)
