"""Adaptive and static multi-threaded query executors.

:class:`AdaptiveExecutor` implements the paper's execution loop: every
pipeline starts on all worker threads in the bytecode interpreter, progress
is tracked per morsel, and the Fig. 7 policy decides when to compile the
pipeline's worker function.  With more than one worker the compilation runs
on the database's shared compile thread while the workers keep
interpreting; with a single thread the compilation happens synchronously
(matching the w=1 case of the extrapolation formula).

:class:`StaticParallelExecutor` executes a query with one fixed tier chosen
up front: all worker functions are compiled first (single-threaded -- the
paper's point about idle cores during compilation), then the pipelines run
morsel-parallel.

Neither executor spawns threads of its own: parallel runs feed their
morsels through a :class:`repro.scheduler.MorselSource` into the database's
shared :class:`repro.scheduler.WorkerPool` (the calling thread
participates, capped at ``num_threads`` concurrent workers per pipeline),
so any number of concurrent queries share one bounded set of threads and
their morsels interleave fairly; background compilations funnel through
the database's shared :class:`repro.scheduler.CompileExecutor`.

Note on parallelism: CPython's GIL prevents real speedups for the
pure-Python interpreters, so wall-clock numbers from these executors do not
scale with the thread count.  They are functionally faithful (work stealing,
seamless mode switches, no lost work) and are used by the tests and examples;
the paper's multi-threaded *timing* experiments use the virtual-time
simulator in :mod:`repro.adaptive.simulation` instead (see DESIGN.md).
"""

from __future__ import annotations

import sys
import threading
import time
import traceback
from typing import Optional

from ..backend.cost_model import CostModel, default_cost_model
from ..codegen import GeneratedPipeline, GeneratedQuery
from ..codegen.runtime import BreakerRun
from ..engine import PhaseTimings, PipelineExecution, QueryResult
from ..errors import AdaptiveError
from ..optimizer import PlanningResult
from ..plan.sargs import plan_pipeline_scan
from .modes import ExecutionMode, FunctionHandle
from .morsel import MorselDispatcher
from .policy import AdaptivePolicy, Decision
from .progress import PipelineProgress
from .trace import QueryTrace, TraceEvent

#: Initial morsel size for adaptive execution (grows towards the maximum),
#: giving the policy early sample points as described in the paper.
INITIAL_MORSEL_SIZE = 1024


def _merge_task_runner(database, num_threads: int):
    """How a pipeline's per-partition merge tasks run.

    Single-threaded executions merge on the calling thread; parallel
    executions feed the tasks through the shared worker pool as one-index
    morsels, bounded by the query's thread cap like any other work.
    """
    if num_threads <= 1:
        return None

    def run_tasks(tasks):
        if len(tasks) <= 1:
            for task in tasks:
                task()
            return
        dispatcher = MorselDispatcher.for_tasks(len(tasks))
        database.worker_pool.run_morsels(
            dispatcher, lambda slot, morsel: tasks[morsel.begin](),
            max_workers=min(num_threads, len(tasks)))
    return run_tasks


def _report_compile_failure(future, pipeline_name: str) -> None:
    """Surface a failed background compilation on stderr.

    Execution is unaffected (the pipeline keeps running in its current
    tier), matching the pre-pool behaviour where the dedicated compile
    thread died and ``threading``'s excepthook printed the traceback.
    """
    exc = future.exception()
    if exc is not None:
        print(f"repro: background compilation of pipeline "
              f"{pipeline_name!r} failed:", file=sys.stderr)
        traceback.print_exception(type(exc), exc, exc.__traceback__,
                                  file=sys.stderr)


class AdaptiveExecutor:
    """Executes a generated query with per-pipeline adaptive mode switching."""

    def __init__(self, database, num_threads: int = 1,
                 collect_trace: bool = False,
                 cost_model: Optional[CostModel] = None,
                 policy: Optional[AdaptivePolicy] = None,
                 handles: Optional[dict[int, FunctionHandle]] = None,
                 use_pruning: bool = True,
                 verify_ir: Optional[bool] = None):
        self.database = database
        self.num_threads = max(num_threads, 1)
        self.collect_trace = collect_trace
        self.use_pruning = use_pruning
        self.verify_ir = verify_ir
        self.cost_model = cost_model or default_cost_model()
        self.policy = policy or AdaptivePolicy(self.cost_model)
        #: Optional shared ``pipeline index -> FunctionHandle`` map.  A
        #: prepared query passes its own dict here so bytecode translations
        #: and compiled tiers survive across executions (the compile work is
        #: paid once, later runs start in the best tier already reached).
        self.handles = handles

    # ------------------------------------------------------------------ #
    def execute(self, generated: GeneratedQuery, planning: PlanningResult,
                timings: PhaseTimings) -> QueryResult:
        # Tier-switch events are recorded unconditionally (they are rare);
        # the per-morsel event stream only at ``collect_trace``.
        trace = QueryTrace(label="adaptive", mode="adaptive")
        query_start = time.perf_counter()
        pipeline_stats: list[PipelineExecution] = []

        for index, pipeline in enumerate(generated.pipelines):
            stats = self._run_pipeline(index, pipeline, generated, trace,
                                       query_start, timings)
            pipeline_stats.append(stats)

        return self.database._assemble_result(
            generated, planning, timings, "adaptive", pipeline_stats,
            trace=trace if self.collect_trace else None,
            query_trace=trace)

    # ------------------------------------------------------------------ #
    def _run_pipeline(self, index: int, pipeline: GeneratedPipeline,
                      generated: GeneratedQuery, trace: QueryTrace,
                      query_start: float,
                      timings: PhaseTimings) -> PipelineExecution:
        total_rows = generated.state.source_row_count(pipeline.pipeline)
        scan = plan_pipeline_scan(pipeline.pipeline, total_rows,
                                  generated.state.params,
                                  use_pruning=self.use_pruning)
        timings.chunks_pruned += scan.chunks_pruned
        timings.chunks_scanned += scan.chunks_scanned
        rows = scan.rows_to_scan
        handle = self.handles.get(index) if self.handles is not None else None
        if handle is None:
            handle = FunctionHandle(pipeline.function, vm=self.database._vm,
                                    verify_ir=self.verify_ir)
            timings.compile += handle.bytecode_seconds
            if self.handles is not None:
                self.handles[index] = handle

        progress = PipelineProgress(rows, self.num_threads)
        dispatcher = MorselDispatcher(
            morsel_size=self.database.morsel_size,
            initial_size=min(INITIAL_MORSEL_SIZE,
                             self.database.morsel_size),
            ranges=scan.ranges)
        # ``threads=N`` is a cap on this query's pool share, not a spawn
        # count: no more than pool size + 1 (the driving thread) workers can
        # actually run morsels, and the Fig. 7 extrapolation must not assume
        # parallelism beyond that.
        if self.num_threads == 1:
            effective_workers = 1
        else:
            effective_workers = min(self.num_threads,
                                    self.database.worker_pool.size + 1)
        decision_lock = threading.Lock()
        compile_futures: list = []
        #: Wall-clock seconds of finished background compilations.  Appended
        #: from the shared compile thread (list.append is atomic under the
        #: GIL) and summed into ``timings.compile`` after the futures are
        #: awaited, so the multi-threaded path accounts compilation exactly
        #: like the synchronous w=1 path does.
        background_compile_seconds: list[float] = []
        pipeline_start = time.perf_counter()

        def maybe_switch(now: float, thread_id: int) -> None:
            """Evaluate the policy (single evaluator at a time, paper III-C)."""
            if not decision_lock.acquire(blocking=False):
                return
            try:
                if handle.compiling is not None:
                    return
                current = handle.mode
                if current is ExecutionMode.OPTIMIZED:
                    return
                evaluation = self.policy.evaluate(
                    progress, current, handle.instruction_count,
                    active_workers=effective_workers,
                    elapsed_seconds=now - pipeline_start)
                target = evaluation.decision.target_mode
                if target is None or handle.is_compiled(target):
                    return
                # Why the policy chose to switch, attached to the trace event
                # below (the paper's Fig. 7 extrapolation inputs verbatim).
                trigger = {
                    "decision": evaluation.decision.value,
                    "keep_seconds": evaluation.keep_seconds,
                    "unoptimized_seconds": evaluation.unoptimized_seconds,
                    "optimized_seconds": evaluation.optimized_seconds,
                    "rate": evaluation.rate,
                    "processed_tuples": progress.processed_tuples,
                    "remaining_tuples": progress.remaining_tuples,
                    "workers": effective_workers,
                    "elapsed_seconds": now - pipeline_start,
                }
                if self.num_threads == 1:
                    # Single worker: compile synchronously (w=1 in Fig. 7).
                    compile_start = time.perf_counter()
                    handle.compile(target)
                    compile_end = time.perf_counter()
                    trace.add(TraceEvent(thread_id,
                                         compile_start - query_start,
                                         compile_end - query_start,
                                         "compile", pipeline.name,
                                         target.tier_name))
                    trace.record_tier_switch(
                        pipeline.name, current.tier_name, target.tier_name,
                        at=compile_end - query_start, synchronous=True,
                        trigger=trigger)
                    timings.compile += compile_end - compile_start
                    progress.reset_rates()
                    return

                def compile_job():
                    compile_start = time.perf_counter()
                    handle.compile(target)
                    compile_end = time.perf_counter()
                    trace.add(TraceEvent(self.num_threads,  # compiler thread
                                         compile_start - query_start,
                                         compile_end - query_start,
                                         "compile", pipeline.name,
                                         target.tier_name))
                    trace.record_tier_switch(
                        pipeline.name, current.tier_name, target.tier_name,
                        at=compile_end - query_start, synchronous=False,
                        trigger=trigger)
                    background_compile_seconds.append(
                        compile_end - compile_start)
                    progress.reset_rates()

                # Mark the handle as compiling *before* releasing the decision
                # lock: ``handle.compile`` only sets the marker once the
                # compile thread picks the job up, so without this a second
                # evaluation in that window would queue a duplicate compile
                # job for the same target.
                handle.compiling = target
                compile_futures.append(
                    self.database.compile_executor.submit(compile_job))
            finally:
                decision_lock.release()

        # Per-worker-slot breaker partials: the context rides into the
        # generated code as the worker function's ``state`` argument, so a
        # mid-pipeline tier switch keeps filling the same slot partials.
        breaker = BreakerRun(generated.state, pipeline.pipeline,
                             max_slots=self.num_threads)

        state = generated.state

        def run_morsel(slot: int, morsel) -> None:
            executable, mode = handle.executable()
            start = time.perf_counter()
            executable(breaker.context(slot), morsel.begin, morsel.end)
            end = time.perf_counter()
            progress.record_morsel(slot, morsel.size, end - start)
            trace.add(TraceEvent(slot, start - query_start,
                                 end - query_start, "morsel",
                                 pipeline.name, mode.tier_name,
                                 morsel.size))
            if state.limit_satisfied():
                state.early_terminated = True
                dispatcher.cancel()
            maybe_switch(end, slot)

        if rows > 0:
            if self.num_threads == 1:
                morsel = dispatcher.next_morsel()
                while morsel is not None:
                    run_morsel(0, morsel)
                    morsel = dispatcher.next_morsel()
            else:
                # Shared-pool execution: the pool workers and this thread
                # pull morsels together, at most ``num_threads`` at a time.
                self.database.worker_pool.run_morsels(
                    dispatcher, run_morsel, max_workers=self.num_threads)
        for future in compile_futures:
            future.wait()
            _report_compile_failure(future, pipeline.name)
        timings.compile += sum(background_compile_seconds)

        merge_stats = breaker.merge(
            _merge_task_runner(self.database, self.num_threads))
        if pipeline.finish is not None:
            pipeline.finish()
        elapsed = time.perf_counter() - pipeline_start
        timings.execution += elapsed
        timings.breaker_partitions = max(timings.breaker_partitions,
                                         merge_stats.partitions)
        timings.breaker_partials += merge_stats.partial_entries
        timings.breaker_merge += merge_stats.merge_seconds

        mode_history: list[str] = []
        for event in trace.events:
            if event.pipeline == pipeline.name and event.kind == "morsel":
                if not mode_history or mode_history[-1] != event.mode:
                    mode_history.append(event.mode)
        return PipelineExecution(
            name=pipeline.name, rows=rows,
            morsels=dispatcher.dispatched, seconds=elapsed,
            mode_history=mode_history or ["bytecode"],
            ir_instructions=pipeline.function.instruction_count(),
            breaker_partitions=merge_stats.partitions,
            breaker_partial_entries=merge_stats.partial_entries,
            merge_seconds=merge_stats.merge_seconds)


class StaticParallelExecutor:
    """Morsel-parallel execution with a single, statically chosen tier."""

    def __init__(self, database, mode: str, num_threads: int = 1,
                 collect_trace: bool = False,
                 tiers: Optional[dict] = None,
                 use_pruning: bool = True,
                 verify_ir: Optional[bool] = None):
        if mode not in ("bytecode", "unoptimized", "optimized", "ir-interp"):
            raise AdaptiveError(f"unsupported static tier {mode!r}")
        self.database = database
        self.mode = mode
        self.num_threads = max(num_threads, 1)
        self.collect_trace = collect_trace
        self.use_pruning = use_pruning
        self.verify_ir = verify_ir
        #: Optional shared ``(pipeline index, mode) -> executable`` tier
        #: cache, provided by a prepared query (see engine._tier_for).
        self.tiers = tiers

    def execute(self, generated: GeneratedQuery, planning: PlanningResult,
                timings: PhaseTimings) -> QueryResult:
        trace = QueryTrace(label=self.mode, mode=self.mode)
        query_start = time.perf_counter()
        pipeline_stats: list[PipelineExecution] = []

        # Up-front, single-threaded compilation of every worker function --
        # while this runs, all worker threads are idle (paper Section II-A).
        executables = []
        for index, pipeline in enumerate(generated.pipelines):
            executable, compile_seconds = self.database._tier_for(
                pipeline.function, index, self.mode, self.tiers,
                verify_ir=self.verify_ir)
            timings.compile += compile_seconds
            executables.append(executable)

        for pipeline, executable in zip(generated.pipelines, executables):
            total_rows = generated.state.source_row_count(pipeline.pipeline)
            scan = plan_pipeline_scan(pipeline.pipeline, total_rows,
                                      generated.state.params,
                                      use_pruning=self.use_pruning)
            timings.chunks_pruned += scan.chunks_pruned
            timings.chunks_scanned += scan.chunks_scanned
            rows = scan.rows_to_scan
            dispatcher = MorselDispatcher(morsel_size=self.database.morsel_size,
                                          ranges=scan.ranges)
            breaker = BreakerRun(generated.state, pipeline.pipeline,
                                 max_slots=self.num_threads)
            pipeline_start = time.perf_counter()

            state = generated.state

            def run_morsel(slot: int, morsel, executable=executable,
                           pipeline=pipeline, breaker=breaker,
                           dispatcher=dispatcher) -> None:
                start = time.perf_counter()
                executable(breaker.context(slot), morsel.begin, morsel.end)
                end = time.perf_counter()
                trace.add(TraceEvent(slot, start - query_start,
                                     end - query_start, "morsel",
                                     pipeline.name, self.mode,
                                     morsel.size))
                if state.limit_satisfied():
                    state.early_terminated = True
                    dispatcher.cancel()

            if rows > 0:
                if self.num_threads == 1:
                    morsel = dispatcher.next_morsel()
                    while morsel is not None:
                        run_morsel(0, morsel)
                        morsel = dispatcher.next_morsel()
                else:
                    self.database.worker_pool.run_morsels(
                        dispatcher, run_morsel,
                        max_workers=self.num_threads)
            merge_stats = breaker.merge(
                _merge_task_runner(self.database, self.num_threads))
            if pipeline.finish is not None:
                pipeline.finish()
            elapsed = time.perf_counter() - pipeline_start
            timings.execution += elapsed
            timings.breaker_partitions = max(timings.breaker_partitions,
                                             merge_stats.partitions)
            timings.breaker_partials += merge_stats.partial_entries
            timings.breaker_merge += merge_stats.merge_seconds
            pipeline_stats.append(PipelineExecution(
                name=pipeline.name, rows=rows,
                morsels=dispatcher.dispatched, seconds=elapsed,
                mode_history=[self.mode],
                ir_instructions=pipeline.function.instruction_count(),
                breaker_partitions=merge_stats.partitions,
                breaker_partial_entries=merge_stats.partial_entries,
                merge_seconds=merge_stats.merge_seconds))

        return self.database._assemble_result(
            generated, planning, timings, self.mode, pipeline_stats,
            trace=trace if self.collect_trace else None,
            query_trace=trace)
