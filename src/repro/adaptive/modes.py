"""Execution modes and the per-pipeline function handle (paper Fig. 5).

The :class:`FunctionHandle` is the indirection the paper introduces: instead
of calling a worker function through a fixed pointer, every morsel goes
through the handle, which holds all available variants of the function
(bytecode, unoptimized machine code, optimized machine code) and always
dispatches to the fastest one.  Switching execution modes is a single
assignment, so all worker threads pick up the new variant with their next
morsel.
"""

from __future__ import annotations

import enum
import threading
import time
from dataclasses import dataclass
from typing import Callable, Optional

from ..backend import compile_function
from ..errors import AdaptiveError
from ..ir.function import Function
from ..vm import BytecodeFunction, VirtualMachine, translate_function


class ExecutionMode(enum.IntEnum):
    """The three execution modes, ordered by throughput."""

    BYTECODE = 0
    UNOPTIMIZED = 1
    OPTIMIZED = 2

    @property
    def tier_name(self) -> str:
        return self.name.lower()

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.tier_name


class FunctionHandle:
    """Holds every available variant of one pipeline worker function."""

    def __init__(self, function: Function,
                 vm: Optional[VirtualMachine] = None,
                 verify_ir: Optional[bool] = None):
        self.function = function
        self.vm = vm or VirtualMachine()
        from ..analysis import verify_ir_enabled
        self.verify = verify_ir_enabled(verify_ir)
        self._lock = threading.Lock()
        #: Serializes compilations of this handle so that two concurrent
        #: ``compile`` calls can never translate the same tier twice.
        self._compile_lock = threading.Lock()

        start = time.perf_counter()
        self._bytecode, self._translation_stats = translate_function(function)
        if self.verify:
            from ..analysis import verify_bytecode
            verify_bytecode(self._bytecode)
        self.bytecode_seconds = time.perf_counter() - start

        self._compiled: dict[ExecutionMode, Callable] = {}
        self._compile_seconds: dict[ExecutionMode, float] = {
            ExecutionMode.BYTECODE: self.bytecode_seconds}
        self._current_mode = ExecutionMode.BYTECODE
        self._current: Callable = self._make_bytecode_callable()
        self.compiling: Optional[ExecutionMode] = None

    # ------------------------------------------------------------------ #
    def _make_bytecode_callable(self) -> Callable:
        bytecode = self._bytecode
        vm = self.vm

        def run(state, begin, end):
            vm.execute(bytecode, [state, begin, end])
        return run

    # ------------------------------------------------------------------ #
    @property
    def mode(self) -> ExecutionMode:
        return self._current_mode

    @property
    def bytecode(self) -> BytecodeFunction:
        return self._bytecode

    @property
    def instruction_count(self) -> int:
        return self.function.instruction_count()

    def compile_seconds(self, mode: ExecutionMode) -> Optional[float]:
        return self._compile_seconds.get(mode)

    def is_compiled(self, mode: ExecutionMode) -> bool:
        return mode is ExecutionMode.BYTECODE or mode in self._compiled

    # ------------------------------------------------------------------ #
    def executable(self) -> tuple[Callable, ExecutionMode]:
        """The fastest currently available variant (checked per morsel)."""
        return self._current, self._current_mode

    def compile(self, mode: ExecutionMode) -> float:
        """Compile the requested variant (synchronously) and install it.

        Returns the compile time in seconds.  Installing a slower mode than
        the current one is a no-op apart from making the variant available.
        Concurrent calls serialize on a per-handle lock: the loser of the
        race observes the winner's cached variant instead of recompiling.
        """
        if mode is ExecutionMode.BYTECODE:
            return self.bytecode_seconds
        with self._compile_lock:
            with self._lock:
                if mode in self._compiled:
                    if self.compiling is mode:
                        self.compiling = None
                    return self._compile_seconds[mode]
                self.compiling = mode
            try:
                compiled = compile_function(self.function, mode.tier_name,
                                            verify=self.verify)
                with self._lock:
                    self._compiled[mode] = compiled
                    self._compile_seconds[mode] = compiled.compile_seconds
                    if mode > self._current_mode:
                        self._current = compiled
                        self._current_mode = mode
            finally:
                with self._lock:
                    self.compiling = None
        return compiled.compile_seconds

    def install_external(self, mode: ExecutionMode, callable_: Callable,
                         compile_seconds: float) -> None:
        """Install a pre-compiled variant (used by tests and the simulator)."""
        with self._lock:
            self._compiled[mode] = callable_
            self._compile_seconds[mode] = compile_seconds
            if mode > self._current_mode:
                self._current = callable_
                self._current_mode = mode
