"""Adaptive execution framework (paper Section III).

Every query pipeline starts executing in the bytecode interpreter on all
available worker threads.  Each worker records its tuple-processing rate per
morsel; a designated thread extrapolates the remaining pipeline duration for
the three execution modes (Fig. 7) and, when switching pays off, compiles the
pipeline's worker function on a background thread.  Once the compilation
finishes, the function handle is swapped and all workers pick up the faster
variant with their next morsel -- no work is lost because every execution
mode operates on the same state through the same runtime calls.
"""

from .modes import ExecutionMode, FunctionHandle
from .progress import PipelineProgress
from .policy import AdaptivePolicy, Decision
from .trace import ExecutionTrace, TraceEvent, render_trace
from .morsel import MorselDispatcher
from .executor import AdaptiveExecutor, StaticParallelExecutor
from .simulation import (
    PipelineProfile,
    QueryProfile,
    SimulationResult,
    profile_query,
    simulate_adaptive,
    simulate_static,
)

__all__ = [
    "ExecutionMode", "FunctionHandle",
    "PipelineProgress",
    "AdaptivePolicy", "Decision",
    "ExecutionTrace", "TraceEvent", "render_trace",
    "MorselDispatcher",
    "AdaptiveExecutor", "StaticParallelExecutor",
    "PipelineProfile", "QueryProfile", "SimulationResult",
    "profile_query", "simulate_adaptive", "simulate_static",
]
