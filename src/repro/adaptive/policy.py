"""The mode-switch decision (paper Fig. 7).

For every pipeline the policy continuously compares three options:

0. keep the current execution mode,
1. compile the worker function without optimizations,
2. compile it with optimizations,

by extrapolating the remaining pipeline duration for each option from the
measured per-thread processing rate, the number of remaining tuples, the
number of active worker threads, and the cost model's estimates of compile
time and speedup.  While a compilation is running, the remaining threads keep
processing tuples in the current mode, which the extrapolation accounts for
exactly as the paper's pseudo code does::

    t_k = c_k + max(n - (w-1) * r0 * c_k, 0) / r_k / w
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from ..backend.cost_model import CostModel, default_cost_model
from .modes import ExecutionMode
from .progress import PipelineProgress


class Decision(enum.Enum):
    """Outcome of one policy evaluation."""

    DO_NOTHING = "do-nothing"
    UNOPTIMIZED = "unoptimized"
    OPTIMIZED = "optimized"

    @property
    def target_mode(self) -> Optional[ExecutionMode]:
        if self is Decision.UNOPTIMIZED:
            return ExecutionMode.UNOPTIMIZED
        if self is Decision.OPTIMIZED:
            return ExecutionMode.OPTIMIZED
        return None


@dataclass
class PolicyEvaluation:
    """The extrapolated durations behind one decision (for tests/tracing)."""

    decision: Decision
    keep_seconds: float
    unoptimized_seconds: Optional[float]
    optimized_seconds: Optional[float]
    rate: float


class AdaptivePolicy:
    """Implements the extrapolation of paper Fig. 7."""

    #: Delay before the first evaluation, to let the rate estimates settle.
    FIRST_EVALUATION_DELAY_SECONDS = 0.001

    def __init__(self, cost_model: Optional[CostModel] = None):
        self.cost_model = cost_model or default_cost_model()

    # ------------------------------------------------------------------ #
    def evaluate(self, progress: PipelineProgress, current: ExecutionMode,
                 instruction_count: int, active_workers: int,
                 elapsed_seconds: float) -> PolicyEvaluation:
        """Compare the three options for a pipeline and pick the fastest."""
        rate = progress.average_rate()
        remaining = progress.remaining_tuples
        workers = max(active_workers, 1)

        if rate is None or remaining <= 0 or \
                elapsed_seconds < self.FIRST_EVALUATION_DELAY_SECONDS:
            return PolicyEvaluation(Decision.DO_NOTHING, 0.0, None, None,
                                    rate or 0.0)

        # Rates are per thread; the paper's r0 is the average thread rate in
        # the *current* mode.  Speedups in the cost model are relative to the
        # bytecode tier, so they are rescaled to the current mode.
        current_speedup = self.cost_model.speedup(current.tier_name)
        keep_seconds = remaining / rate / workers

        def option(mode: ExecutionMode) -> Optional[float]:
            if mode <= current:
                return None
            compile_seconds = self.cost_model.compile_seconds(
                mode.tier_name, instruction_count)
            speedup = (self.cost_model.speedup(mode.tier_name)
                       / max(current_speedup, 1e-9))
            faster_rate = rate * speedup
            # Tuples processed by the other (w-1) threads while compiling.
            processed_during_compile = (workers - 1) * rate * compile_seconds
            leftover = max(remaining - processed_during_compile, 0.0)
            return compile_seconds + leftover / faster_rate / workers

        unopt_seconds = option(ExecutionMode.UNOPTIMIZED)
        opt_seconds = option(ExecutionMode.OPTIMIZED)

        best = Decision.DO_NOTHING
        best_seconds = keep_seconds
        if unopt_seconds is not None and unopt_seconds < best_seconds:
            best = Decision.UNOPTIMIZED
            best_seconds = unopt_seconds
        if opt_seconds is not None and opt_seconds < best_seconds:
            best = Decision.OPTIMIZED
            best_seconds = opt_seconds
        return PolicyEvaluation(best, keep_seconds, unopt_seconds,
                                opt_seconds, rate)
