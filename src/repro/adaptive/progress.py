"""Per-pipeline progress tracking (paper Section III-A).

Worker threads already synchronise on the morsel dispatcher after every
morsel; at that point they additionally record how many tuples they processed
and how long the morsel took.  The tracker maintains per-thread processing
rates (tuples/second) and the total progress of the pipeline, which is all
the adaptive policy needs to extrapolate the remaining duration.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Optional


@dataclass
class _ThreadRate:
    tuples: int = 0
    seconds: float = 0.0

    @property
    def rate(self) -> Optional[float]:
        if self.seconds <= 0 or self.tuples <= 0:
            return None
        return self.tuples / self.seconds


class PipelineProgress:
    """Tracks processed tuples and per-thread rates for one pipeline."""

    def __init__(self, total_tuples: int, num_threads: int):
        self.total_tuples = total_tuples
        self.num_threads = num_threads
        self._lock = threading.Lock()
        self._rates: dict[int, _ThreadRate] = {}
        self.processed_tuples = 0
        self.morsels_processed = 0

    # ------------------------------------------------------------------ #
    def record_morsel(self, thread_id: int, tuples: int,
                      seconds: float) -> None:
        with self._lock:
            entry = self._rates.get(thread_id)
            if entry is None:
                entry = self._rates[thread_id] = _ThreadRate()
            entry.tuples += tuples
            entry.seconds += seconds
            self.processed_tuples += tuples
            self.morsels_processed += 1

    def reset_rates(self) -> None:
        """Forget the measured rates (after an execution-mode switch)."""
        with self._lock:
            self._rates.clear()

    # ------------------------------------------------------------------ #
    @property
    def remaining_tuples(self) -> int:
        with self._lock:
            return max(self.total_tuples - self.processed_tuples, 0)

    def average_rate(self) -> Optional[float]:
        """Average per-thread processing rate in tuples/second."""
        with self._lock:
            rates = [entry.rate for entry in self._rates.values()
                     if entry.rate is not None]
        if not rates:
            return None
        return sum(rates) / len(rates)

    def thread_rates(self) -> dict[int, float]:
        with self._lock:
            return {thread_id: entry.rate
                    for thread_id, entry in self._rates.items()
                    if entry.rate is not None}
