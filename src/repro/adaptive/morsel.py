"""Morsel dispatching (paper Sections III-A/III-B).

A pipeline's input is split into morsels -- small, fixed-size ranges of row
indices.  Worker threads repeatedly grab the next morsel from a shared
dispatcher (the equivalent of the paper's work-stealing structure: with a
single shared queue, stealing degenerates to grabbing the next chunk, which
has the same load-balancing effect for our purposes).  The dispatcher also
supports the dynamically growing morsel size the paper mentions: early
morsels are small so the adaptive policy gets sample points quickly, later
morsels grow to the full size to amortise dispatch overhead.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class Morsel:
    """A half-open range ``[begin, end)`` of row indices."""

    begin: int
    end: int

    @property
    def size(self) -> int:
        return self.end - self.begin


class MorselDispatcher:
    """Thread-safe dispenser of morsels over ``[0, total_rows)``."""

    def __init__(self, total_rows: int, morsel_size: int = 10_000,
                 initial_size: Optional[int] = None, growth_factor: int = 2):
        if morsel_size <= 0:
            raise ValueError("morsel size must be positive")
        self.total_rows = total_rows
        self.max_size = morsel_size
        self.growth_factor = max(growth_factor, 1)
        self._current_size = min(initial_size or morsel_size, morsel_size)
        if self._current_size <= 0:
            self._current_size = morsel_size
        self._next_row = 0
        self._lock = threading.Lock()
        self.dispatched = 0

    # ------------------------------------------------------------------ #
    def next_morsel(self) -> Optional[Morsel]:
        """Grab the next morsel, or None when the input is exhausted."""
        with self._lock:
            if self._next_row >= self.total_rows:
                return None
            begin = self._next_row
            size = self._current_size
            end = min(begin + size, self.total_rows)
            self._next_row = end
            self.dispatched += 1
            # Grow the morsel size (paper: "dynamically growing morsel size").
            if self._current_size < self.max_size:
                self._current_size = min(self._current_size *
                                         self.growth_factor, self.max_size)
            return Morsel(begin, end)

    @property
    def remaining_rows(self) -> int:
        with self._lock:
            return max(self.total_rows - self._next_row, 0)

    @property
    def exhausted(self) -> bool:
        return self.remaining_rows == 0
