"""Morsel dispatching (paper Sections III-A/III-B).

A pipeline's input is split into morsels -- small, fixed-size ranges of row
indices.  Worker threads repeatedly grab the next morsel from a shared
dispatcher (the equivalent of the paper's work-stealing structure: with a
single shared queue, stealing degenerates to grabbing the next chunk, which
has the same load-balancing effect for our purposes).  The dispatcher also
supports the dynamically growing morsel size the paper mentions: early
morsels are small so the adaptive policy gets sample points quickly, later
morsels grow to the full size to amortise dispatch overhead.

With chunked columnar storage the dispatcher walks a list of surviving
``[begin, end)`` *ranges* instead of one contiguous span: zone-map pruning
(:mod:`repro.plan.sargs`) drops whole storage chunks up front.  Range edges
are chunk boundaries and morsels never cross a range edge, so a pruned
chunk is never even partially dispatched; adjacent surviving chunks are
coalesced, keeping morsel sizing unaffected by the chunk granularity.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Optional, Sequence


@dataclass(frozen=True)
class Morsel:
    """A half-open range ``[begin, end)`` of row indices."""

    begin: int
    end: int

    @property
    def size(self) -> int:
        return self.end - self.begin


class MorselDispatcher:
    """Thread-safe dispenser of morsels over a set of row ranges.

    ``MorselDispatcher(total_rows)`` dispenses over ``[0, total_rows)``;
    ``MorselDispatcher(ranges=...)`` dispenses over the given disjoint,
    ascending ``[begin, end)`` ranges (the zone-map scan-pruning path --
    morsels never cross a range edge, so pruned chunks stay undispatched).
    """

    @classmethod
    def for_tasks(cls, count: int) -> "MorselDispatcher":
        """A dispatcher handing out ``count`` single-index morsels.

        Used for the breaker merge phase: partition-merge task *i* runs as
        the morsel ``[i, i+1)``, so per-partition merges ride the same
        worker-pool fairness machinery as ordinary morsels.
        """
        return cls(total_rows=count, morsel_size=1)

    def __init__(self, total_rows: int = 0, morsel_size: int = 10_000,
                 initial_size: Optional[int] = None, growth_factor: int = 2,
                 ranges: Optional[Sequence[tuple[int, int]]] = None):
        if morsel_size <= 0:
            raise ValueError("morsel size must be positive")
        if ranges is None:
            ranges = ((0, total_rows),) if total_rows > 0 else ()
        self._ranges = [(begin, end) for begin, end in ranges if end > begin]
        #: Rows this dispatcher will hand out (after pruning).
        self.total_rows = sum(end - begin for begin, end in self._ranges)
        self.max_size = morsel_size
        self.growth_factor = max(growth_factor, 1)
        self._current_size = min(initial_size or morsel_size, morsel_size)
        if self._current_size <= 0:
            self._current_size = morsel_size
        self._range_index = 0
        self._next_row = self._ranges[0][0] if self._ranges else 0
        self._remaining = self.total_rows
        self._lock = threading.Lock()
        self.dispatched = 0

    # ------------------------------------------------------------------ #
    def next_morsel(self) -> Optional[Morsel]:
        """Grab the next morsel, or None when the input is exhausted."""
        with self._lock:
            if self._range_index >= len(self._ranges):
                return None
            range_end = self._ranges[self._range_index][1]
            begin = self._next_row
            end = min(begin + self._current_size, range_end)
            self._remaining -= end - begin
            if end >= range_end:
                self._range_index += 1
                if self._range_index < len(self._ranges):
                    self._next_row = self._ranges[self._range_index][0]
            else:
                self._next_row = end
            self.dispatched += 1
            # Grow the morsel size (paper: "dynamically growing morsel size").
            if self._current_size < self.max_size:
                self._current_size = min(self._current_size *
                                         self.growth_factor, self.max_size)
            return Morsel(begin, end)

    def cancel(self) -> None:
        """Stop dispensing: every later :meth:`next_morsel` returns ``None``.

        Used by LIMIT early termination -- once enough output rows exist,
        in-flight morsels finish normally (their extra rows are sliced away
        by the finish step) but no new morsel is handed out.
        """
        with self._lock:
            self._range_index = len(self._ranges)
            self._remaining = 0

    @property
    def remaining_rows(self) -> int:
        with self._lock:
            return self._remaining

    @property
    def exhausted(self) -> bool:
        return self.remaining_rows == 0
