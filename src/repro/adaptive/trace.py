"""Execution traces (paper Fig. 14) -- compatibility re-exports.

The trace model moved to :mod:`repro.telemetry.trace` when tracing was
unified with the metrics subsystem (the adaptive executor now records into
a :class:`repro.telemetry.QueryTrace`, which extends the original
:class:`ExecutionTrace`).  This module keeps the historical import path
``repro.adaptive.trace`` working for the simulator and existing callers.
"""

from __future__ import annotations

from ..telemetry.trace import (
    ExecutionTrace,
    QueryTrace,
    TraceEvent,
    render_trace,
)

__all__ = ["ExecutionTrace", "QueryTrace", "TraceEvent", "render_trace"]
