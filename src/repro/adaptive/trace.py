"""Execution traces (paper Fig. 14).

Every processed morsel and every compilation becomes a :class:`TraceEvent`
with precise start/end times, the worker thread that performed it, the
pipeline it belonged to and the execution mode used.  The trace can be
rendered as an ASCII timeline, which is how the Fig. 14 reproduction shows
when each thread switched from interpretation to compiled code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass
class TraceEvent:
    """One morsel execution or compilation on one thread."""

    thread_id: int
    start: float
    end: float
    kind: str                 # "morsel" | "compile" | "finish"
    pipeline: str
    mode: str                 # bytecode | unoptimized | optimized
    tuples: int = 0

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class ExecutionTrace:
    """All events of one query execution."""

    label: str = ""
    events: list[TraceEvent] = field(default_factory=list)

    def add(self, event: TraceEvent) -> None:
        self.events.append(event)

    @property
    def duration(self) -> float:
        if not self.events:
            return 0.0
        return max(event.end for event in self.events)

    def events_for_thread(self, thread_id: int) -> list[TraceEvent]:
        return sorted((e for e in self.events if e.thread_id == thread_id),
                      key=lambda e: e.start)

    def thread_ids(self) -> list[int]:
        return sorted({event.thread_id for event in self.events})

    def pipelines(self) -> list[str]:
        seen: list[str] = []
        for event in sorted(self.events, key=lambda e: e.start):
            if event.pipeline not in seen:
                seen.append(event.pipeline)
        return seen

    def mode_switches(self) -> list[tuple[str, str]]:
        """Pipelines and the sequence of modes they were executed in."""
        order: dict[str, list[str]] = {}
        for event in sorted(self.events, key=lambda e: e.start):
            if event.kind != "morsel":
                continue
            modes = order.setdefault(event.pipeline, [])
            if not modes or modes[-1] != event.mode:
                modes.append(event.mode)
        return [(pipeline, "->".join(modes))
                for pipeline, modes in order.items()]


_MODE_CHARS = {"bytecode": "b", "unoptimized": "u", "optimized": "o",
               "compile": "C", "finish": "f"}


def render_trace(trace: ExecutionTrace, width: int = 100) -> str:
    """Render the trace as an ASCII per-thread timeline (Fig. 14 style).

    Each character cell covers ``duration / width`` seconds; morsel cells show
    the execution mode (``b``/``u``/``o``), compilations show ``C``.
    """
    duration = trace.duration
    if duration <= 0:
        return f"{trace.label}: (empty trace)"
    scale = width / duration
    lines = [f"{trace.label}  (total {duration * 1000:.2f} ms, "
             f"1 cell = {duration / width * 1000:.3f} ms)"]
    for thread_id in trace.thread_ids():
        cells = [" "] * width
        for event in trace.events_for_thread(thread_id):
            start_cell = min(int(event.start * scale), width - 1)
            end_cell = min(max(int(event.end * scale), start_cell + 1), width)
            char = ("C" if event.kind == "compile"
                    else _MODE_CHARS.get(event.mode, "?"))
            for cell in range(start_cell, end_cell):
                cells[cell] = char
        lines.append(f"thread {thread_id}: |{''.join(cells)}|")
    lines.append("legend: b=bytecode morsel, u=unoptimized morsel, "
                 "o=optimized morsel, C=compilation")
    return "\n".join(lines)
