"""Virtual-time simulation of multi-threaded morsel-driven execution.

CPython's global interpreter lock prevents the pure-Python execution tiers
from showing real multi-core speedups, so the paper's multi-threaded timing
experiments (Fig. 13, Fig. 14, the 8-thread columns of Table II) are
reproduced with a discrete-event simulator:

1. :func:`profile_query` measures, on the real engine and single-threaded,
   every pipeline's per-tuple processing rate in each execution mode, its
   compile/translation times and its size -- all real measurements of this
   implementation.
2. :func:`simulate_static` and :func:`simulate_adaptive` then replay
   morsel-driven execution on ``w`` virtual worker threads: morsels are
   dispatched from a shared queue to the earliest-free worker, static modes
   pay their full compilation up front on a single thread, and the adaptive
   mode starts in bytecode, evaluates the Fig. 7 policy at morsel
   completions, runs compilations on one worker thread and switches rates
   once compilation finishes.

Every algorithmic component (morsel scheduling, progress tracking, the
policy, pipeline ordering) is the same code path a real multi-core run would
take; only the clock is virtual.  DESIGN.md documents this substitution.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Optional

from ..backend.cost_model import CostModel, TierEstimate, default_cost_model
from ..errors import AdaptiveError
from .modes import ExecutionMode
from .policy import AdaptivePolicy, Decision
from .trace import ExecutionTrace, TraceEvent

#: Execution tiers, in the order used throughout the simulator.
TIER_NAMES = ("bytecode", "unoptimized", "optimized")


@dataclass
class PipelineProfile:
    """Measured characteristics of one pipeline (real, single-threaded)."""

    name: str
    rows: int
    ir_instructions: int
    #: tuples/second per worker, per tier
    rates: dict[str, float]
    #: seconds to prepare each tier (bytecode translation or compilation)
    compile_seconds: dict[str, float]


@dataclass
class QueryProfile:
    """Measured characteristics of a whole query."""

    label: str
    planning_seconds: float
    codegen_seconds: float
    pipelines: list[PipelineProfile]

    @property
    def total_rows(self) -> int:
        return sum(p.rows for p in self.pipelines)


@dataclass
class SimulationResult:
    """Outcome of one simulated execution."""

    mode: str
    threads: int
    total_seconds: float
    execution_seconds: float
    compile_seconds: float
    trace: ExecutionTrace
    pipeline_modes: dict[str, list[str]] = field(default_factory=dict)


# --------------------------------------------------------------------------- #
# profiling (real measurements feeding the simulator)
# --------------------------------------------------------------------------- #
def profile_query(database, sql: str, label: str = "",
                  min_rate_rows: int = 1) -> QueryProfile:
    """Measure per-pipeline rates and compile times for every tier.

    Runs the query once per tier on the real engine (single-threaded) and
    derives tuples/second per pipeline.  Rates for empty pipelines fall back
    to the query-wide average so the simulator never divides by zero.
    """
    runs = {}
    planning_seconds = 0.0
    codegen_seconds = 0.0
    for tier in TIER_NAMES:
        # use_cache=False: a plan-cache hit reports 0 for the planning,
        # codegen and compile phases, which are exactly the quantities the
        # simulator needs measured cold.
        result = database.execute(sql, mode=tier, threads=1, use_cache=False)
        runs[tier] = result
        planning_seconds = result.timings.planning
        codegen_seconds = result.timings.codegen

    reference = runs["bytecode"]
    pipelines: list[PipelineProfile] = []
    for index, pipeline in enumerate(reference.pipelines):
        rates: dict[str, float] = {}
        compile_seconds: dict[str, float] = {}
        for tier in TIER_NAMES:
            stats = runs[tier].pipelines[index]
            rows = max(stats.rows, min_rate_rows)
            seconds = max(stats.seconds, 1e-7)
            rates[tier] = rows / seconds
            compile_seconds[tier] = _per_pipeline_compile_seconds(
                runs[tier], index, tier)
        pipelines.append(PipelineProfile(
            name=pipeline.name,
            rows=pipeline.rows,
            ir_instructions=pipeline.ir_instructions,
            rates=rates,
            compile_seconds=compile_seconds))
    return QueryProfile(label=label or sql[:40],
                        planning_seconds=planning_seconds,
                        codegen_seconds=codegen_seconds,
                        pipelines=pipelines)


def _per_pipeline_compile_seconds(result, index: int, tier: str) -> float:
    """Attribute the run's total compile time to pipelines by IR size."""
    total_instructions = sum(p.ir_instructions for p in result.pipelines)
    if total_instructions == 0:
        return 0.0
    share = result.pipelines[index].ir_instructions / total_instructions
    return result.timings.compile * share


def cost_model_from_profiles(profiles: list[QueryProfile]) -> CostModel:
    """Fit the adaptive policy's cost model from measured profiles.

    This is the reproduction of the paper's "determined empirically in our
    system": compile time is fitted linearly against the IR instruction
    count (Fig. 6) and speedups are the average measured rate ratios.
    """
    model = CostModel()
    samples: dict[str, list[tuple[int, float]]] = {t: [] for t in TIER_NAMES}
    speedups: dict[str, list[float]] = {t: [] for t in TIER_NAMES}
    for profile in profiles:
        for pipeline in profile.pipelines:
            base_rate = pipeline.rates.get("bytecode", 0.0)
            for tier in TIER_NAMES:
                samples[tier].append((pipeline.ir_instructions,
                                      pipeline.compile_seconds[tier]))
                if base_rate > 0 and pipeline.rates.get(tier, 0.0) > 0:
                    speedups[tier].append(pipeline.rates[tier] / base_rate)
    for tier in TIER_NAMES:
        speedup = (sum(speedups[tier]) / len(speedups[tier])
                   if speedups[tier] else None)
        model.fit(tier, samples[tier], speedup=speedup)
    return model


# --------------------------------------------------------------------------- #
# the simulator core
# --------------------------------------------------------------------------- #
class _SimulatedProgress:
    """Progress adapter with the interface :class:`AdaptivePolicy` expects."""

    def __init__(self, total_tuples: int):
        self.total_tuples = total_tuples
        self.processed_tuples = 0
        self._rate: Optional[float] = None

    def record(self, tuples: int, rate: float) -> None:
        self.processed_tuples += tuples
        self._rate = rate

    def reset_rates(self) -> None:
        self._rate = None

    @property
    def remaining_tuples(self) -> int:
        return max(self.total_tuples - self.processed_tuples, 0)

    def average_rate(self) -> Optional[float]:
        return self._rate


def simulate_static(profile: QueryProfile, mode: str, threads: int,
                    morsel_size: int = 10_000,
                    include_planning: bool = True) -> SimulationResult:
    """Simulate a statically chosen tier on ``threads`` virtual workers."""
    if mode not in TIER_NAMES:
        raise AdaptiveError(f"unknown tier {mode!r}")
    trace = ExecutionTrace(label=f"{mode} ({threads} threads)")
    clock = (profile.planning_seconds + profile.codegen_seconds
             if include_planning else 0.0)

    # Up-front single-threaded preparation of every pipeline.
    compile_total = sum(p.compile_seconds[mode] for p in profile.pipelines)
    if compile_total > 0:
        trace.add(TraceEvent(0, clock, clock + compile_total, "compile",
                             "query plan", mode))
    clock += compile_total

    execution_seconds = 0.0
    pipeline_modes: dict[str, list[str]] = {}
    for pipeline in profile.pipelines:
        finish = _simulate_pipeline_morsels(
            trace, pipeline, start_time=clock, threads=threads,
            morsel_size=morsel_size, rate_of={t: pipeline.rates[mode]
                                              for t in (mode,)},
            initial_mode=mode, policy=None, cost_model=None,
            compile_seconds=pipeline.compile_seconds)
        execution_seconds += finish - clock
        clock = finish
        pipeline_modes[pipeline.name] = [mode]

    return SimulationResult(mode=mode, threads=threads, total_seconds=clock,
                            execution_seconds=execution_seconds,
                            compile_seconds=compile_total, trace=trace,
                            pipeline_modes=pipeline_modes)


def simulate_adaptive(profile: QueryProfile, threads: int,
                      cost_model: Optional[CostModel] = None,
                      morsel_size: int = 10_000,
                      initial_morsel_size: int = 1024,
                      include_planning: bool = True) -> SimulationResult:
    """Simulate adaptive execution on ``threads`` virtual workers."""
    cost_model = cost_model or default_cost_model()
    policy = AdaptivePolicy(cost_model)
    trace = ExecutionTrace(label=f"adaptive ({threads} threads)")
    clock = (profile.planning_seconds + profile.codegen_seconds
             if include_planning else 0.0)

    execution_seconds = 0.0
    compile_seconds_total = 0.0
    pipeline_modes: dict[str, list[str]] = {}
    for pipeline in profile.pipelines:
        # Bytecode translation happens before the pipeline starts.
        translation = pipeline.compile_seconds["bytecode"]
        clock += translation
        compile_seconds_total += translation
        finish, modes, compiled_time = _simulate_pipeline_morsels(
            trace, pipeline, start_time=clock, threads=threads,
            morsel_size=morsel_size, rate_of=pipeline.rates,
            initial_mode="bytecode", policy=policy, cost_model=cost_model,
            compile_seconds=pipeline.compile_seconds,
            initial_morsel_size=initial_morsel_size, return_details=True)
        execution_seconds += finish - clock
        compile_seconds_total += compiled_time
        clock = finish
        pipeline_modes[pipeline.name] = modes

    return SimulationResult(mode="adaptive", threads=threads,
                            total_seconds=clock,
                            execution_seconds=execution_seconds,
                            compile_seconds=compile_seconds_total,
                            trace=trace, pipeline_modes=pipeline_modes)


def _simulate_pipeline_morsels(trace: ExecutionTrace,
                               pipeline: PipelineProfile, start_time: float,
                               threads: int, morsel_size: int, rate_of: dict,
                               initial_mode: str, policy, cost_model,
                               compile_seconds: dict,
                               initial_morsel_size: Optional[int] = None,
                               return_details: bool = False):
    """Replay one pipeline's morsel execution in virtual time.

    Workers pull morsels from a shared queue; the earliest-free worker gets
    the next morsel.  In adaptive mode the policy is evaluated when a morsel
    completes; a switch dedicates the completing worker to the compilation,
    after which every later morsel runs at the faster rate.
    """
    rows = pipeline.rows
    current_mode = initial_mode
    mode_history = [initial_mode]
    progress = _SimulatedProgress(rows)
    compile_busy_until = 0.0
    compile_pending_mode: Optional[str] = None
    compile_time_spent = 0.0

    if rows <= 0:
        finish = start_time
        if return_details:
            return finish, mode_history, compile_time_spent
        return finish

    # Worker availability times.
    workers = [(start_time, i) for i in range(threads)]
    heapq.heapify(workers)

    next_row = 0
    size = initial_morsel_size or morsel_size
    finish = start_time

    while next_row < rows:
        available_at, worker_id = heapq.heappop(workers)

        # Did a pending compilation finish before this worker became free?
        if compile_pending_mode is not None and \
                available_at >= compile_busy_until:
            current_mode = compile_pending_mode
            compile_pending_mode = None
            if current_mode not in mode_history:
                mode_history.append(current_mode)
            progress.reset_rates()

        begin = next_row
        end = min(begin + size, rows)
        next_row = end
        size = min(size * 2, morsel_size)

        rate = rate_of.get(current_mode) or next(iter(rate_of.values()))
        duration = (end - begin) / max(rate, 1e-9)
        morsel_end = available_at + duration
        trace.add(TraceEvent(worker_id, available_at, morsel_end, "morsel",
                             pipeline.name, current_mode, end - begin))
        progress.record(end - begin, rate)
        finish = max(finish, morsel_end)

        # Policy evaluation at morsel completion (adaptive only).
        if policy is not None and compile_pending_mode is None and \
                current_mode != "optimized":
            evaluation = policy.evaluate(
                progress, ExecutionMode[current_mode.upper()],
                pipeline.ir_instructions, active_workers=threads,
                elapsed_seconds=morsel_end - start_time)
            target = evaluation.decision.target_mode
            if target is not None and target.tier_name != current_mode:
                compile_cost = compile_seconds[target.tier_name]
                compile_time_spent += compile_cost
                if threads == 1:
                    # Single worker compiles synchronously.
                    trace.add(TraceEvent(worker_id, morsel_end,
                                         morsel_end + compile_cost,
                                         "compile", pipeline.name,
                                         target.tier_name))
                    morsel_end += compile_cost
                    current_mode = target.tier_name
                    mode_history.append(current_mode)
                    progress.reset_rates()
                else:
                    # This worker becomes the compile thread.
                    trace.add(TraceEvent(worker_id, morsel_end,
                                         morsel_end + compile_cost,
                                         "compile", pipeline.name,
                                         target.tier_name))
                    compile_busy_until = morsel_end + compile_cost
                    compile_pending_mode = target.tier_name
                    finish = max(finish, compile_busy_until)
                    heapq.heappush(workers, (compile_busy_until, worker_id))
                    continue

        heapq.heappush(workers, (morsel_end, worker_id))

    if return_details:
        return finish, mode_history, compile_time_spent
    return finish
