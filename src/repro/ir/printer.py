"""Textual IR printer (LLVM-assembly flavoured), used for debugging and tests."""

from __future__ import annotations

from .function import Function, Module
from .instructions import (
    BranchInst,
    CallInst,
    CastInst,
    CompareInst,
    CondBranchInst,
    GEPInst,
    LoadInst,
    PhiInst,
    ReturnInst,
    SelectInst,
    StoreInst,
)
from .values import Constant, Instruction, Value


def _value_names(function: Function) -> dict[int, str]:
    """Assign stable printable names (%0, %1, ...) to every value."""
    names: dict[int, str] = {}
    counter = 0
    for arg in function.args:
        names[arg.uid] = arg.name or f"arg{arg.index}"
        counter += 1
    for block in function.blocks:
        for inst in block.instructions:
            if inst.has_result:
                names[inst.uid] = inst.name or str(counter)
                counter += 1
    return names


def _fmt_operand(value: Value, names: dict[int, str]) -> str:
    if isinstance(value, Constant):
        return value.short_name()
    name = names.get(value.uid)
    if name is None:
        return value.short_name()
    return f"%{name}"


def format_instruction(inst: Instruction, names: dict[int, str]) -> str:
    """Format one instruction as pseudo LLVM assembly."""
    fmt = lambda v: _fmt_operand(v, names)  # noqa: E731 - local shorthand
    prefix = f"%{names[inst.uid]} = " if inst.has_result else ""

    if isinstance(inst, PhiInst):
        pairs = ", ".join(f"[{fmt(v)}, %{b.name}]" for v, b in inst.incoming)
        return f"{prefix}phi {inst.type} {pairs}"
    if isinstance(inst, CompareInst):
        return (f"{prefix}{inst.opcode} {inst.predicate} "
                f"{inst.lhs.type} {fmt(inst.lhs)}, {fmt(inst.rhs)}")
    if isinstance(inst, SelectInst):
        return (f"{prefix}select {fmt(inst.condition)}, "
                f"{fmt(inst.then_value)}, {fmt(inst.else_value)}")
    if isinstance(inst, CastInst):
        return f"{prefix}{inst.opcode} {fmt(inst.value)} to {inst.type}"
    if isinstance(inst, GEPInst):
        return f"{prefix}gep {fmt(inst.base)}, {fmt(inst.index)}"
    if isinstance(inst, LoadInst):
        return f"{prefix}load {inst.type}, {fmt(inst.pointer)}"
    if isinstance(inst, StoreInst):
        return f"store {fmt(inst.value)}, {fmt(inst.pointer)}"
    if isinstance(inst, CallInst):
        args = ", ".join(fmt(a) for a in inst.args)
        return f"{prefix}call {inst.type} @{inst.callee.name}({args})"
    if isinstance(inst, BranchInst):
        return f"br %{inst.target.name}"
    if isinstance(inst, CondBranchInst):
        return (f"condbr {fmt(inst.condition)}, "
                f"%{inst.true_target.name}, %{inst.false_target.name}")
    if isinstance(inst, ReturnInst):
        if inst.value is None:
            return "ret void"
        return f"ret {inst.value.type} {fmt(inst.value)}"
    operands = ", ".join(fmt(op) for op in inst.operands)
    if operands:
        return f"{prefix}{inst.opcode} {inst.type} {operands}"
    return f"{prefix}{inst.opcode}"


def print_function(function: Function) -> str:
    """Render a function as readable pseudo-LLVM text."""
    names = _value_names(function)
    args = ", ".join(f"{arg.type} %{names[arg.uid]}" for arg in function.args)
    lines = [f"define {function.return_type} @{function.name}({args}) {{"]
    for block in function.blocks:
        lines.append(f"{block.name}:")
        for inst in block.instructions:
            lines.append(f"  {format_instruction(inst, names)}")
    lines.append("}")
    return "\n".join(lines)


def print_module(module: Module) -> str:
    """Render a whole module, extern declarations first."""
    lines = [f"; module {module.name}"]
    for extern in module.externs.values():
        args = ", ".join(str(t) for t in extern.arg_types)
        lines.append(f"declare {extern.return_type} @{extern.name}({args})")
    for function in module.functions.values():
        lines.append("")
        lines.append(print_function(function))
    return "\n".join(lines)
