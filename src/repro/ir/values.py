"""SSA values: constants, function arguments and instructions.

Everything that can appear as an operand of an instruction is a
:class:`Value`.  Instructions themselves are values (their result), mirroring
LLVM's design; void-typed instructions simply must not be used as operands.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Optional, TYPE_CHECKING

from ..errors import IRError
from .types import IRType, i1, f64, i64, ptr, void, wrap_integer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .function import BasicBlock


_value_counter = itertools.count()


class Value:
    """Base class of every SSA value."""

    __slots__ = ("type", "name", "uid")

    def __init__(self, ty: IRType, name: str = ""):
        self.type = ty
        self.name = name
        #: Stable unique id used for deterministic ordering in analyses.
        self.uid = next(_value_counter)

    @property
    def is_constant(self) -> bool:
        return isinstance(self, Constant)

    def short_name(self) -> str:
        """A printable name (``%name`` or the constant literal)."""
        return f"%{self.name or self.uid}"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.short_name()}: {self.type}>"


class Constant(Value):
    """A literal constant of some IR type.

    Integer constants are normalised into the two's-complement range of their
    type; pointer constants carry an arbitrary Python object (used for
    runtime state pointers, interned strings, column buffers).
    """

    __slots__ = ("value",)

    def __init__(self, ty: IRType, value):
        super().__init__(ty, name="")
        if ty.is_integer:
            value = wrap_integer(int(value), ty)
        elif ty.is_float:
            value = float(value)
        elif ty.is_void:
            raise IRError("cannot create a void constant")
        self.value = value

    def short_name(self) -> str:
        if self.type.is_pointer:
            return f"ptr<{type(self.value).__name__}>"
        return str(self.value)

    # Convenience constructors -------------------------------------------------
    @staticmethod
    def int64(value: int) -> "Constant":
        return Constant(i64, value)

    @staticmethod
    def float64(value: float) -> "Constant":
        return Constant(f64, value)

    @staticmethod
    def bool_(value: bool) -> "Constant":
        return Constant(i1, 1 if value else 0)

    @staticmethod
    def pointer(obj) -> "Constant":
        return Constant(ptr, obj)


class Undef(Value):
    """An undefined value, used only as a phi placeholder during construction."""

    __slots__ = ()

    def short_name(self) -> str:
        return "undef"


class Argument(Value):
    """A formal argument of a function."""

    __slots__ = ("index",)

    def __init__(self, ty: IRType, name: str, index: int):
        super().__init__(ty, name)
        self.index = index


class Instruction(Value):
    """Base class of all instructions.

    An instruction owns a list of operand values and lives in exactly one
    basic block.  ``opcode`` is a short lowercase mnemonic used by the
    printer, the verifier and the bytecode translator.
    """

    __slots__ = ("opcode", "operands", "block")

    #: Set by terminator subclasses.
    is_terminator = False

    def __init__(self, opcode: str, ty: IRType, operands: Iterable[Value],
                 name: str = ""):
        super().__init__(ty, name)
        self.opcode = opcode
        self.operands: list[Value] = list(operands)
        self.block: Optional["BasicBlock"] = None

    # ------------------------------------------------------------------ #
    # operand helpers
    # ------------------------------------------------------------------ #
    def replace_operand(self, old: Value, new: Value) -> int:
        """Replace every occurrence of ``old`` among the operands.

        Returns the number of replacements performed.  Subclasses that keep
        structured operand references (e.g. phi incoming lists, branch
        targets) override this to keep those in sync.
        """
        count = 0
        for idx, op in enumerate(self.operands):
            if op is old:
                self.operands[idx] = new
                count += 1
        return count

    def value_operands(self) -> list[Value]:
        """Operands that are SSA values (excludes block references)."""
        return list(self.operands)

    @property
    def has_result(self) -> bool:
        """Whether the instruction produces an SSA value usable as operand."""
        return not self.type.is_void

    @property
    def has_side_effects(self) -> bool:
        """Conservative side-effect flag used by DCE."""
        return self.is_terminator

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        ops = ", ".join(op.short_name() for op in self.operands)
        if self.has_result:
            return f"<{self.short_name()} = {self.opcode} {ops}>"
        return f"<{self.opcode} {ops}>"


def replace_all_uses(function, old: Value, new: Value) -> int:
    """Replace every use of ``old`` with ``new`` across a whole function.

    This is the IR's equivalent of LLVM's ``replaceAllUsesWith``; our values
    do not maintain use lists (queries are compiled once, linearly), so the
    replacement walks all instructions.  Returns the number of uses replaced.
    """
    count = 0
    for block in function.blocks:
        for inst in block.instructions:
            count += inst.replace_operand(old, new)
    return count
