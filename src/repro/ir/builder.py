"""IRBuilder: the fluent construction API used by the query code generator.

The builder keeps an insertion block and offers one method per instruction,
mirroring ``llvm::IRBuilder``.  It also provides the higher-level
``checked_add``/``checked_sub``/``checked_mul`` helpers that emit the paper's
overflow-check sequence (arithmetic + overflow predicate + conditional branch
to an error block), which the bytecode translator later fuses into a single
opcode.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..errors import IRError
from .types import IRType, i1, i64, f64, ptr, void
from .values import Constant, Value
from .instructions import (
    BinaryInst,
    BranchInst,
    CallInst,
    CastInst,
    CompareInst,
    CondBranchInst,
    GEPInst,
    LoadInst,
    OverflowCheckInst,
    PhiInst,
    ReturnInst,
    SelectInst,
    StoreInst,
    UnreachableInst,
)
from .function import BasicBlock, ExternFunction, Function, Module


class IRBuilder:
    """Builds instructions into a current insertion block."""

    def __init__(self, function: Function, block: Optional[BasicBlock] = None):
        self.function = function
        if block is not None:
            self.block = block
        elif function.blocks:
            self.block = function.blocks[0]
        else:
            self.block = function.add_block("entry")

    # ------------------------------------------------------------------ #
    # positioning
    # ------------------------------------------------------------------ #
    def set_block(self, block: BasicBlock) -> BasicBlock:
        self.block = block
        return block

    def new_block(self, name: str = "") -> BasicBlock:
        return self.function.add_block(name)

    def _emit(self, inst):
        return self.block.append(inst)

    # ------------------------------------------------------------------ #
    # constants
    # ------------------------------------------------------------------ #
    def const_i64(self, value: int) -> Constant:
        return Constant.int64(value)

    def const_f64(self, value: float) -> Constant:
        return Constant.float64(value)

    def const_bool(self, value: bool) -> Constant:
        return Constant.bool_(value)

    def const_ptr(self, obj) -> Constant:
        return Constant.pointer(obj)

    # ------------------------------------------------------------------ #
    # arithmetic
    # ------------------------------------------------------------------ #
    def binary(self, opcode: str, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self._emit(BinaryInst(opcode, lhs, rhs, name))

    def add(self, lhs, rhs, name=""):
        return self.binary("fadd" if lhs.type.is_float else "add", lhs, rhs, name)

    def sub(self, lhs, rhs, name=""):
        return self.binary("fsub" if lhs.type.is_float else "sub", lhs, rhs, name)

    def mul(self, lhs, rhs, name=""):
        return self.binary("fmul" if lhs.type.is_float else "mul", lhs, rhs, name)

    def div(self, lhs, rhs, name=""):
        return self.binary("fdiv" if lhs.type.is_float else "sdiv", lhs, rhs, name)

    def rem(self, lhs, rhs, name=""):
        return self.binary("srem", lhs, rhs, name)

    def and_(self, lhs, rhs, name=""):
        return self.binary("and", lhs, rhs, name)

    def or_(self, lhs, rhs, name=""):
        return self.binary("or", lhs, rhs, name)

    def xor(self, lhs, rhs, name=""):
        return self.binary("xor", lhs, rhs, name)

    def smin(self, lhs, rhs, name=""):
        return self.binary("fmin" if lhs.type.is_float else "smin", lhs, rhs, name)

    def smax(self, lhs, rhs, name=""):
        return self.binary("fmax" if lhs.type.is_float else "smax", lhs, rhs, name)

    def overflow_check(self, opcode: str, lhs: Value, rhs: Value,
                       name: str = "") -> Value:
        return self._emit(OverflowCheckInst(opcode, lhs, rhs, name))

    # ------------------------------------------------------------------ #
    # comparisons / selects / casts
    # ------------------------------------------------------------------ #
    def cmp(self, predicate: str, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self._emit(CompareInst(predicate, lhs, rhs, name))

    def select(self, cond: Value, then_value: Value, else_value: Value,
               name: str = "") -> Value:
        return self._emit(SelectInst(cond, then_value, else_value, name))

    def sitofp(self, value: Value, name: str = "") -> Value:
        return self._emit(CastInst("sitofp", value, f64, name))

    def fptosi(self, value: Value, name: str = "") -> Value:
        return self._emit(CastInst("fptosi", value, i64, name))

    def zext(self, value: Value, to_type: IRType, name: str = "") -> Value:
        return self._emit(CastInst("zext", value, to_type, name))

    def sext(self, value: Value, to_type: IRType, name: str = "") -> Value:
        return self._emit(CastInst("sext", value, to_type, name))

    def trunc(self, value: Value, to_type: IRType, name: str = "") -> Value:
        return self._emit(CastInst("trunc", value, to_type, name))

    # ------------------------------------------------------------------ #
    # memory
    # ------------------------------------------------------------------ #
    def gep(self, base: Value, index: Value, name: str = "") -> Value:
        return self._emit(GEPInst(base, index, name))

    def load(self, ty: IRType, pointer: Value, name: str = "") -> Value:
        return self._emit(LoadInst(ty, pointer, name))

    def store(self, value: Value, pointer: Value) -> Value:
        return self._emit(StoreInst(value, pointer))

    # ------------------------------------------------------------------ #
    # calls
    # ------------------------------------------------------------------ #
    def call(self, callee, args: Sequence[Value], name: str = "") -> Value:
        if isinstance(callee, ExternFunction):
            if len(args) != len(callee.arg_types):
                raise IRError(
                    f"call to @{callee.name}: expected "
                    f"{len(callee.arg_types)} args, got {len(args)}")
            if self.function.module is not None:
                self.function.module.declare_extern(callee)
        return self._emit(CallInst(callee, args, name))

    # ------------------------------------------------------------------ #
    # control flow
    # ------------------------------------------------------------------ #
    def phi(self, ty: IRType, name: str = "") -> PhiInst:
        phi = PhiInst(ty, name)
        # Phis must be grouped at the top of the block.
        if self.block.is_terminated:
            raise IRError("cannot add phi to a terminated block")
        phi.block = self.block
        insert_at = 0
        for idx, inst in enumerate(self.block.instructions):
            if isinstance(inst, PhiInst):
                insert_at = idx + 1
            else:
                break
        self.block.instructions.insert(insert_at, phi)
        return phi

    def br(self, target: BasicBlock) -> Value:
        return self._emit(BranchInst(target))

    def condbr(self, cond: Value, true_target: BasicBlock,
               false_target: BasicBlock) -> Value:
        return self._emit(CondBranchInst(cond, true_target, false_target))

    def ret(self, value: Optional[Value] = None) -> Value:
        return self._emit(ReturnInst(value))

    def unreachable(self) -> Value:
        return self._emit(UnreachableInst())

    # ------------------------------------------------------------------ #
    # composite helpers
    # ------------------------------------------------------------------ #
    def checked_arith(self, opcode: str, lhs: Value, rhs: Value,
                      error_block: BasicBlock, name: str = "") -> Value:
        """Emit overflow-checked integer arithmetic.

        Produces the canonical four-part sequence the paper describes for
        overflow checking: the arithmetic itself, the overflow predicate, a
        conditional branch to ``error_block`` and a fresh continuation block
        that becomes the new insertion point.
        """
        result = self.binary(opcode, lhs, rhs, name)
        flag = self.overflow_check(opcode, lhs, rhs)
        cont = self.new_block(f"{self.block.name}.ovf.cont")
        self.condbr(flag, error_block, cont)
        self.set_block(cont)
        return result

    def checked_add(self, lhs, rhs, error_block, name=""):
        return self.checked_arith("add", lhs, rhs, error_block, name)

    def checked_sub(self, lhs, rhs, error_block, name=""):
        return self.checked_arith("sub", lhs, rhs, error_block, name)

    def checked_mul(self, lhs, rhs, error_block, name=""):
        return self.checked_arith("mul", lhs, rhs, error_block, name)

    def count_loop(self, begin: Value, end: Value, body_name: str = "loop"):
        """Open a canonical counted loop ``for i in [begin, end)``.

        Returns ``(index_phi, body_block, exit_block, latch_callback)``; the
        caller emits the body starting at ``body_block`` and finally calls
        ``latch_callback()`` to close the loop.  This is the shape every
        table-scan worker function uses.
        """
        head = self.new_block(f"{body_name}.head")
        body = self.new_block(f"{body_name}.body")
        exit_block = self.new_block(f"{body_name}.exit")

        preheader = self.block
        self.br(head)

        self.set_block(head)
        index = self.phi(i64, name=f"{body_name}.i")
        index.add_incoming(begin, preheader)
        in_range = self.cmp("lt", index, end)
        self.condbr(in_range, body, exit_block)

        self.set_block(body)

        def close_loop():
            next_index = self.add(index, self.const_i64(1))
            index.add_incoming(next_index, self.block)
            self.br(head)
            self.set_block(exit_block)

        return index, body, exit_block, close_loop
