"""Structural verification of IR functions and modules.

The verifier catches code-generation bugs early and is run by the test suite
on every module the query compiler produces.  It checks the same invariants
LLVM's verifier would for our instruction subset:

* every block ends in exactly one terminator and has no terminator earlier,
* phi nodes appear only at the top of a block and have exactly one incoming
  value per predecessor,
* every operand is defined in the function (SSA: defined exactly once) and
  its definition dominates the use,
* instruction result types are consistent with their operands,
* call argument counts/types match the callee's declaration.

Failures raise :class:`repro.errors.IRVerificationError` carrying the
function, block and offending instruction (rendered via
:mod:`repro.ir.printer`), so a CI failure names the exact defect site.
"""

from __future__ import annotations

from typing import Optional

from ..errors import IRVerificationError
from .analysis import compute_dominator_tree, reverse_postorder
from .function import BasicBlock, Function, Module
from .instructions import CallInst, PhiInst
from .values import Argument, Constant, Instruction, Undef, Value


def verify_module(module: Module) -> None:
    """Verify every function of a module.  Raises on the first violation."""
    for function in module.functions.values():
        verify_function(function)


def verify_function(function: Function) -> None:
    """Verify a single function.  Raises :class:`IRVerificationError`.

    The pass pipeline re-runs this after every pass that changed a function
    (``REPRO_VERIFY_IR``), so the walk is engineered to stay a small
    fraction of compile time: reverse postorder and the predecessor map are
    computed once and shared by every phase, and the dominator tree is only
    built when a cross-block use actually needs a dominance query.
    """
    if not function.blocks:
        raise IRVerificationError("function has no blocks",
                                  function_name=function.name)

    order = reverse_postorder(function)
    preds = function.predecessors()
    _verify_block_structure(function)
    _verify_phis(function, order, preds)
    _verify_defs_and_uses(function, order, preds)


def _fail(message: str, function: Function,
          block: Optional[BasicBlock] = None,
          inst: Optional[Instruction] = None) -> None:
    """Raise a verification error with full location context attached."""
    snippet = None
    if inst is not None:
        from .printer import _value_names, format_instruction
        try:
            snippet = format_instruction(inst, _value_names(function))
        except Exception:  # a malformed instruction must not mask the error
            snippet = repr(inst)
        if block is None:
            block = inst.block
    raise IRVerificationError(
        message,
        function_name=function.name,
        block_name=block.name if block is not None else None,
        instruction=snippet)


# --------------------------------------------------------------------------- #
# individual checks
# --------------------------------------------------------------------------- #
def _verify_block_structure(function: Function) -> None:
    for block in function.blocks:
        instructions = block.instructions
        if not instructions:
            _fail("empty basic block", function, block)
        terminator = instructions[-1]
        if not terminator.is_terminator:
            _fail(f"block does not end in a terminator "
                  f"(last opcode: {terminator.opcode})",
                  function, block, terminator)
        last = len(instructions) - 1
        for idx, inst in enumerate(instructions):
            if inst.block is not block:
                _fail(f"instruction {inst.opcode} has a stale "
                      f"parent-block link", function, block, inst)
            if inst.is_terminator and idx != last:
                _fail(f"terminator {inst.opcode} in the middle of a block",
                      function, block, inst)


def _verify_phis(function: Function, order: list[BasicBlock],
                 preds: dict) -> None:
    reachable = {id(b) for b in order}
    for block in function.blocks:
        seen_non_phi = False
        for inst in block.instructions:
            if isinstance(inst, PhiInst):
                if seen_non_phi:
                    _fail("phi after non-phi", function, block, inst)
                if id(block) not in reachable:
                    continue
                pred_ids = {id(p) for p in preds[block]}
                incoming_ids = {id(b) for _, b in inst.incoming}
                if pred_ids != incoming_ids:
                    pred_names = sorted(p.name for p in preds[block])
                    inc_names = sorted(b.name for _, b in inst.incoming)
                    _fail(f"phi incoming blocks {inc_names} do not match "
                          f"predecessors {pred_names}", function, block, inst)
            else:
                seen_non_phi = True


def _verify_defs_and_uses(function: Function, order: list[BasicBlock],
                          preds: dict) -> None:
    reachable = {id(b) for b in order}
    # The dominator tree is only needed for cross-block uses; straight-line
    # functions (and the straight-line majority of post-DCE blocks) never
    # pay for it.
    dom_tree = None

    def dominates(def_block: BasicBlock, use_block: BasicBlock) -> bool:
        nonlocal dom_tree
        if dom_tree is None:
            dom_tree = compute_dominator_tree(function, order, preds)
        return dom_tree.dominates(def_block, use_block)

    def check_phi_use(phi: PhiInst, operand: Instruction,
                      def_block: BasicBlock, block: BasicBlock) -> None:
        # Phi uses are checked against the incoming edge, not the phi's own
        # block: the incoming value must dominate the incoming block.
        for value, incoming_block in phi.incoming:
            if value is operand:
                if id(incoming_block) not in reachable:
                    continue
                if def_block is incoming_block:
                    continue
                if not dominates(def_block, incoming_block):
                    _fail(f"phi incoming value {operand.short_name()} does "
                          f"not dominate edge from {incoming_block.name}",
                          function, block, phi)

    # Single walk in reverse postorder: defs are recorded as they appear and
    # uses are checked against the defs seen so far.  On a valid function
    # only back-edge uses (phi incoming from loop latches) are seen before
    # their definition; those go onto ``pending`` and are re-checked once
    # every def is known.
    defs: dict[int, tuple] = {}  # uid -> (defining block, index in block)
    arguments = {arg.uid for arg in function.args}
    pending: list[tuple] = []

    for block in order:
        for idx, inst in enumerate(block.instructions):
            is_phi = isinstance(inst, PhiInst)
            for operand in inst.operands:
                if isinstance(operand, Instruction):
                    entry = defs.get(operand.uid)
                    if entry is None:
                        pending.append((block, idx, inst, operand))
                    elif is_phi:
                        check_phi_use(inst, operand, entry[0], block)
                    else:
                        def_block, def_idx = entry
                        if def_block is block:
                            if def_idx >= idx:
                                _fail(f"value {operand.short_name()} used "
                                      f"before its definition",
                                      function, block, inst)
                        elif not dominates(def_block, block):
                            _fail(f"definition of {operand.short_name()} "
                                  f"(in {def_block.name}) does not dominate "
                                  f"this use", function, block, inst)
                elif isinstance(operand, (Constant, Undef)):
                    pass
                elif isinstance(operand, Argument):
                    if operand.uid not in arguments:
                        _fail(f"use of foreign argument "
                              f"{operand.short_name()}",
                              function, block, inst)
                else:
                    _fail(f"operand {operand!r} is not a value",
                          function, block, inst)
            if inst.type.name != "void":  # has_result, sans property calls
                if inst.uid in defs:
                    _fail(f"value {inst.short_name()} defined more than "
                          f"once (SSA violation)", function, block, inst)
                defs[inst.uid] = (block, idx)
            if isinstance(inst, CallInst):
                _check_call(function, block, inst)

    for block, idx, inst, operand in pending:
        entry = defs.get(operand.uid)
        if entry is None:
            _fail(f"use of value {operand.short_name()} that is never "
                  f"defined (or defined in an unreachable block)",
                  function, block, inst)
        def_block, def_idx = entry
        if isinstance(inst, PhiInst):
            check_phi_use(inst, operand, def_block, block)
        elif def_block is block:
            if def_idx >= idx:
                _fail(f"value {operand.short_name()} used before its "
                      f"definition", function, block, inst)
        elif not dominates(def_block, block):
            _fail(f"definition of {operand.short_name()} (in "
                  f"{def_block.name}) does not dominate this use",
                  function, block, inst)


def _check_call(function: Function, block: BasicBlock,
                inst: CallInst) -> None:
    callee = inst.callee
    arg_types = getattr(callee, "arg_types", None)
    if arg_types is None:
        # Call to another IR function: check against its argument list.
        arg_types = tuple(arg.type for arg in callee.args)
    args = inst.operands
    if len(arg_types) != len(args):
        _fail(f"call to @{callee.name} expects {len(arg_types)} "
              f"arguments, got {len(args)}",
              function, block, inst)
    for expected, actual in zip(arg_types, args):
        if expected != actual.type:
            _fail(f"call to @{callee.name} argument type mismatch: "
                  f"expected {expected}, got {actual.type}",
                  function, block, inst)
