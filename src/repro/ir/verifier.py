"""Structural verification of IR functions and modules.

The verifier catches code-generation bugs early and is run by the test suite
on every module the query compiler produces.  It checks the same invariants
LLVM's verifier would for our instruction subset:

* every block ends in exactly one terminator and has no terminator earlier,
* phi nodes appear only at the top of a block and have exactly one incoming
  value per predecessor,
* every operand is defined in the function (SSA: defined exactly once) and
  its definition dominates the use,
* instruction result types are consistent with their operands,
* call argument counts/types match the callee's declaration.
"""

from __future__ import annotations

from ..errors import IRVerificationError
from .analysis import compute_dominator_tree, reverse_postorder
from .function import BasicBlock, Function, Module
from .instructions import CallInst, PhiInst
from .values import Argument, Constant, Instruction, Undef, Value


def verify_module(module: Module) -> None:
    """Verify every function of a module.  Raises on the first violation."""
    for function in module.functions.values():
        verify_function(function)


def verify_function(function: Function) -> None:
    """Verify a single function.  Raises :class:`IRVerificationError`."""
    if not function.blocks:
        raise IRVerificationError(f"function {function.name} has no blocks")

    _verify_block_structure(function)
    _verify_phis(function)
    _verify_defs_and_uses(function)
    _verify_calls(function)


# --------------------------------------------------------------------------- #
# individual checks
# --------------------------------------------------------------------------- #
def _verify_block_structure(function: Function) -> None:
    for block in function.blocks:
        if not block.instructions:
            raise IRVerificationError(
                f"{function.name}/{block.name}: empty basic block")
        terminator = block.instructions[-1]
        if not terminator.is_terminator:
            raise IRVerificationError(
                f"{function.name}/{block.name}: block does not end in a "
                f"terminator (last opcode: {terminator.opcode})")
        for inst in block.instructions[:-1]:
            if inst.is_terminator:
                raise IRVerificationError(
                    f"{function.name}/{block.name}: terminator "
                    f"{inst.opcode} in the middle of a block")
        for inst in block.instructions:
            if inst.block is not block:
                raise IRVerificationError(
                    f"{function.name}/{block.name}: instruction "
                    f"{inst.opcode} has a stale parent-block link")


def _verify_phis(function: Function) -> None:
    preds = function.predecessors()
    reachable = {id(b) for b in reverse_postorder(function)}
    for block in function.blocks:
        seen_non_phi = False
        for inst in block.instructions:
            if isinstance(inst, PhiInst):
                if seen_non_phi:
                    raise IRVerificationError(
                        f"{function.name}/{block.name}: phi after non-phi")
                if id(block) not in reachable:
                    continue
                pred_ids = {id(p) for p in preds[block]}
                incoming_ids = {id(b) for _, b in inst.incoming}
                if pred_ids != incoming_ids:
                    pred_names = sorted(p.name for p in preds[block])
                    inc_names = sorted(b.name for _, b in inst.incoming)
                    raise IRVerificationError(
                        f"{function.name}/{block.name}: phi incoming blocks "
                        f"{inc_names} do not match predecessors {pred_names}")
            else:
                seen_non_phi = True


def _verify_defs_and_uses(function: Function) -> None:
    order = reverse_postorder(function)
    reachable = {id(b) for b in order}
    dom_tree = compute_dominator_tree(function, order)

    defined_in: dict[int, BasicBlock] = {}
    position: dict[int, int] = {}
    for block in order:
        for idx, inst in enumerate(block.instructions):
            if inst.has_result:
                if inst.uid in defined_in:
                    raise IRVerificationError(
                        f"{function.name}: value {inst.short_name()} defined "
                        f"more than once (SSA violation)")
                defined_in[inst.uid] = block
                position[inst.uid] = idx

    arguments = {arg.uid for arg in function.args}

    def check_use(user: Instruction, operand: Value, block: BasicBlock,
                  idx: int) -> None:
        if isinstance(operand, (Constant, Undef)):
            return
        if isinstance(operand, Argument):
            if operand.uid not in arguments:
                raise IRVerificationError(
                    f"{function.name}: use of foreign argument "
                    f"{operand.short_name()}")
            return
        if not isinstance(operand, Instruction):
            raise IRVerificationError(
                f"{function.name}: operand {operand!r} is not a value")
        def_block = defined_in.get(operand.uid)
        if def_block is None:
            raise IRVerificationError(
                f"{function.name}/{block.name}: use of value "
                f"{operand.short_name()} that is never defined (or defined "
                f"in an unreachable block)")
        if isinstance(user, PhiInst):
            # Phi uses are checked against the incoming edge, not the phi's
            # own block: the incoming value must dominate the incoming block.
            for value, incoming_block in user.incoming:
                if value is operand:
                    if id(incoming_block) not in reachable:
                        continue
                    if def_block is incoming_block:
                        continue
                    if not dom_tree.dominates(def_block, incoming_block):
                        raise IRVerificationError(
                            f"{function.name}/{block.name}: phi incoming "
                            f"value {operand.short_name()} does not dominate "
                            f"edge from {incoming_block.name}")
            return
        if def_block is block:
            if position[operand.uid] >= idx:
                raise IRVerificationError(
                    f"{function.name}/{block.name}: value "
                    f"{operand.short_name()} used before its definition")
        elif not dom_tree.dominates(def_block, block):
            raise IRVerificationError(
                f"{function.name}/{block.name}: definition of "
                f"{operand.short_name()} (in {def_block.name}) does not "
                f"dominate this use")

    for block in order:
        for idx, inst in enumerate(block.instructions):
            for operand in inst.value_operands():
                check_use(inst, operand, block, idx)


def _verify_calls(function: Function) -> None:
    for inst in function.instructions():
        if not isinstance(inst, CallInst):
            continue
        callee = inst.callee
        arg_types = getattr(callee, "arg_types", None)
        if arg_types is None:
            # Call to another IR function: check against its argument list.
            arg_types = tuple(arg.type for arg in callee.args)
        if len(arg_types) != len(inst.args):
            raise IRVerificationError(
                f"{function.name}: call to @{callee.name} expects "
                f"{len(arg_types)} arguments, got {len(inst.args)}")
        for expected, actual in zip(arg_types, inst.args):
            if expected != actual.type:
                raise IRVerificationError(
                    f"{function.name}: call to @{callee.name} argument type "
                    f"mismatch: expected {expected}, got {actual.type}")
