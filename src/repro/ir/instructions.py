"""Concrete IR instructions.

The instruction set covers what the query code generator emits, which closely
follows what HyPer-style data-centric code generation produces in LLVM IR:

* integer / float arithmetic with optional overflow checks,
* comparisons, selects, casts,
* pointer arithmetic (``gep``) plus loads and stores on column buffers,
* calls into the query runtime (hash tables, aggregation, output, strings),
* phi nodes, branches and returns.
"""

from __future__ import annotations

from typing import Optional, Sequence, TYPE_CHECKING

from ..errors import IRError
from .types import IRType, i1, i64, f64, ptr, void
from .values import Instruction, Value

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .function import BasicBlock, ExternFunction


# --------------------------------------------------------------------------- #
# arithmetic / logic
# --------------------------------------------------------------------------- #
#: Binary opcodes on integers (and, where it makes sense, floats).
BINARY_OPCODES = {
    "add", "sub", "mul", "sdiv", "srem",
    "and", "or", "xor", "shl", "ashr",
    "fadd", "fsub", "fmul", "fdiv",
    "smin", "smax", "fmin", "fmax",
}

#: Opcodes that trap on a zero divisor.
DIVISION_OPCODES = {"sdiv", "srem", "fdiv"}

#: Integer opcodes that have a checked-overflow companion.
OVERFLOW_CHECKED = {"add", "sub", "mul"}


class BinaryInst(Instruction):
    """``result = <op> ty lhs, rhs`` -- two-operand arithmetic or logic."""

    __slots__ = ()

    def __init__(self, opcode: str, lhs: Value, rhs: Value, name: str = ""):
        if opcode not in BINARY_OPCODES:
            raise IRError(f"unknown binary opcode {opcode!r}")
        if lhs.type != rhs.type:
            raise IRError(
                f"binary operands must share a type: {lhs.type} vs {rhs.type}")
        expects_float = opcode.startswith("f")
        if expects_float != lhs.type.is_float:
            raise IRError(f"opcode {opcode} does not match type {lhs.type}")
        super().__init__(opcode, lhs.type, [lhs, rhs], name)

    @property
    def lhs(self) -> Value:
        return self.operands[0]

    @property
    def rhs(self) -> Value:
        return self.operands[1]

    @property
    def has_side_effects(self) -> bool:
        # Division can raise (division by zero), so DCE must keep it.
        return self.opcode in DIVISION_OPCODES


class OverflowCheckInst(Instruction):
    """``flag = ovf.<op> ty lhs, rhs`` -- 1 when ``lhs <op> rhs`` overflows.

    HyPer emits LLVM's ``llvm.sadd.with.overflow`` style intrinsics followed
    by ``extractvalue`` and a branch; this instruction is the equivalent
    overflow predicate.  The bytecode translator fuses the common
    ``op / ovf.op / condbr`` sequence into a single checked opcode
    (paper section IV-F).
    """

    __slots__ = ("checked_opcode",)

    def __init__(self, checked_opcode: str, lhs: Value, rhs: Value,
                 name: str = ""):
        if checked_opcode not in OVERFLOW_CHECKED:
            raise IRError(
                f"no overflow check available for opcode {checked_opcode!r}")
        if not lhs.type.is_integer or lhs.type != rhs.type:
            raise IRError("overflow checks require matching integer operands")
        super().__init__(f"ovf.{checked_opcode}", i1, [lhs, rhs], name)
        self.checked_opcode = checked_opcode

    @property
    def lhs(self) -> Value:
        return self.operands[0]

    @property
    def rhs(self) -> Value:
        return self.operands[1]


#: Comparison predicates (signed integer and ordered float).
COMPARE_PREDICATES = {"eq", "ne", "lt", "le", "gt", "ge"}


class CompareInst(Instruction):
    """``flag = icmp/fcmp <pred> ty lhs, rhs``."""

    __slots__ = ("predicate",)

    def __init__(self, predicate: str, lhs: Value, rhs: Value, name: str = ""):
        if predicate not in COMPARE_PREDICATES:
            raise IRError(f"unknown comparison predicate {predicate!r}")
        if lhs.type != rhs.type:
            raise IRError(
                f"comparison operands must share a type: {lhs.type} vs {rhs.type}")
        opcode = "fcmp" if lhs.type.is_float else "icmp"
        super().__init__(opcode, i1, [lhs, rhs], name)
        self.predicate = predicate

    @property
    def lhs(self) -> Value:
        return self.operands[0]

    @property
    def rhs(self) -> Value:
        return self.operands[1]


#: Cast opcodes: integer<->float conversions and integer width changes.
CAST_OPCODES = {"sitofp", "fptosi", "zext", "sext", "trunc"}


class CastInst(Instruction):
    """``result = <cast> src to dst_type``."""

    __slots__ = ()

    def __init__(self, opcode: str, value: Value, to_type: IRType,
                 name: str = ""):
        if opcode not in CAST_OPCODES:
            raise IRError(f"unknown cast opcode {opcode!r}")
        if opcode == "sitofp" and not (value.type.is_integer and to_type.is_float):
            raise IRError("sitofp requires an integer source and float target")
        if opcode == "fptosi" and not (value.type.is_float and to_type.is_integer):
            raise IRError("fptosi requires a float source and integer target")
        if opcode in ("zext", "sext", "trunc"):
            if not (value.type.is_integer and to_type.is_integer):
                raise IRError(f"{opcode} requires integer source and target")
        super().__init__(opcode, to_type, [value], name)

    @property
    def value(self) -> Value:
        return self.operands[0]


class SelectInst(Instruction):
    """``result = select cond, then_value, else_value``."""

    __slots__ = ()

    def __init__(self, cond: Value, then_value: Value, else_value: Value,
                 name: str = ""):
        if not cond.type.is_bool:
            raise IRError("select condition must be i1")
        if then_value.type != else_value.type:
            raise IRError("select arms must share a type")
        super().__init__("select", then_value.type,
                         [cond, then_value, else_value], name)

    @property
    def condition(self) -> Value:
        return self.operands[0]

    @property
    def then_value(self) -> Value:
        return self.operands[1]

    @property
    def else_value(self) -> Value:
        return self.operands[2]


# --------------------------------------------------------------------------- #
# memory
# --------------------------------------------------------------------------- #
class GEPInst(Instruction):
    """``result = gep base, index`` -- pointer arithmetic on a column buffer.

    The runtime represents pointers as ``(buffer, offset)`` pairs; ``gep``
    produces a new pointer displaced by ``index`` elements.  Like LLVM's
    ``getelementptr`` it performs no memory access itself, which is what makes
    the GEP+load / GEP+store fusion of paper section IV-F possible.
    """

    __slots__ = ()

    def __init__(self, base: Value, index: Value, name: str = ""):
        if not base.type.is_pointer:
            raise IRError("gep base must be a pointer")
        if not index.type.is_integer:
            raise IRError("gep index must be an integer")
        super().__init__("gep", ptr, [base, index], name)

    @property
    def base(self) -> Value:
        return self.operands[0]

    @property
    def index(self) -> Value:
        return self.operands[1]


class LoadInst(Instruction):
    """``result = load <ty> pointer`` -- read an element from a buffer."""

    __slots__ = ()

    def __init__(self, ty: IRType, pointer: Value, name: str = ""):
        if not pointer.type.is_pointer:
            raise IRError("load requires a pointer operand")
        if ty.is_void:
            raise IRError("cannot load void")
        super().__init__("load", ty, [pointer], name)

    @property
    def pointer(self) -> Value:
        return self.operands[0]


class StoreInst(Instruction):
    """``store value, pointer`` -- write an element into a buffer."""

    __slots__ = ()

    def __init__(self, value: Value, pointer: Value):
        if not pointer.type.is_pointer:
            raise IRError("store requires a pointer operand")
        super().__init__("store", void, [value, pointer])

    @property
    def value(self) -> Value:
        return self.operands[0]

    @property
    def pointer(self) -> Value:
        return self.operands[1]

    @property
    def has_side_effects(self) -> bool:
        return True


class CallInst(Instruction):
    """``result = call @name(args...)`` -- call into the query runtime.

    Calls always target *extern* functions registered with the runtime (hash
    table operations, output emission, string predicates, ...), or another IR
    function of the same module (used by ``queryStart`` to invoke pipeline
    worker functions when running without the adaptive scheduler).
    """

    __slots__ = ("callee",)

    def __init__(self, callee, args: Sequence[Value], name: str = ""):
        # ``callee`` is an ExternFunction or Function; import avoided to keep
        # module load order simple.
        super().__init__("call", callee.return_type, list(args), name)
        self.callee = callee

    @property
    def args(self) -> list[Value]:
        return list(self.operands)

    @property
    def has_side_effects(self) -> bool:
        return getattr(self.callee, "has_side_effects", True)


# --------------------------------------------------------------------------- #
# control flow
# --------------------------------------------------------------------------- #
class PhiInst(Instruction):
    """``result = phi ty [value, pred_block]...``."""

    __slots__ = ("incoming",)

    def __init__(self, ty: IRType, name: str = ""):
        super().__init__("phi", ty, [], name)
        #: list of ``(value, block)`` pairs.
        self.incoming: list[tuple[Value, "BasicBlock"]] = []

    def add_incoming(self, value: Value, block: "BasicBlock") -> None:
        if value.type != self.type and not isinstance(value, _UndefLike):
            if value.type != self.type:
                raise IRError(
                    f"phi incoming type {value.type} does not match {self.type}")
        self.incoming.append((value, block))
        self.operands.append(value)

    def incoming_for(self, block: "BasicBlock") -> Value:
        for value, pred in self.incoming:
            if pred is block:
                return value
        raise IRError(f"phi has no incoming value for block {block.name}")

    def replace_operand(self, old: Value, new: Value) -> int:
        count = super().replace_operand(old, new)
        if count:
            self.incoming = [
                (new if value is old else value, block)
                for value, block in self.incoming
            ]
        return count


class _UndefLike:
    """Marker mixin placeholder (kept for forward compatibility)."""


class BranchInst(Instruction):
    """``br target`` -- unconditional jump."""

    __slots__ = ("target",)
    is_terminator = True

    def __init__(self, target: "BasicBlock"):
        super().__init__("br", void, [])
        self.target = target

    def successors(self) -> list["BasicBlock"]:
        return [self.target]


class CondBranchInst(Instruction):
    """``condbr cond, true_target, false_target``."""

    __slots__ = ("true_target", "false_target")
    is_terminator = True

    def __init__(self, cond: Value, true_target: "BasicBlock",
                 false_target: "BasicBlock"):
        if not cond.type.is_bool:
            raise IRError("condbr condition must be i1")
        super().__init__("condbr", void, [cond])
        self.true_target = true_target
        self.false_target = false_target

    @property
    def condition(self) -> Value:
        return self.operands[0]

    def successors(self) -> list["BasicBlock"]:
        return [self.true_target, self.false_target]


class ReturnInst(Instruction):
    """``ret`` or ``ret value``."""

    __slots__ = ()
    is_terminator = True

    def __init__(self, value: Optional[Value] = None):
        super().__init__("ret", void, [] if value is None else [value])

    @property
    def value(self) -> Optional[Value]:
        return self.operands[0] if self.operands else None

    def successors(self) -> list["BasicBlock"]:
        return []


class UnreachableInst(Instruction):
    """Marks a block that can never be reached (after a runtime error call)."""

    __slots__ = ()
    is_terminator = True

    def __init__(self):
        super().__init__("unreachable", void, [])

    def successors(self) -> list["BasicBlock"]:
        return []
