"""IR-level types.

The type system intentionally mirrors the small subset of LLVM types a query
compiler needs: a boolean, a few integer widths, a double, an opaque pointer
and void.  Pointers are untyped (like LLVM's modern opaque pointers); what a
pointer refers to -- a column buffer, a hash table, a string -- is known to the
runtime functions operating on it.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import IRError


@dataclass(frozen=True)
class IRType:
    """A primitive IR type.

    Instances are interned as module-level singletons (``i64``, ``f64``, ...);
    identity comparison therefore works, but equality is defined on the name
    so that deserialised or copied types still compare equal.
    """

    name: str
    bits: int
    is_float: bool = False
    is_pointer: bool = False

    @property
    def is_void(self) -> bool:
        return self.name == "void"

    @property
    def is_integer(self) -> bool:
        return not (self.is_float or self.is_pointer or self.is_void)

    @property
    def is_bool(self) -> bool:
        return self.name == "i1"

    def __str__(self) -> str:
        return self.name

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"IRType({self.name})"


#: 1-bit boolean (result of comparisons, branch conditions).
i1 = IRType("i1", 1)
#: 8-bit integer (rarely used directly; kept for width-dispatch tests).
i8 = IRType("i8", 8)
#: 32-bit integer.
i32 = IRType("i32", 32)
#: 64-bit integer -- the workhorse type for keys, dates, decimals.
i64 = IRType("i64", 64)
#: double precision float.
f64 = IRType("f64", 64, is_float=True)
#: opaque pointer (column buffers, hash tables, strings, query state).
ptr = IRType("ptr", 64, is_pointer=True)
#: void -- function return type only.
void = IRType("void", 0)

#: All interned types, by name.
ALL_TYPES = {t.name: t for t in (i1, i8, i32, i64, f64, ptr, void)}

#: Integer types that participate in arithmetic, from narrowest to widest.
INTEGER_TYPES = (i1, i8, i32, i64)


def type_from_name(name: str) -> IRType:
    """Look up an interned type by its textual name (``"i64"``, ``"ptr"``...)."""
    try:
        return ALL_TYPES[name]
    except KeyError as exc:
        raise IRError(f"unknown IR type: {name!r}") from exc


def integer_range(ty: IRType) -> tuple[int, int]:
    """Return the inclusive (min, max) value range of a signed integer type."""
    if not ty.is_integer:
        raise IRError(f"{ty} is not an integer type")
    if ty.is_bool:
        return (0, 1)
    half = 1 << (ty.bits - 1)
    return (-half, half - 1)


def wrap_integer(value: int, ty: IRType) -> int:
    """Wrap ``value`` into the two's-complement range of ``ty``.

    Used by constant folding and by the interpreters to give unchecked
    arithmetic the same wrap-around semantics machine code would have.
    """
    if not ty.is_integer:
        raise IRError(f"cannot wrap non-integer type {ty}")
    if ty.is_bool:
        return value & 1
    mask = (1 << ty.bits) - 1
    value &= mask
    if value >= (1 << (ty.bits - 1)):
        value -= 1 << ty.bits
    return value
