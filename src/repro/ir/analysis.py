"""Control-flow analyses shared by the optimizer and the bytecode translator.

This module implements the infrastructure the paper's linear-time liveness
algorithm (Section IV-D, Fig. 11) relies on:

* reverse-postorder labelling of basic blocks,
* dominator-tree construction (Cooper/Harvey/Kennedy iterative algorithm,
  which runs in effectively linear time on reducible query CFGs),
* pre-/post-order numbering of the dominator tree so that ancestor queries
  answer in O(1) (paper Fig. 12),
* natural-loop detection via back edges whose target dominates their source,
  with innermost-loop association computed through a union-find structure
  with path compression.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import IRError
from .function import BasicBlock, Function


# --------------------------------------------------------------------------- #
# block ordering
# --------------------------------------------------------------------------- #
def reverse_postorder(function: Function) -> list[BasicBlock]:
    """Return the reachable blocks of ``function`` in reverse postorder.

    Reverse postorder places every block after all of its forward-edge
    predecessors, which the paper uses both as the block labelling for live
    ranges and as the iteration order for the dominator computation.  The
    traversal is iterative (queries can produce thousands of blocks, which
    would overflow Python's recursion limit).
    """
    if not function.blocks:
        return []
    entry = function.entry_block
    visited: set[int] = set()
    postorder: list[BasicBlock] = []
    # Explicit stack of (block, iterator over successors).
    stack: list[tuple[BasicBlock, int]] = [(entry, 0)]
    visited.add(id(entry))
    succ_cache: dict[int, list[BasicBlock]] = {}
    while stack:
        block, idx = stack.pop()
        succs = succ_cache.get(id(block))
        if succs is None:
            succs = block.successors()
            succ_cache[id(block)] = succs
        if idx < len(succs):
            stack.append((block, idx + 1))
            succ = succs[idx]
            if id(succ) not in visited:
                visited.add(id(succ))
                stack.append((succ, 0))
        else:
            postorder.append(block)
    postorder.reverse()
    return postorder


# --------------------------------------------------------------------------- #
# dominator tree
# --------------------------------------------------------------------------- #
@dataclass
class DominatorTree:
    """Immediate-dominator tree with O(1) ancestor queries.

    ``pre``/``post`` hold the pre- and post-order interval numbers of each
    block within the dominator tree; block A dominates block B iff A's
    interval encloses B's (paper Fig. 12).
    """

    order: List[BasicBlock]
    rpo_index: Dict[int, int]
    idom: Dict[int, Optional[BasicBlock]]
    children: Dict[int, List[BasicBlock]]
    pre: Dict[int, int] = field(default_factory=dict)
    post: Dict[int, int] = field(default_factory=dict)

    def immediate_dominator(self, block: BasicBlock) -> Optional[BasicBlock]:
        return self.idom.get(id(block))

    def dominates(self, a: BasicBlock, b: BasicBlock) -> bool:
        """True when ``a`` dominates ``b`` (reflexively)."""
        return (self.pre[id(a)] <= self.pre[id(b)]
                and self.post[id(b)] <= self.post[id(a)])

    def strictly_dominates(self, a: BasicBlock, b: BasicBlock) -> bool:
        return a is not b and self.dominates(a, b)

    def dominator_depth(self, block: BasicBlock) -> int:
        depth = 0
        current = self.idom.get(id(block))
        while current is not None:
            depth += 1
            current = self.idom.get(id(current))
        return depth


def compute_dominator_tree(function: Function,
                           order: Optional[list[BasicBlock]] = None,
                           preds: Optional[dict] = None) -> DominatorTree:
    """Compute the dominator tree of ``function``.

    Uses the Cooper-Harvey-Kennedy "engineered" iterative algorithm driven by
    reverse postorder.  On the reducible CFGs produced by query code
    generation it converges in two passes, giving effectively linear runtime,
    which is what the paper's translation budget requires.
    """
    order = order if order is not None else reverse_postorder(function)
    if not order:
        raise IRError(f"function {function.name} has no reachable blocks")
    rpo_index = {id(block): idx for idx, block in enumerate(order)}
    if preds is None:
        preds = function.predecessors()

    entry = order[0]
    idom: dict[int, Optional[BasicBlock]] = {id(entry): entry}

    def intersect(b1: BasicBlock, b2: BasicBlock) -> BasicBlock:
        finger1, finger2 = b1, b2
        while finger1 is not finger2:
            while rpo_index[id(finger1)] > rpo_index[id(finger2)]:
                finger1 = idom[id(finger1)]  # type: ignore[assignment]
            while rpo_index[id(finger2)] > rpo_index[id(finger1)]:
                finger2 = idom[id(finger2)]  # type: ignore[assignment]
        return finger1

    changed = True
    while changed:
        changed = False
        for block in order[1:]:
            # Pick the first processed predecessor as the initial idom.
            new_idom: Optional[BasicBlock] = None
            for pred in preds[block]:
                if id(pred) in idom:
                    if new_idom is None:
                        new_idom = pred
                    else:
                        new_idom = intersect(pred, new_idom)
            if new_idom is None:
                # Unreachable predecessor-less block (shouldn't happen for
                # blocks in RPO), skip.
                continue
            if idom.get(id(block)) is not new_idom:
                idom[id(block)] = new_idom
                changed = True

    # Entry's idom is conventionally None (it has no strict dominator).
    idom[id(entry)] = None

    children: dict[int, list[BasicBlock]] = {id(b): [] for b in order}
    for block in order:
        parent = idom.get(id(block))
        if parent is not None:
            children[id(parent)].append(block)

    tree = DominatorTree(order=order, rpo_index=rpo_index, idom=idom,
                         children=children)
    _number_dominator_tree(tree, entry)
    return tree


def _number_dominator_tree(tree: DominatorTree, entry: BasicBlock) -> None:
    """Assign pre/post-order interval numbers to the dominator tree."""
    counter = 0
    stack: list[tuple[BasicBlock, bool]] = [(entry, False)]
    while stack:
        block, processed = stack.pop()
        if processed:
            counter += 1
            tree.post[id(block)] = counter
            continue
        counter += 1
        tree.pre[id(block)] = counter
        stack.append((block, True))
        # Push children in reverse so they are numbered in RPO order.
        for child in reversed(tree.children[id(block)]):
            stack.append((child, False))


# --------------------------------------------------------------------------- #
# loops
# --------------------------------------------------------------------------- #
@dataclass
class Loop:
    """A natural loop: its head block and the span of blocks it covers.

    Following the paper, loops are represented by their head plus the
    contiguous reverse-postorder interval ``[first_index, last_index]`` they
    cover, which is what the live-range extension needs.
    """

    head: BasicBlock
    blocks: set[int]
    first_index: int
    last_index: int
    depth: int = 0
    parent: Optional["Loop"] = None

    def contains_block_index(self, index: int) -> bool:
        return self.first_index <= index <= self.last_index


class _DisjointSet:
    """Union-find with path compression (paper: innermost-loop association)."""

    def __init__(self):
        self._parent: dict[int, int] = {}

    def make_set(self, item: int) -> None:
        self._parent.setdefault(item, item)

    def find(self, item: int) -> int:
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        # Path compression.
        while self._parent[item] != root:
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, child: int, parent: int) -> None:
        self._parent[self.find(child)] = self.find(parent)


@dataclass
class LoopInfo:
    """Loop structure of a function, as used by the liveness computation."""

    function: Function
    order: List[BasicBlock]
    rpo_index: Dict[int, int]
    dom_tree: DominatorTree
    loops: List[Loop]
    #: Innermost loop of each block (by block id); every block belongs at
    #: least to the whole-function pseudo loop.
    innermost: Dict[int, Loop] = field(default_factory=dict)

    @property
    def root_loop(self) -> Loop:
        """The pseudo loop covering the whole function body."""
        return self.loops[0]

    def loop_of(self, block: BasicBlock) -> Loop:
        return self.innermost[id(block)]

    def enclosing_chain(self, loop: Loop) -> list[Loop]:
        """The loop itself plus all its ancestors up to the root."""
        chain = [loop]
        while loop.parent is not None:
            loop = loop.parent
            chain.append(loop)
        return chain

    def common_loop(self, loops: list[Loop]) -> Loop:
        """The innermost loop containing all given loops (paper's C_v)."""
        if not loops:
            return self.root_loop
        chains = [set(id(l) for l in self.enclosing_chain(loop))
                  for loop in loops]
        common_ids = set.intersection(*chains)
        # The innermost common ancestor is the one with the largest depth.
        candidates = []
        for loop in self.enclosing_chain(loops[0]):
            if id(loop) in common_ids:
                candidates.append(loop)
        return max(candidates, key=lambda l: l.depth)

    def outermost_below(self, outer: Loop, block: BasicBlock) -> Loop:
        """The outermost loop strictly below ``outer`` that contains ``block``.

        Used by the paper's live-range extension: when a value is used inside
        a nested loop, its lifetime is extended to the whole outermost loop
        below the common loop ``C_v`` that contains the use.
        """
        chain = []
        loop = self.loop_of(block)
        while loop is not None and loop is not outer:
            chain.append(loop)
            loop = loop.parent
        if loop is None:
            # ``block`` is not nested below ``outer``; fall back to its own
            # innermost loop (defensive, should not happen for valid CFGs).
            return self.loop_of(block)
        if not chain:
            return outer
        return chain[-1]


def find_loops(function: Function,
               order: Optional[list[BasicBlock]] = None,
               dom_tree: Optional[DominatorTree] = None) -> LoopInfo:
    """Identify natural loops following the paper's first phase (Fig. 11).

    Steps: label blocks in reverse postorder, build the dominator tree, mark
    the function entry as a pseudo loop head, mark the target of every back
    edge (jump to a dominator) as a loop head, then associate every block with
    its nearest dominating loop head using union-find with path compression.
    """
    order = order if order is not None else reverse_postorder(function)
    dom_tree = dom_tree if dom_tree is not None else compute_dominator_tree(
        function, order)
    rpo_index = {id(block): idx for idx, block in enumerate(order)}

    # --- mark loop heads ---------------------------------------------------
    entry = order[0]
    loop_heads: dict[int, BasicBlock] = {id(entry): entry}
    back_edges: list[tuple[BasicBlock, BasicBlock]] = []
    for block in order:
        for succ in block.successors():
            if id(succ) in rpo_index and dom_tree.dominates(succ, block):
                loop_heads[id(succ)] = succ
                back_edges.append((block, succ))

    # --- associate blocks with their nearest dominating loop head ----------
    # Walk blocks in reverse postorder; each block's loop head is itself if it
    # is a head, otherwise the loop head of its immediate dominator (with
    # union-find path compression so repeated lookups stay cheap).
    dsu = _DisjointSet()
    head_of_block: dict[int, BasicBlock] = {}
    for block in order:
        dsu.make_set(id(block))
        if id(block) in loop_heads:
            head_of_block[id(block)] = block
        else:
            idom = dom_tree.immediate_dominator(block)
            assert idom is not None
            dsu.union(id(block), id(idom))
            head_root = dsu.find(id(block))
            # The representative's own head is the nearest dominating head.
            head_of_block[id(block)] = head_of_block[head_root]

    # --- build Loop objects -------------------------------------------------
    loops_by_head: dict[int, Loop] = {}
    # Root pseudo-loop covers the whole function.
    root = Loop(head=entry, blocks=set(id(b) for b in order),
                first_index=0, last_index=len(order) - 1, depth=0, parent=None)
    loops_by_head[id(entry)] = root

    # For real loops, the block span is [head_index, max index of any block
    # that can reach the head via the back edge] -- computed from the natural
    # loop membership (all blocks that reach the back-edge source without
    # passing through the head).
    for tail, head in back_edges:
        if head is entry:
            continue  # already covered by the root pseudo loop
        loop = loops_by_head.get(id(head))
        members = _natural_loop_members(head, tail, function)
        indices = [rpo_index[m] for m in members if m in
                   {id(b) for b in order} or True]
        member_indices = [rpo_index[bid] for bid in members if bid in rpo_index]
        first = min(member_indices + [rpo_index[id(head)]])
        last = max(member_indices + [rpo_index[id(head)]])
        if loop is None:
            loop = Loop(head=head, blocks=set(members), first_index=first,
                        last_index=last)
            loops_by_head[id(head)] = loop
        else:
            loop.blocks |= set(members)
            loop.first_index = min(loop.first_index, first)
            loop.last_index = max(loop.last_index, last)

    # --- nesting: parent of a loop is the innermost loop containing its head
    # (other than itself).  Determined via the nearest dominating loop head of
    # the head's immediate dominator.
    real_loops = [l for key, l in loops_by_head.items() if l is not root]
    # Sort loops by span size descending so parents are assigned before
    # children when computing depth.
    real_loops.sort(key=lambda l: -(l.last_index - l.first_index))
    for loop in real_loops:
        idom = dom_tree.immediate_dominator(loop.head)
        parent = root
        if idom is not None:
            parent_head = head_of_block[id(idom)]
            parent = loops_by_head.get(id(parent_head), root)
            # Guard against self-parenting on irreducible-ish shapes.
            if parent is loop:
                parent = root
        loop.parent = parent
        loop.depth = parent.depth + 1

    # --- innermost loop per block -------------------------------------------
    innermost: dict[int, Loop] = {}
    for block in order:
        head = head_of_block[id(block)]
        innermost[id(block)] = loops_by_head.get(id(head), root)

    all_loops = [root] + real_loops
    info = LoopInfo(function=function, order=order, rpo_index=rpo_index,
                    dom_tree=dom_tree, loops=all_loops, innermost=innermost)
    return info


def _natural_loop_members(head: BasicBlock, tail: BasicBlock,
                          function: Function) -> set[int]:
    """Blocks of the natural loop defined by back edge ``tail -> head``.

    Standard worklist walk over predecessors starting from the back edge
    source, stopping at the head.  Returns block ids.
    """
    preds = function.predecessors()
    members: set[int] = {id(head), id(tail)}
    worklist = [tail]
    while worklist:
        block = worklist.pop()
        for pred in preds[block]:
            if id(pred) not in members:
                members.add(id(pred))
                worklist.append(pred)
    return members


def loop_nesting_depths(function: Function) -> dict[str, int]:
    """Convenience: map block name -> loop nesting depth (0 = not in a loop)."""
    info = find_loops(function)
    return {block.name: info.loop_of(block).depth for block in info.order}
