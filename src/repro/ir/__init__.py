"""SSA intermediate representation modelled on LLVM IR.

The paper's system (HyPer) generates LLVM IR for every query and then either
compiles it to machine code or, with this paper's contribution, translates it
into a compact register-machine bytecode.  This package provides the
equivalent IR for the Python reproduction:

* typed SSA values (:mod:`repro.ir.values`),
* a fixed set of instructions that mirrors the subset of LLVM IR a query
  compiler actually emits (:mod:`repro.ir.instructions`),
* functions made of basic blocks and a module container
  (:mod:`repro.ir.function`),
* a builder API used by the query code generator (:mod:`repro.ir.builder`),
* CFG analyses -- reverse postorder, dominator tree, natural loops --
  shared by the optimizer passes and by the bytecode translator's
  linear-time liveness algorithm (:mod:`repro.ir.analysis`),
* a structural verifier and a textual printer.
"""

from .types import IRType, i1, i8, i32, i64, f64, ptr, void
from .values import Value, Constant, Argument, Instruction, Undef
from .instructions import (
    BinaryInst,
    OverflowCheckInst,
    CompareInst,
    CastInst,
    SelectInst,
    GEPInst,
    LoadInst,
    StoreInst,
    CallInst,
    PhiInst,
    BranchInst,
    CondBranchInst,
    ReturnInst,
    UnreachableInst,
)
from .function import BasicBlock, Function, Module, ExternFunction
from .builder import IRBuilder
from .verifier import verify_function, verify_module
from .printer import print_function, print_module
from .analysis import (
    reverse_postorder,
    compute_dominator_tree,
    DominatorTree,
    LoopInfo,
    find_loops,
)

__all__ = [
    "IRType", "i1", "i8", "i32", "i64", "f64", "ptr", "void",
    "Value", "Constant", "Argument", "Instruction", "Undef",
    "BinaryInst", "OverflowCheckInst", "CompareInst", "CastInst",
    "SelectInst", "GEPInst", "LoadInst", "StoreInst", "CallInst", "PhiInst",
    "BranchInst", "CondBranchInst", "ReturnInst", "UnreachableInst",
    "BasicBlock", "Function", "Module", "ExternFunction",
    "IRBuilder",
    "verify_function", "verify_module",
    "print_function", "print_module",
    "reverse_postorder", "compute_dominator_tree", "DominatorTree",
    "LoopInfo", "find_loops",
]
