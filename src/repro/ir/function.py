"""Basic blocks, functions, extern declarations and the module container."""

from __future__ import annotations

import itertools
from typing import Callable, Iterable, Iterator, Optional, Sequence

from ..errors import IRError
from .types import IRType, void
from .values import Argument, Instruction, Value
from .instructions import BranchInst, CondBranchInst, PhiInst


class BasicBlock:
    """A straight-line sequence of instructions ending in one terminator."""

    _name_counter = itertools.count()

    __slots__ = ("name", "instructions", "function")

    def __init__(self, name: str = "", function: Optional["Function"] = None):
        self.name = name or f"bb{next(self._name_counter)}"
        self.instructions: list[Instruction] = []
        self.function = function

    # ------------------------------------------------------------------ #
    # structure
    # ------------------------------------------------------------------ #
    def append(self, inst: Instruction) -> Instruction:
        if self.is_terminated:
            raise IRError(
                f"cannot append to already-terminated block {self.name}")
        inst.block = self
        self.instructions.append(inst)
        return inst

    def insert_before_terminator(self, inst: Instruction) -> Instruction:
        """Insert a non-terminator instruction right before the terminator."""
        if inst.is_terminator:
            raise IRError("cannot insert a second terminator")
        if not self.is_terminated:
            return self.append(inst)
        inst.block = self
        self.instructions.insert(len(self.instructions) - 1, inst)
        return inst

    @property
    def terminator(self) -> Optional[Instruction]:
        if self.instructions and self.instructions[-1].is_terminator:
            return self.instructions[-1]
        return None

    @property
    def is_terminated(self) -> bool:
        return self.terminator is not None

    def successors(self) -> list["BasicBlock"]:
        term = self.terminator
        if term is None:
            return []
        return term.successors()  # type: ignore[attr-defined]

    def phis(self) -> list[PhiInst]:
        return [inst for inst in self.instructions if isinstance(inst, PhiInst)]

    def non_phi_instructions(self) -> list[Instruction]:
        return [inst for inst in self.instructions
                if not isinstance(inst, PhiInst)]

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __len__(self) -> int:
        return len(self.instructions)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<BasicBlock {self.name} ({len(self.instructions)} insts)>"


class ExternFunction:
    """A declaration of a runtime (C++-equivalent) function callable from IR.

    ``python_impl`` is the Python callable implementing the runtime function;
    it receives already-decoded operand values.  Externs with
    ``has_side_effects=False`` (pure string predicates, hash computations) may
    be eliminated by DCE and deduplicated by CSE.
    """

    __slots__ = ("name", "arg_types", "return_type", "python_impl",
                 "has_side_effects")

    def __init__(self, name: str, arg_types: Sequence[IRType],
                 return_type: IRType,
                 python_impl: Optional[Callable] = None,
                 has_side_effects: bool = True):
        self.name = name
        self.arg_types = tuple(arg_types)
        self.return_type = return_type
        self.python_impl = python_impl
        self.has_side_effects = has_side_effects

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        args = ", ".join(str(t) for t in self.arg_types)
        return f"<extern {self.return_type} @{self.name}({args})>"


class Function:
    """An IR function: arguments plus an ordered list of basic blocks.

    The query code generator produces one ``queryStart`` function and one
    worker function per pipeline (paper Fig. 4).  Worker functions always have
    the signature ``void worker(ptr state, i64 morsel_begin, i64 morsel_end)``.
    """

    __slots__ = ("name", "args", "return_type", "blocks", "module")

    def __init__(self, name: str, arg_types: Sequence[IRType],
                 arg_names: Sequence[str], return_type: IRType = void):
        if len(arg_types) != len(arg_names):
            raise IRError("argument type/name count mismatch")
        self.name = name
        self.args = [Argument(ty, arg_name, idx)
                     for idx, (ty, arg_name) in enumerate(zip(arg_types,
                                                              arg_names))]
        self.return_type = return_type
        self.blocks: list[BasicBlock] = []
        self.module: Optional["Module"] = None

    # ------------------------------------------------------------------ #
    # blocks
    # ------------------------------------------------------------------ #
    @property
    def entry_block(self) -> BasicBlock:
        if not self.blocks:
            raise IRError(f"function {self.name} has no blocks")
        return self.blocks[0]

    def add_block(self, name: str = "") -> BasicBlock:
        block = BasicBlock(name, function=self)
        self.blocks.append(block)
        return block

    def remove_block(self, block: BasicBlock) -> None:
        self.blocks.remove(block)

    def block_by_name(self, name: str) -> BasicBlock:
        for block in self.blocks:
            if block.name == name:
                return block
        raise IRError(f"no block named {name!r} in function {self.name}")

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    def instructions(self) -> Iterator[Instruction]:
        for block in self.blocks:
            yield from block.instructions

    def instruction_count(self) -> int:
        """Total number of instructions (the paper's query-size metric)."""
        return sum(len(block) for block in self.blocks)

    def predecessors(self) -> dict[BasicBlock, list[BasicBlock]]:
        """Map each block to the list of blocks that branch to it."""
        preds: dict[BasicBlock, list[BasicBlock]] = {b: [] for b in self.blocks}
        for block in self.blocks:
            for succ in block.successors():
                preds[succ].append(block)
        return preds

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<Function {self.name} ({len(self.blocks)} blocks, "
                f"{self.instruction_count()} insts)>")


class Module:
    """A compilation unit: the functions generated for one query."""

    __slots__ = ("name", "functions", "externs")

    def __init__(self, name: str = "query"):
        self.name = name
        self.functions: dict[str, Function] = {}
        self.externs: dict[str, ExternFunction] = {}

    def add_function(self, function: Function) -> Function:
        if function.name in self.functions:
            raise IRError(f"duplicate function {function.name!r}")
        function.module = self
        self.functions[function.name] = function
        return function

    def get_function(self, name: str) -> Function:
        try:
            return self.functions[name]
        except KeyError as exc:
            raise IRError(f"no function named {name!r}") from exc

    def declare_extern(self, extern: ExternFunction) -> ExternFunction:
        existing = self.externs.get(extern.name)
        if existing is not None:
            return existing
        self.externs[extern.name] = extern
        return extern

    def get_extern(self, name: str) -> ExternFunction:
        try:
            return self.externs[name]
        except KeyError as exc:
            raise IRError(f"no extern named {name!r}") from exc

    def instruction_count(self) -> int:
        """Total instruction count over all functions (paper Fig. 6 x-axis)."""
        return sum(f.instruction_count() for f in self.functions.values())

    def worker_functions(self) -> list[Function]:
        """The pipeline worker functions, in generation order."""
        return [f for name, f in self.functions.items()
                if name.startswith("worker")]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<Module {self.name}: {len(self.functions)} functions, "
                f"{self.instruction_count()} insts>")
