"""Plan/artifact caching for repeated queries.

Compilation latency dominates short queries (paper Table I / Fig. 1), so a
system serving repeated query traffic must not pay parsing, semantic
analysis, planning, code generation and tier compilation on every call.
:class:`PlanCache` is a small LRU cache mapping *normalized* SQL text to
:class:`repro.prepared.PreparedQuery` entries; :meth:`repro.engine.Database.execute`
consults it transparently and :meth:`repro.engine.Database.prepare_query`
exposes it explicitly.

Entries are invalidated through the catalog's version counters: every DDL
operation and every ``insert`` bumps the version of the affected table, and
an entry whose referenced-table versions no longer match is dropped on
lookup (a stale plan could carry outdated cardinality estimates, and a
dropped/recreated table would leave the generated code pointing at orphaned
column buffers).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional


#: Clauses whose literals auto-parameterization must leave alone: GROUP BY /
#: ORDER BY integers are positional references and LIMIT takes a syntactic
#: integer, so extracting them would change query semantics (or break the
#: parser).
_SKIP_CLAUSES = {"group", "order", "limit"}

#: Keywords whose following literal is syntactically required to stay a
#: literal: DATE '...' / INTERVAL '...' values and LIKE patterns.
_SKIP_AFTER_KEYWORDS = {"date", "interval", "like"}

#: Top-level clause keywords tracked while scanning for literals.
_CLAUSE_KEYWORDS = {"select", "from", "where", "group", "having", "order",
                    "limit"}


def auto_parameterize_sql(sql: str) -> Optional[tuple[str, list]]:
    """Extract literal constants into synthetic positional parameters.

    Returns ``(parameterized_sql, values)`` where every extracted literal is
    replaced by ``?`` (in lexical order), or ``None`` when the statement is
    not auto-parameterizable: it already contains explicit parameters, it
    contains no extractable literal, or it does not even lex (the caller
    then executes the original text so the real error surfaces).

    The transformation is purely lexical but deliberately conservative, so
    the rewritten statement is guaranteed to bind to the *same* plan shape:

    * literals in GROUP BY / ORDER BY / LIMIT clauses are kept (positional
      references and the parser's literal LIMIT),
    * literals right after ``DATE`` / ``INTERVAL`` / ``LIKE`` are kept (the
      parser and binder require those to be literals),
    * literals preceded by a unary minus are kept (``-3`` must keep folding
      to one negative literal).
    """
    from .sqlparser.lexer import TokenType, tokenize
    from .errors import LexerError

    try:
        tokens = tokenize(sql)
    except LexerError:
        return None

    values: list = []
    spans: list[tuple[int, int]] = []
    clause: Optional[str] = None
    depth = 0
    for index, token in enumerate(tokens):
        if token.type is TokenType.PARAMETER:
            return None  # already parameterized; never mix
        if token.type is TokenType.PUNCTUATION:
            if token.value == "(":
                depth += 1
            elif token.value == ")":
                depth = max(depth - 1, 0)
            continue
        # Clause keywords only count at the top level: the FROM inside
        # ``extract(year from d)`` must not end an ORDER BY clause.
        if token.type is TokenType.KEYWORD \
                and token.value in _CLAUSE_KEYWORDS and depth == 0:
            clause = token.value
            continue
        if token.type not in (TokenType.INTEGER, TokenType.FLOAT,
                              TokenType.STRING):
            continue
        if clause in _SKIP_CLAUSES:
            continue
        previous = tokens[index - 1] if index > 0 else None
        if previous is not None:
            if previous.type is TokenType.KEYWORD \
                    and previous.value in _SKIP_AFTER_KEYWORDS:
                continue
            if previous.type is TokenType.OPERATOR \
                    and previous.value == "-" \
                    and _is_unary_minus(tokens, index - 1):
                continue
        end = (_string_literal_end(sql, token.position)
               if token.type is TokenType.STRING
               else token.position + len(token.value))
        if token.type is TokenType.INTEGER:
            values.append(int(token.value))
        elif token.type is TokenType.FLOAT:
            values.append(float(token.value))
        else:
            values.append(token.value)
        spans.append((token.position, end))

    if not values:
        return None
    out: list[str] = []
    cursor = 0
    for start, end in spans:
        out.append(sql[cursor:start])
        out.append("?")
        cursor = end
    out.append(sql[cursor:])
    return "".join(out), values


def _is_unary_minus(tokens, index: int) -> bool:
    """Whether the ``-`` at token ``index`` negates its operand.

    A minus is binary when something value-like precedes it (an identifier,
    a literal, a closing parenthesis or a value keyword); everything else --
    operators, commas, opening parens, clause keywords -- makes it unary.
    """
    from .sqlparser.lexer import TokenType

    if index == 0:
        return True
    before = tokens[index - 1]
    if before.type in (TokenType.IDENTIFIER, TokenType.INTEGER,
                       TokenType.FLOAT, TokenType.STRING,
                       TokenType.PARAMETER):
        return False
    if before.type is TokenType.PUNCTUATION and before.value == ")":
        return False
    if before.type is TokenType.KEYWORD and before.value in ("end", "null",
                                                             "true", "false"):
        return False
    return True


def _string_literal_end(sql: str, start: int) -> int:
    """End offset (exclusive) of the string literal opening at ``start``."""
    position = start + 1
    while position < len(sql):
        if sql[position] == "'":
            if position + 1 < len(sql) and sql[position + 1] == "'":
                position += 2
                continue
            return position + 1
        position += 1
    return len(sql)


def normalize_sql(sql: str) -> str:
    """Normalize SQL text for use as a plan-cache key.

    Comments (``--`` to end of line, ``/* ... */``) are stripped exactly as
    the lexer skips them, whitespace runs are collapsed to a single space,
    leading/trailing whitespace is stripped and everything outside
    single-quoted string literals is lowercased (identifiers and keywords
    are case-insensitive in this dialect; string literals are not).
    Stripping comments *before* collapsing whitespace matters: collapsing a
    newline would otherwise extend a line comment over the following tokens
    and make semantically different queries collide on one key.
    """
    out: list[str] = []
    pending_space = False
    i, length = 0, len(sql)
    while i < length:
        ch = sql[i]
        if ch == "-" and sql.startswith("--", i):
            # Line comment: acts as whitespace up to the end of the line.
            newline = sql.find("\n", i)
            i = length if newline < 0 else newline + 1
            pending_space = True
            continue
        if ch == "/" and sql.startswith("/*", i):
            # Block comment: acts as whitespace.  An *unterminated* comment
            # is kept verbatim in the key: the lexer rejects the statement,
            # so its key must never collide with the valid form's (a cache
            # hit would otherwise mask the LexerError).
            end = sql.find("*/", i + 2)
            if end < 0:
                if pending_space and out:
                    out.append(" ")
                out.append(sql[i:])
                i = length
                pending_space = False
                continue
            i = end + 2
            pending_space = True
            continue
        if ch == "'":
            # Copy the string literal verbatim, including '' escapes.
            end = i + 1
            while end < length:
                if sql[end] == "'":
                    if end + 1 < length and sql[end + 1] == "'":
                        end += 2
                        continue
                    break
                end += 1
            if pending_space and out:
                out.append(" ")
            pending_space = False
            out.append(sql[i:min(end + 1, length)])
            i = end + 1
            continue
        if ch.isspace():
            pending_space = True
            i += 1
            continue
        if pending_space and out:
            out.append(" ")
        pending_space = False
        out.append(ch.lower())
        i += 1
    return "".join(out)


@dataclass
class CacheStats:
    """Counters of one :class:`PlanCache` instance."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class PlanCache:
    """A thread-safe LRU cache of prepared queries keyed by normalized SQL.

    Entries must provide an ``is_valid()`` predicate (duck-typed); an entry
    that reports itself invalid -- because a referenced table's catalog
    version changed -- is dropped on lookup and counted as an invalidation.
    A capacity of 0 disables the cache entirely.
    """

    def __init__(self, capacity: int = 64):
        if capacity < 0:
            raise ValueError(f"cache capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self._entries: OrderedDict[str, object] = OrderedDict()
        self._lock = threading.Lock()
        self.stats = CacheStats()

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def keys(self) -> list[str]:
        with self._lock:
            return list(self._entries)

    # ------------------------------------------------------------------ #
    def get(self, key: str):
        """The cached entry for ``key``, or ``None`` on miss/invalidation."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                return None
            is_valid = getattr(entry, "is_valid", None)
            if is_valid is not None and not is_valid():
                del self._entries[key]
                self.stats.invalidations += 1
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return entry

    def peek(self, key: str):
        """The cached entry for ``key`` without touching stats or LRU order.

        Used by probe-only callers (the server's result-cache fast path):
        a peek must not inflate the hit/miss counters of the execution path
        and must not rejuvenate an entry nobody executed.  Invalid entries
        are left in place -- the next real :meth:`get` drops and counts
        them -- and reported as ``None``.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return None
            is_valid = getattr(entry, "is_valid", None)
            if is_valid is not None and not is_valid():
                return None
            return entry

    def put(self, key: str, entry) -> None:
        """Insert ``entry`` under ``key``, evicting the LRU tail if full."""
        if self.capacity == 0:
            return
        with self._lock:
            self._entries[key] = entry
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
