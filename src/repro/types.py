"""SQL value types used across the catalog, planner and code generator.

The engine supports a compact but expressive set of column types that covers
the TPC-H / TPC-DS style workloads used in the paper's evaluation:

* ``INT64``    -- 64-bit signed integers (also used for keys).
* ``FLOAT64``  -- double precision floating point.
* ``DECIMAL``  -- fixed point numbers stored as scaled 64-bit integers
  (two implied fraction digits, like TPC-H prices/discounts).
* ``STRING``   -- variable length strings (dictionary encoded in storage).
* ``DATE``     -- days since 1970-01-01 stored as int64.
* ``BOOL``     -- true/false, produced by predicates.

The type objects carry the logic for converting between Python values and the
engine's internal representation, which keeps the per-tuple runtime simple:
inside generated code every value is either an ``int`` or a ``float``.
"""

from __future__ import annotations

import datetime as _dt
import enum
from dataclasses import dataclass

from .errors import CatalogError

#: Number of implied fraction digits in DECIMAL values.
DECIMAL_SCALE_DIGITS = 2
#: Multiplier between the logical decimal value and the stored integer.
DECIMAL_SCALE = 10 ** DECIMAL_SCALE_DIGITS

#: Epoch used for DATE columns.
DATE_EPOCH = _dt.date(1970, 1, 1)

#: Bounds of checked 64-bit arithmetic (paper section IV-F: overflow checking).
INT64_MIN = -(2 ** 63)
INT64_MAX = 2 ** 63 - 1


class SQLType(enum.Enum):
    """Logical SQL column types supported by the engine."""

    INT64 = "int64"
    FLOAT64 = "float64"
    DECIMAL = "decimal"
    STRING = "string"
    DATE = "date"
    BOOL = "bool"

    # ------------------------------------------------------------------ #
    # classification helpers
    # ------------------------------------------------------------------ #
    @property
    def is_numeric(self) -> bool:
        """True for types that participate in arithmetic."""
        return self in (SQLType.INT64, SQLType.FLOAT64, SQLType.DECIMAL)

    @property
    def is_integer_backed(self) -> bool:
        """True when values are stored as Python/numpy integers."""
        return self in (SQLType.INT64, SQLType.DECIMAL, SQLType.DATE,
                        SQLType.BOOL, SQLType.STRING)

    @property
    def is_orderable(self) -> bool:
        """True when values of the type can be compared with < and >."""
        return True

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


def date_to_days(value: _dt.date | str) -> int:
    """Convert a date (or ISO string) to days since the 1970 epoch."""
    if isinstance(value, str):
        value = _dt.date.fromisoformat(value)
    return (value - DATE_EPOCH).days


def days_to_date(days: int) -> _dt.date:
    """Convert days since the 1970 epoch back to a :class:`datetime.date`."""
    return DATE_EPOCH + _dt.timedelta(days=int(days))


def decimal_to_scaled(value: float | int) -> int:
    """Convert a logical decimal value into its scaled integer storage form."""
    return int(round(float(value) * DECIMAL_SCALE))


def scaled_to_decimal(value: int) -> float:
    """Convert a scaled integer back into the logical decimal value."""
    return value / DECIMAL_SCALE


def encode_python_value(value, sql_type: SQLType):
    """Encode a Python-level value into the engine's internal representation.

    Strings are *not* dictionary-encoded here (that is the storage layer's
    job); this function only normalises numerics and dates.
    """
    if value is None:
        raise CatalogError("NULL values are not supported by this engine")
    if sql_type is SQLType.INT64:
        return int(value)
    if sql_type is SQLType.FLOAT64:
        return float(value)
    if sql_type is SQLType.DECIMAL:
        return decimal_to_scaled(value) if not isinstance(value, int) else value
    if sql_type is SQLType.DATE:
        if isinstance(value, (_dt.date, str)):
            return date_to_days(value)
        return int(value)
    if sql_type is SQLType.BOOL:
        return 1 if value else 0
    if sql_type is SQLType.STRING:
        return str(value)
    raise CatalogError(f"unsupported SQL type: {sql_type}")


def decode_internal_value(value, sql_type: SQLType):
    """Decode an internal value back into the user-facing Python value."""
    if value is None:  # NULL-padded payload of an unmatched LEFT JOIN row
        return None
    if sql_type is SQLType.DECIMAL:
        return scaled_to_decimal(int(value))
    if sql_type is SQLType.DATE:
        return days_to_date(int(value))
    if sql_type is SQLType.BOOL:
        return bool(value)
    if sql_type is SQLType.INT64:
        return int(value)
    if sql_type is SQLType.FLOAT64:
        return float(value)
    return value


def common_numeric_type(left: SQLType, right: SQLType) -> SQLType:
    """Return the result type of arithmetic between two numeric types."""
    if not (left.is_numeric and right.is_numeric):
        raise CatalogError(
            f"arithmetic requires numeric operands, got {left} and {right}")
    if SQLType.FLOAT64 in (left, right):
        return SQLType.FLOAT64
    if SQLType.DECIMAL in (left, right):
        return SQLType.DECIMAL
    return SQLType.INT64


@dataclass(frozen=True)
class ColumnType:
    """A column's logical type plus formatting metadata."""

    sql_type: SQLType
    nullable: bool = False

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return str(self.sql_type)
