"""repro -- Adaptive Execution of Compiled Queries, reproduced in Python.

This package reproduces the system described in

    André Kohn, Viktor Leis, Thomas Neumann:
    "Adaptive Execution of Compiled Queries", ICDE 2018.

The public entry point is :class:`repro.Database`:

    >>> from repro import Database, SQLType
    >>> db = Database()
    >>> db.create_table("t", [("a", SQLType.INT64), ("b", SQLType.INT64)])
    >>> db.insert("t", [(1, 10), (2, 20), (3, 30)])
    3
    >>> result = db.execute("select sum(b) as total from t where a >= 2",
    ...                     mode="adaptive")
    >>> result.rows
    [(50,)]

Execution modes: ``adaptive`` (the paper's contribution), the static tiers
``bytecode`` / ``unoptimized`` / ``optimized`` / ``ir-interp``, and the
baseline engines ``volcano`` and ``vectorized``.
"""

from .engine import (
    Database,
    PhaseTimings,
    PipelineExecution,
    QueryResult,
    ENGINE_MODES,
    BASELINE_MODES,
    DEFAULT_MORSEL_SIZE,
)
from .cache import (
    CacheStats,
    PlanCache,
    auto_parameterize_sql,
    normalize_sql,
)
from .result_cache import (
    CachedResult,
    ResultCache,
    ResultCacheStats,
    result_cache_key,
)
from .client import (
    ClientConnection,
    ClientResult,
    PendingBatchResult,
    PendingResult,
    PreparedStatement,
    connect,
)
from .errors import (
    AuthenticationError,
    ParameterError,
    ProtocolError,
    ReproError,
    ServerBusyError,
    ServerError,
    SQLError,
)
from .options import ExecOptions
from .parameters import ParameterSpec
from .prepared import PreparedQuery
from .server import QueryServer
from .scheduler import (
    QueryScheduler,
    QueryTicket,
    SchedulerStats,
    Session,
    SessionStats,
    TicketState,
    WorkerPool,
)
from .telemetry import (
    Counter,
    ExplainResult,
    Gauge,
    Histogram,
    MetricsRegistry,
    QueryTrace,
    Span,
    TierSwitchEvent,
)
from .types import SQLType

__version__ = "1.5.0"

__all__ = [
    "Database", "QueryResult", "PhaseTimings", "PipelineExecution",
    "PreparedQuery", "PlanCache", "CacheStats", "normalize_sql",
    "auto_parameterize_sql",
    "ResultCache", "ResultCacheStats", "CachedResult", "result_cache_key",
    "ExecOptions", "ParameterSpec",
    "QueryScheduler", "QueryTicket", "SchedulerStats", "TicketState",
    "Session", "SessionStats", "WorkerPool",
    "QueryServer", "connect", "ClientConnection", "ClientResult",
    "PendingResult", "PendingBatchResult", "PreparedStatement",
    "MetricsRegistry", "Counter", "Gauge", "Histogram",
    "QueryTrace", "Span", "TierSwitchEvent", "ExplainResult",
    "SQLType", "ReproError", "SQLError", "ParameterError",
    "ProtocolError", "ServerError", "AuthenticationError",
    "ServerBusyError",
    "ENGINE_MODES", "BASELINE_MODES", "DEFAULT_MORSEL_SIZE",
    "__version__",
]
