"""Lowering of query IR to executable Python (the "machine code" tiers)."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from ..errors import BackendError
from ..ir.analysis import reverse_postorder
from ..ir.function import ExternFunction, Function
from ..ir.instructions import (
    BinaryInst,
    BranchInst,
    CallInst,
    CastInst,
    CompareInst,
    CondBranchInst,
    GEPInst,
    LoadInst,
    OverflowCheckInst,
    PhiInst,
    ReturnInst,
    SelectInst,
    StoreInst,
    UnreachableInst,
)
from ..ir.values import Argument, Constant, Instruction, Undef, Value
from ..passes import default_pipeline
from ..vm.regalloc import allocate_registers, constant_slot

#: Preamble shared by all generated modules.
_PRELUDE = """\
from repro.errors import DivisionByZeroError, ExecutionError, OverflowError_
_INT64_MIN = -(1 << 63)
_INT64_MAX = (1 << 63) - 1
_INT64_MASK = (1 << 64) - 1
_INT64_SIGN = 1 << 63

def _wrap64(value):
    value &= _INT64_MASK
    if value & _INT64_SIGN:
        value -= 1 << 64
    return value

def _sdiv(a, b):
    if b == 0:
        raise DivisionByZeroError("integer division by zero")
    q = abs(a) // abs(b)
    if (a < 0) != (b < 0):
        q = -q
    return _wrap64(q)

def _srem(a, b):
    if b == 0:
        raise DivisionByZeroError("integer modulo by zero")
    r = abs(a) % abs(b)
    return -r if a < 0 else r

def _fdiv(a, b):
    if b == 0.0:
        raise DivisionByZeroError("float division by zero")
    return a / b

def _chk(value, message):
    if value < _INT64_MIN or value > _INT64_MAX:
        raise OverflowError_(message)
    return value
"""


@dataclass
class CompiledFunction:
    """An executable lowering of one IR function."""

    name: str
    tier: str
    entry: Callable
    compile_seconds: float
    source: str
    instructions_before: int
    instructions_after: int
    pass_seconds: float = 0.0

    def __call__(self, *args):
        return self.entry(*args)


# --------------------------------------------------------------------------- #
# public API
# --------------------------------------------------------------------------- #
def compile_function(function: Function, tier: str, clone: bool = True,
                     verify: bool = None) -> CompiledFunction:
    """Compile ``function`` with the given tier (``"unoptimized"``/``"optimized"``).

    ``verify`` controls pass-pipeline validation on the optimized tier
    (re-verifying the IR after each pass that changed it); ``None`` defers
    to the ``REPRO_VERIFY_IR`` environment flag.
    """
    if tier == "unoptimized":
        return compile_unoptimized(function)
    if tier == "optimized":
        return compile_optimized(function, clone=clone, verify=verify)
    raise BackendError(f"unknown compilation tier {tier!r}")


def compile_unoptimized(function: Function) -> CompiledFunction:
    """Fast lowering: no passes, per-block functions over a register file."""
    start = time.perf_counter()
    source, namespace = _lower_blockwise(function)
    code = compile(source, f"<unoptimized:{function.name}>", "exec")
    exec(code, namespace)
    entry = namespace[f"_entry_{_safe(function.name)}"]
    elapsed = time.perf_counter() - start
    count = function.instruction_count()
    return CompiledFunction(
        name=function.name, tier="unoptimized", entry=entry,
        compile_seconds=elapsed, source=source,
        instructions_before=count, instructions_after=count)


def compile_optimized(function: Function, clone: bool = True,
                      verify: bool = None) -> CompiledFunction:
    """Full lowering: pass pipeline, then a single specialised function."""
    start = time.perf_counter()
    target = _clone_function(function) if clone else function
    before = target.instruction_count()
    pass_stats = default_pipeline(verify=verify).run_function(target)
    source, namespace = _lower_whole_function(target)
    code = compile(source, f"<optimized:{function.name}>", "exec")
    exec(code, namespace)
    entry = namespace[f"_entry_{_safe(function.name)}"]
    elapsed = time.perf_counter() - start
    return CompiledFunction(
        name=function.name, tier="optimized", entry=entry,
        compile_seconds=elapsed, source=source,
        instructions_before=before,
        instructions_after=target.instruction_count(),
        pass_seconds=pass_stats.total_seconds)


# --------------------------------------------------------------------------- #
# cloning (the optimizer mutates IR; the bytecode tier must keep the original)
# --------------------------------------------------------------------------- #
def _clone_function(function: Function) -> Function:
    """Deep-copy an IR function so passes do not disturb other tiers."""
    import copy

    # The IR graph is self-contained apart from extern python_impl callables
    # and pointer constants, both of which must be shared, not copied.  The
    # containing module is excluded so cloning one worker does not deep-copy
    # every other function of the query.
    memo: dict[int, object] = {}
    if function.module is not None:
        memo[id(function.module)] = None
    for block in function.blocks:
        for inst in block.instructions:
            if isinstance(inst, CallInst):
                memo[id(inst.callee)] = inst.callee
            for operand in inst.operands:
                if isinstance(operand, Constant) and operand.type.is_pointer:
                    memo[id(operand.value)] = operand.value
    return copy.deepcopy(function, memo)


# --------------------------------------------------------------------------- #
# shared emission helpers
# --------------------------------------------------------------------------- #
def _safe(name: str) -> str:
    return "".join(ch if ch.isalnum() or ch == "_" else "_" for ch in name)


class _Namer:
    """Maps IR values to Python identifiers / literals inside generated code."""

    def __init__(self):
        self.namespace: dict[str, object] = {}
        self._ptr_consts: dict[int, str] = {}
        self._extern_names: dict[int, str] = {}

    def constant(self, value: Constant) -> str:
        if value.type.is_pointer:
            name = self._ptr_consts.get(id(value.value))
            if name is None:
                name = f"_C{len(self._ptr_consts)}"
                self._ptr_consts[id(value.value)] = name
                self.namespace[name] = value.value
            return name
        if value.type.is_float:
            return repr(float(value.value))
        return repr(int(value.value))

    def extern(self, extern: ExternFunction) -> str:
        name = self._extern_names.get(id(extern))
        if name is None:
            if extern.python_impl is None:
                raise BackendError(
                    f"extern @{extern.name} has no runtime binding")
            name = f"_E{len(self._extern_names)}_{_safe(extern.name)}"
            self._extern_names[id(extern)] = name
            self.namespace[name] = extern.python_impl
        return name


def _exec_namespace(namer: _Namer) -> dict:
    namespace: dict[str, object] = {}
    exec(compile(_PRELUDE, "<backend-prelude>", "exec"), namespace)
    namespace.update(namer.namespace)
    return namespace


# --------------------------------------------------------------------------- #
# unoptimized tier: per-block functions over a register file
# --------------------------------------------------------------------------- #
def _lower_blockwise(function: Function) -> tuple[str, dict]:
    order = reverse_postorder(function)
    allocation = allocate_registers(function)
    scratch = allocation.num_registers
    namer = _Namer()

    block_index = {id(block): idx for idx, block in enumerate(order)}
    lines: list[str] = []

    def ref(value: Value) -> str:
        if isinstance(value, Constant):
            return namer.constant(value)
        if isinstance(value, Undef):
            return "0"
        return f"R[{allocation.slot(value)}]"

    def phi_copy_lines(pred, succ, indent: str) -> list[str]:
        copies = []
        for phi in succ.phis():
            incoming = phi.incoming_for(pred)
            if isinstance(incoming, Undef):
                continue
            dst = allocation.slot(phi)
            src = ref(incoming)
            if src != f"R[{dst}]":
                copies.append((dst, src))
        return _ordered_copy_lines(copies, indent, scratch,
                                   lambda slot: f"R[{slot}]")

    for idx, block in enumerate(order):
        lines.append(f"def _block_{idx}(R):")
        body: list[str] = []
        instructions = block.instructions
        for inst in instructions:
            if isinstance(inst, PhiInst):
                continue
            if inst.is_terminator:
                body.extend(_emit_terminator_blockwise(
                    inst, block, block_index, phi_copy_lines, ref, "    "))
            else:
                body.extend(_emit_instruction(inst, ref, "    ",
                                              lambda v: f"R[{allocation.slot(v)}]",
                                              namer))
        if not body:
            body.append("    pass")
        lines.extend(body)
        lines.append("")

    entry_name = f"_entry_{_safe(function.name)}"
    arg_names = [f"a{i}" for i in range(len(function.args))]
    lines.append(f"_BLOCKS = [{', '.join(f'_block_{i}' for i in range(len(order)))}]")
    lines.append(f"def {entry_name}({', '.join(arg_names)}):")
    lines.append(f"    R = [0] * {allocation.num_registers + 1}")
    lines.append("    R[1] = 1")
    for slot, value_name in _constant_pool_refs(function, allocation, namer):
        lines.append(f"    R[{slot}] = {value_name}")
    for arg, arg_name in zip(function.args, arg_names):
        lines.append(f"    R[{allocation.slot(arg)}] = {arg_name}")
    lines.append("    _blocks = _BLOCKS")
    lines.append("    _bb = 0")
    lines.append("    while True:")
    lines.append("        _bb = _blocks[_bb](R)")
    lines.append("        if _bb < 0:")
    lines.append(f"            return R[{scratch}] if _bb == -2 else None")

    return "\n".join(lines), _exec_namespace(namer)


def _emit_terminator_blockwise(inst, block, block_index, phi_copy_lines, ref,
                               indent: str) -> list[str]:
    lines: list[str] = []
    if isinstance(inst, BranchInst):
        lines.extend(phi_copy_lines(block, inst.target, indent))
        lines.append(f"{indent}return {block_index[id(inst.target)]}")
        return lines
    if isinstance(inst, CondBranchInst):
        lines.append(f"{indent}if {ref(inst.condition)}:")
        lines.extend(phi_copy_lines(block, inst.true_target, indent + "    "))
        lines.append(f"{indent}    return {block_index[id(inst.true_target)]}")
        lines.append(f"{indent}else:")
        lines.extend(phi_copy_lines(block, inst.false_target, indent + "    "))
        lines.append(f"{indent}    return {block_index[id(inst.false_target)]}")
        return lines
    if isinstance(inst, ReturnInst):
        if inst.value is None:
            lines.append(f"{indent}return -1")
        else:
            # The scratch slot transports the return value to the driver.
            lines.append(f"{indent}R[-1] = {ref(inst.value)}")
            lines.append(f"{indent}return -2")
        return lines
    if isinstance(inst, UnreachableInst):
        lines.append(f"{indent}raise ExecutionError('unreachable code reached')")
        return lines
    raise BackendError(f"unsupported terminator {inst.opcode!r}")


def _constant_pool_refs(function, allocation, namer):
    """Yield ``(slot, python_expr)`` for every pooled constant."""
    from ..vm.regalloc import constant_key

    seen: set[int] = set()
    for block in function.blocks:
        for inst in block.instructions:
            operands = (inst.value_operands()
                        if not isinstance(inst, PhiInst)
                        else [v for v, _ in inst.incoming])
            for operand in operands:
                if not isinstance(operand, Constant):
                    continue
                slot = allocation.constant_slot_of.get(constant_key(operand))
                if slot is None or slot in seen:
                    continue
                seen.add(slot)
                yield slot, namer.constant(operand)


# --------------------------------------------------------------------------- #
# optimized tier: one specialised function, SSA values become locals
# --------------------------------------------------------------------------- #
def _lower_whole_function(function: Function) -> tuple[str, dict]:
    order = reverse_postorder(function)
    namer = _Namer()
    block_index = {id(block): idx for idx, block in enumerate(order)}

    def local(value: Value) -> str:
        return f"v{value.uid}"

    def ref(value: Value) -> str:
        if isinstance(value, Constant):
            return namer.constant(value)
        if isinstance(value, Undef):
            return "0"
        return local(value)

    entry_name = f"_entry_{_safe(function.name)}"
    arg_names = [f"a{i}" for i in range(len(function.args))]
    lines = [f"def {entry_name}({', '.join(arg_names)}):"]
    for arg, arg_name in zip(function.args, arg_names):
        lines.append(f"    {local(arg)} = {arg_name}")
    lines.append("    _bb = 0")
    lines.append("    while True:")

    def phi_copy_lines(pred, succ, indent: str) -> list[str]:
        copies = []
        for phi in succ.phis():
            incoming = phi.incoming_for(pred)
            if isinstance(incoming, Undef):
                continue
            dst = local(phi)
            src = ref(incoming)
            if src != dst:
                copies.append((dst, src))
        return _ordered_copy_lines(copies, indent, "_tmp", lambda n: n)

    for idx, block in enumerate(order):
        keyword = "if" if idx == 0 else "elif"
        lines.append(f"        {keyword} _bb == {idx}:")
        body: list[str] = []
        indent = "            "
        for inst in block.instructions:
            if isinstance(inst, PhiInst):
                continue
            if isinstance(inst, BranchInst):
                body.extend(phi_copy_lines(block, inst.target, indent))
                body.append(f"{indent}_bb = {block_index[id(inst.target)]}")
                body.append(f"{indent}continue")
            elif isinstance(inst, CondBranchInst):
                body.append(f"{indent}if {ref(inst.condition)}:")
                body.extend(phi_copy_lines(block, inst.true_target,
                                           indent + "    "))
                body.append(f"{indent}    _bb = "
                            f"{block_index[id(inst.true_target)]}")
                body.append(f"{indent}else:")
                body.extend(phi_copy_lines(block, inst.false_target,
                                           indent + "    "))
                body.append(f"{indent}    _bb = "
                            f"{block_index[id(inst.false_target)]}")
                body.append(f"{indent}continue")
            elif isinstance(inst, ReturnInst):
                if inst.value is None:
                    body.append(f"{indent}return None")
                else:
                    body.append(f"{indent}return {ref(inst.value)}")
            elif isinstance(inst, UnreachableInst):
                body.append(f"{indent}raise ExecutionError("
                            f"'unreachable code reached')")
            else:
                body.extend(_emit_instruction(inst, ref, indent, local, namer))
        if not body:
            body.append(f"{indent}pass")
        lines.extend(body)

    return "\n".join(lines), _exec_namespace(namer)


# --------------------------------------------------------------------------- #
# straight-line instruction emission shared by both tiers
# --------------------------------------------------------------------------- #
def _emit_instruction(inst: Instruction, ref, indent: str, dst, namer: _Namer
                      ) -> list[str]:
    """Emit the Python statement(s) implementing one non-terminator inst."""
    target = dst(inst) if inst.has_result else None

    if isinstance(inst, BinaryInst):
        lhs, rhs = ref(inst.lhs), ref(inst.rhs)
        op = inst.opcode
        simple = {"fadd": "+", "fsub": "-", "fmul": "*",
                  "and": "&", "or": "|", "xor": "^"}
        if op in ("add", "sub", "mul"):
            sign = {"add": "+", "sub": "-", "mul": "*"}[op]
            return [f"{indent}{target} = _wrap64({lhs} {sign} {rhs})"]
        if op in simple:
            return [f"{indent}{target} = {lhs} {simple[op]} {rhs}"]
        if op == "sdiv":
            return [f"{indent}{target} = _sdiv({lhs}, {rhs})"]
        if op == "srem":
            return [f"{indent}{target} = _srem({lhs}, {rhs})"]
        if op == "fdiv":
            return [f"{indent}{target} = _fdiv({lhs}, {rhs})"]
        if op == "shl":
            return [f"{indent}{target} = _wrap64({lhs} << ({rhs} & 63))"]
        if op == "ashr":
            return [f"{indent}{target} = {lhs} >> ({rhs} & 63)"]
        if op in ("smin", "fmin"):
            return [f"{indent}{target} = {lhs} if {lhs} < {rhs} else {rhs}"]
        if op in ("smax", "fmax"):
            return [f"{indent}{target} = {lhs} if {lhs} > {rhs} else {rhs}"]
        raise BackendError(f"cannot lower binary opcode {op!r}")

    if isinstance(inst, OverflowCheckInst):
        lhs, rhs = ref(inst.lhs), ref(inst.rhs)
        sign = {"add": "+", "sub": "-", "mul": "*"}[inst.checked_opcode]
        return [f"{indent}{target} = 1 if not "
                f"(_INT64_MIN <= {lhs} {sign} {rhs} <= _INT64_MAX) else 0"]

    if isinstance(inst, CompareInst):
        python_op = {"eq": "==", "ne": "!=", "lt": "<", "le": "<=",
                     "gt": ">", "ge": ">="}[inst.predicate]
        return [f"{indent}{target} = 1 if {ref(inst.lhs)} {python_op} "
                f"{ref(inst.rhs)} else 0"]

    if isinstance(inst, CastInst):
        source = ref(inst.value)
        if inst.opcode == "sitofp":
            return [f"{indent}{target} = float({source})"]
        if inst.opcode == "fptosi":
            return [f"{indent}{target} = int({source})"]
        if inst.opcode == "trunc":
            bits = inst.type.bits
            return [f"{indent}{target} = (({source}) & {(1 << bits) - 1})"
                    if bits == 1 else
                    f"{indent}{target} = ((({source}) & {(1 << bits) - 1}) - "
                    f"{1 << bits} if (({source}) & {(1 << bits) - 1}) >= "
                    f"{1 << (bits - 1)} else (({source}) & {(1 << bits) - 1}))"]
        return [f"{indent}{target} = {source}"]

    if isinstance(inst, SelectInst):
        return [f"{indent}{target} = {ref(inst.then_value)} if "
                f"{ref(inst.condition)} else {ref(inst.else_value)}"]

    if isinstance(inst, GEPInst):
        return [f"{indent}_p = {ref(inst.base)}",
                f"{indent}{target} = (_p[0], _p[1] + {ref(inst.index)})"]

    if isinstance(inst, LoadInst):
        return [f"{indent}_p = {ref(inst.pointer)}",
                f"{indent}{target} = _p[0][_p[1]]"]

    if isinstance(inst, StoreInst):
        return [f"{indent}_p = {ref(inst.pointer)}",
                f"{indent}_p[0][_p[1]] = {ref(inst.value)}"]

    if isinstance(inst, CallInst):
        callee = inst.callee
        if not isinstance(callee, ExternFunction):
            raise BackendError(
                "direct IR-to-IR calls are not supported by the backend")
        args = ", ".join(ref(a) for a in inst.args)
        call = f"{namer.extern(callee)}({args})"
        if inst.has_result:
            return [f"{indent}{target} = {call}"]
        return [f"{indent}{call}"]

    raise BackendError(f"cannot lower instruction {inst.opcode!r}")


def _ordered_copy_lines(copies, indent: str, scratch, fmt) -> list[str]:
    """Order parallel copies, breaking cycles through the scratch location.

    ``copies`` is a list of ``(dst, src)`` where ``dst`` is a register slot or
    local name (normalised through ``fmt``) and ``src`` is already a Python
    expression.  A copy may only run once no other pending copy still reads
    its destination; cycles are broken by stashing one destination in the
    scratch location and redirecting its readers there.
    """
    def name_of(dst) -> str:
        return dst if isinstance(dst, str) else fmt(dst)

    lines: list[str] = []
    pending = [(name_of(dst), src) for dst, src in copies]
    scratch_name = name_of(scratch)
    while pending:
        progress = False
        for index, (dst_name, src) in enumerate(pending):
            if any(other_src == dst_name
                   for j, (_, other_src) in enumerate(pending) if j != index):
                continue
            lines.append(f"{indent}{dst_name} = {src}")
            pending.pop(index)
            progress = True
            break
        if progress:
            continue
        dst_name, _ = pending[0]
        lines.append(f"{indent}{scratch_name} = {dst_name}")
        pending = [(d, scratch_name if s == dst_name else s)
                   for d, s in pending]
    return lines
