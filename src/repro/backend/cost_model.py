"""Compile-time and speedup estimation (paper Fig. 6 and Section III-C).

The adaptive policy needs two estimates per execution tier *k*:

* ``ctime_k(f)`` -- how long compiling worker function *f* will take, and
* ``speedup_k(f)`` -- how much faster the compiled code will process tuples
  than the bytecode interpreter.

Like the paper, the compile-time estimate is a linear function of the number
of IR instructions: Fig. 6 shows a near-linear relationship for all TPC-H and
TPC-DS queries and the paper states both numbers are "determined empirically
in our system".  The model here can be

* used with shipped default coefficients (calibrated once on this
  implementation's synthetic workload),
* re-fitted from measurements with :meth:`CostModel.fit`, which the benchmark
  harness does when regenerating Fig. 6, or
* calibrated at engine start-up with :func:`calibrate_cost_model`, which
  compiles a handful of synthetic worker functions and measures real times.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable, Optional

from ..errors import BackendError

#: Execution tiers in increasing order of compile effort.
TIERS = ("bytecode", "unoptimized", "optimized")


@dataclass
class TierEstimate:
    """Linear compile-time model ``seconds = base + per_instruction * n``."""

    base_seconds: float
    per_instruction_seconds: float
    speedup_over_bytecode: float

    def compile_seconds(self, instruction_count: int) -> float:
        return (self.base_seconds
                + self.per_instruction_seconds * max(instruction_count, 0))


#: Default coefficients.  These are deliberately conservative values measured
#: on CPython 3.11 for this code base (they are re-calibrated by
#: ``calibrate_cost_model`` when the engine is configured to do so); the
#: *ratios* between tiers mirror the paper: bytecode translation is roughly
#: an order of magnitude cheaper than unoptimized compilation, which is
#: several times cheaper than optimized compilation.
_DEFAULT_ESTIMATES = {
    "bytecode": TierEstimate(base_seconds=0.0004,
                             per_instruction_seconds=6.0e-6,
                             speedup_over_bytecode=1.0),
    "unoptimized": TierEstimate(base_seconds=0.0015,
                                per_instruction_seconds=3.0e-5,
                                speedup_over_bytecode=2.2),
    "optimized": TierEstimate(base_seconds=0.004,
                              per_instruction_seconds=1.2e-4,
                              speedup_over_bytecode=3.5),
}


@dataclass
class CostModel:
    """Per-tier compile-time / speedup estimates used by the adaptive policy."""

    estimates: dict[str, TierEstimate] = field(
        default_factory=lambda: dict(_DEFAULT_ESTIMATES))

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def compile_seconds(self, tier: str, instruction_count: int) -> float:
        return self._tier(tier).compile_seconds(instruction_count)

    def speedup(self, tier: str) -> float:
        return self._tier(tier).speedup_over_bytecode

    def _tier(self, tier: str) -> TierEstimate:
        try:
            return self.estimates[tier]
        except KeyError as exc:
            raise BackendError(f"unknown execution tier {tier!r}") from exc

    # ------------------------------------------------------------------ #
    # fitting
    # ------------------------------------------------------------------ #
    def fit(self, tier: str,
            samples: Iterable[tuple[int, float]],
            speedup: Optional[float] = None) -> TierEstimate:
        """Fit the linear compile-time model from ``(instructions, seconds)``.

        Uses an ordinary least-squares line; with fewer than two samples the
        existing estimate is kept.  ``speedup`` optionally replaces the
        tier's speedup factor.
        """
        points = list(samples)
        current = self._tier(tier)
        if len(points) >= 2:
            xs = [float(n) for n, _ in points]
            ys = [float(s) for _, s in points]
            n = len(xs)
            mean_x = sum(xs) / n
            mean_y = sum(ys) / n
            var_x = sum((x - mean_x) ** 2 for x in xs)
            if var_x > 0:
                slope = sum((x - mean_x) * (y - mean_y)
                            for x, y in zip(xs, ys)) / var_x
                intercept = mean_y - slope * mean_x
                current = TierEstimate(
                    base_seconds=max(intercept, 0.0),
                    per_instruction_seconds=max(slope, 1e-9),
                    speedup_over_bytecode=current.speedup_over_bytecode)
        if speedup is not None:
            current = TierEstimate(
                base_seconds=current.base_seconds,
                per_instruction_seconds=current.per_instruction_seconds,
                speedup_over_bytecode=speedup)
        self.estimates[tier] = current
        return current


_default_model: Optional[CostModel] = None


def default_cost_model() -> CostModel:
    """The process-wide cost model instance (lazily created)."""
    global _default_model
    if _default_model is None:
        _default_model = CostModel()
    return _default_model


def calibrate_cost_model(model: Optional[CostModel] = None,
                         sizes: tuple[int, ...] = (8, 32, 128),
                         repeat: int = 1) -> CostModel:
    """Measure real compile times on synthetic workers and refit the model.

    Builds small arithmetic-heavy worker functions of increasing size,
    compiles each with every tier and fits the per-tier linear model.  The
    speedup factors are measured by timing a fixed tuple-processing loop in
    each tier.
    """
    from ..ir.builder import IRBuilder
    from ..ir.function import Function
    from ..ir.types import i64, ptr
    from ..vm import VirtualMachine, translate_function
    from .compiler import compile_optimized, compile_unoptimized

    model = model or default_cost_model()

    def make_worker(n_ops: int) -> Function:
        function = Function(f"calib_{n_ops}", [ptr, i64, i64],
                            ["state", "begin", "end"])
        builder = IRBuilder(function)
        values = [0] * 64
        buffer = (values, 0)
        column = builder.const_ptr(buffer)
        index, _, _, close = builder.count_loop(function.args[1],
                                                function.args[2])
        acc = index
        for i in range(n_ops):
            acc = builder.add(acc, builder.const_i64(i + 1))
            acc = builder.mul(acc, builder.const_i64(3))
            acc = builder.smax(acc, index)
        pointer = builder.gep(column, builder.rem(acc, builder.const_i64(64)))
        builder.store(index, pointer)
        close()
        builder.ret()
        return function

    samples = {tier: [] for tier in TIERS}
    for size in sizes:
        worker = make_worker(size)
        count = worker.instruction_count()
        for _ in range(repeat):
            start = time.perf_counter()
            translate_function(worker)
            samples["bytecode"].append((count, time.perf_counter() - start))
            unopt = compile_unoptimized(worker)
            samples["unoptimized"].append((count, unopt.compile_seconds))
            opt = compile_optimized(worker)
            samples["optimized"].append((count, opt.compile_seconds))

    # Speedups: run the largest worker over a fixed range in every tier.
    worker = make_worker(sizes[-1])
    bytecode, _ = translate_function(worker)
    unopt = compile_unoptimized(worker)
    opt = compile_optimized(worker)
    vm = VirtualMachine()
    rows = 2000

    start = time.perf_counter()
    vm.execute(bytecode, [None, 0, rows])
    bytecode_seconds = max(time.perf_counter() - start, 1e-9)
    start = time.perf_counter()
    unopt(None, 0, rows)
    unopt_seconds = max(time.perf_counter() - start, 1e-9)
    start = time.perf_counter()
    opt(None, 0, rows)
    opt_seconds = max(time.perf_counter() - start, 1e-9)

    model.fit("bytecode", samples["bytecode"], speedup=1.0)
    model.fit("unoptimized", samples["unoptimized"],
              speedup=max(bytecode_seconds / unopt_seconds, 1.0))
    model.fit("optimized", samples["optimized"],
              speedup=max(bytecode_seconds / opt_seconds, 1.0))
    return model
