"""Machine-code execution tiers.

The paper's system compiles LLVM IR to x86 machine code in two flavours:
*unoptimized* (fast instruction selection, no IR passes, low backend effort)
and *optimized* (hand-picked IR passes plus full backend optimisation).  In
this reproduction the equivalent tiers lower the query IR to executable
Python:

* :func:`compile_unoptimized` -- direct lowering of every basic block to a
  small Python function over a register file; no IR passes.  Cheap to
  produce, noticeably faster than the bytecode interpreter.
* :func:`compile_optimized` -- runs the full pass pipeline
  (:mod:`repro.passes`), then emits a single specialised Python function in
  which SSA values become local variables.  The most expensive to produce and
  the fastest to run.

Both tiers execute the same IR semantics as the bytecode VM (including
overflow checks and runtime calls), so a pipeline can switch tiers between
morsels without losing work.

:mod:`repro.backend.cost_model` provides the compile-time / speedup
extrapolation model the adaptive policy uses (paper Fig. 6 and Fig. 7).
"""

from .compiler import (
    CompiledFunction,
    compile_function,
    compile_optimized,
    compile_unoptimized,
)
from .cost_model import CostModel, TierEstimate, default_cost_model

__all__ = [
    "CompiledFunction",
    "compile_function",
    "compile_optimized",
    "compile_unoptimized",
    "CostModel",
    "TierEstimate",
    "default_cost_model",
]
