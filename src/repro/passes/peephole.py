"""Peephole / algebraic simplifications (x+0, x*1, x*0, x-x, ...)."""

from __future__ import annotations

from ..ir.function import Function
from ..ir.instructions import BinaryInst, CompareInst, SelectInst
from ..ir.values import Constant, Value, replace_all_uses


def _is_const(value: Value, literal) -> bool:
    return isinstance(value, Constant) and value.value == literal


class PeepholePass:
    """Local algebraic identities that LLVM's instcombine would perform."""

    name = "peephole"

    def run(self, function: Function) -> bool:
        changed = False
        for block in list(function.blocks):
            for inst in list(block.instructions):
                replacement = self._simplify(inst)
                if replacement is None:
                    continue
                replace_all_uses(function, inst, replacement)
                block.instructions.remove(inst)
                changed = True
        return changed

    def _simplify(self, inst):
        if isinstance(inst, BinaryInst):
            lhs, rhs = inst.lhs, inst.rhs
            opcode = inst.opcode
            if opcode in ("add", "fadd", "or", "xor"):
                if _is_const(rhs, 0):
                    return lhs
                if _is_const(lhs, 0):
                    return rhs
            if opcode in ("sub", "fsub") and _is_const(rhs, 0):
                return lhs
            if opcode in ("mul", "fmul"):
                if _is_const(rhs, 1):
                    return lhs
                if _is_const(lhs, 1):
                    return rhs
                if _is_const(rhs, 0) or _is_const(lhs, 0):
                    return Constant(inst.type, 0)
            if opcode == "sdiv" and _is_const(rhs, 1):
                return lhs
            if opcode == "and":
                if _is_const(rhs, 0) or _is_const(lhs, 0):
                    return Constant(inst.type, 0)
            if opcode in ("sub",) and lhs is rhs:
                return Constant(inst.type, 0)
            if opcode in ("xor",) and lhs is rhs:
                return Constant(inst.type, 0)
            if opcode in ("and", "or", "smin", "smax") and lhs is rhs:
                return lhs
            return None
        if isinstance(inst, CompareInst):
            if inst.lhs is inst.rhs:
                if inst.predicate in ("eq", "le", "ge"):
                    return Constant(inst.type, 1)
                if inst.predicate in ("ne", "lt", "gt"):
                    return Constant(inst.type, 0)
            return None
        if isinstance(inst, SelectInst):
            if inst.then_value is inst.else_value:
                return inst.then_value
            cond = inst.condition
            if isinstance(cond, Constant):
                return inst.then_value if cond.value else inst.else_value
        return None
