"""Constant folding: evaluate instructions whose operands are all constants."""

from __future__ import annotations

from ..errors import DivisionByZeroError
from ..ir.function import Function
from ..ir.instructions import (
    BinaryInst,
    CastInst,
    CompareInst,
    OverflowCheckInst,
    SelectInst,
)
from ..ir.types import wrap_integer
from ..ir.values import Constant, replace_all_uses
from ..vm.ir_interpreter import _apply_binary, _COMPARE_FUNCS

_INT64_MIN = -(1 << 63)
_INT64_MAX = (1 << 63) - 1


class ConstantFoldingPass:
    """Fold arithmetic, comparisons, casts and selects over constants."""

    name = "constant-folding"

    def run(self, function: Function) -> bool:
        changed = False
        for block in list(function.blocks):
            for inst in list(block.instructions):
                folded = self._fold(inst)
                if folded is None:
                    continue
                replace_all_uses(function, inst, folded)
                block.instructions.remove(inst)
                changed = True
        return changed

    def _fold(self, inst):
        if isinstance(inst, BinaryInst):
            lhs, rhs = inst.lhs, inst.rhs
            if isinstance(lhs, Constant) and isinstance(rhs, Constant):
                if inst.opcode in ("sdiv", "srem", "fdiv") and rhs.value == 0:
                    return None  # keep the runtime error behaviour
                value = _apply_binary(inst.opcode, lhs.value, rhs.value,
                                      inst.type)
                return Constant(inst.type, value)
            return None
        if isinstance(inst, OverflowCheckInst):
            lhs, rhs = inst.lhs, inst.rhs
            if isinstance(lhs, Constant) and isinstance(rhs, Constant):
                raw = {"add": lhs.value + rhs.value,
                       "sub": lhs.value - rhs.value,
                       "mul": lhs.value * rhs.value}[inst.checked_opcode]
                overflow = raw < _INT64_MIN or raw > _INT64_MAX
                return Constant(inst.type, 1 if overflow else 0)
            return None
        if isinstance(inst, CompareInst):
            lhs, rhs = inst.lhs, inst.rhs
            if isinstance(lhs, Constant) and isinstance(rhs, Constant):
                result = _COMPARE_FUNCS[inst.predicate](lhs.value, rhs.value)
                return Constant(inst.type, 1 if result else 0)
            return None
        if isinstance(inst, CastInst):
            operand = inst.value
            if isinstance(operand, Constant):
                if inst.opcode == "sitofp":
                    return Constant(inst.type, float(operand.value))
                if inst.opcode == "fptosi":
                    return Constant(inst.type, int(operand.value))
                if inst.opcode in ("trunc", "zext", "sext"):
                    return Constant(inst.type,
                                    wrap_integer(int(operand.value),
                                                 inst.type))
            return None
        if isinstance(inst, SelectInst):
            cond = inst.condition
            if isinstance(cond, Constant):
                chosen = inst.then_value if cond.value else inst.else_value
                if isinstance(chosen, Constant):
                    return Constant(inst.type, chosen.value)
                return None
        return None
