"""CFG simplification: fold constant branches, drop unreachable blocks and
merge trivial straight-line block chains."""

from __future__ import annotations

from ..ir.analysis import reverse_postorder
from ..ir.function import Function
from ..ir.instructions import BranchInst, CondBranchInst, PhiInst
from ..ir.values import Constant, replace_all_uses


class SimplifyCFGPass:
    """The subset of LLVM's simplifycfg a query compiler benefits from."""

    name = "simplify-cfg"

    def run(self, function: Function) -> bool:
        changed = False
        changed |= self._fold_constant_branches(function)
        changed |= self._remove_unreachable_blocks(function)
        changed |= self._merge_linear_chains(function)
        return changed

    # ------------------------------------------------------------------ #
    def _fold_constant_branches(self, function: Function) -> bool:
        changed = False
        for block in function.blocks:
            term = block.terminator
            if not isinstance(term, CondBranchInst):
                continue
            cond = term.condition
            if not isinstance(cond, Constant):
                continue
            taken = term.true_target if cond.value else term.false_target
            not_taken = term.false_target if cond.value else term.true_target
            block.instructions.pop()  # remove the condbr
            block.instructions.append(BranchInst(taken))
            block.instructions[-1].block = block
            # The edge to the not-taken block disappears: fix its phis.
            if not_taken is not taken:
                self._remove_phi_edge(not_taken, block)
            changed = True
        return changed

    def _remove_unreachable_blocks(self, function: Function) -> bool:
        reachable = {id(b) for b in reverse_postorder(function)}
        dead = [b for b in function.blocks if id(b) not in reachable]
        if not dead:
            return False
        for block in dead:
            for succ in block.successors():
                if id(succ) in reachable:
                    self._remove_phi_edge(succ, block)
            function.blocks.remove(block)
        return True

    def _merge_linear_chains(self, function: Function) -> bool:
        """Merge B into A when A->B is A's only exit and B's only entry."""
        changed = False
        merged = True
        while merged:
            merged = False
            preds = function.predecessors()
            for block in list(function.blocks):
                term = block.terminator
                if not isinstance(term, BranchInst):
                    continue
                succ = term.target
                if succ is block or succ is function.entry_block:
                    continue
                if len(preds[succ]) != 1:
                    continue
                if succ.phis():
                    # Single-predecessor phis are trivial: forward their value.
                    for phi in succ.phis():
                        replace_all_uses(function, phi,
                                         phi.incoming_for(block))
                        succ.instructions.remove(phi)
                # Splice the successor into this block.
                block.instructions.pop()  # drop the br
                for inst in succ.instructions:
                    inst.block = block
                    block.instructions.append(inst)
                # Successor blocks of succ may have phis referencing succ.
                for after in succ.successors():
                    for phi in after.phis():
                        phi.incoming = [
                            (value, block if pred is succ else pred)
                            for value, pred in phi.incoming
                        ]
                function.blocks.remove(succ)
                merged = True
                changed = True
                break
        return changed

    # ------------------------------------------------------------------ #
    @staticmethod
    def _remove_phi_edge(block, removed_pred) -> None:
        for phi in block.phis():
            new_incoming = [(value, pred) for value, pred in phi.incoming
                            if pred is not removed_pred]
            if len(new_incoming) != len(phi.incoming):
                phi.incoming = new_incoming
                phi.operands = [value for value, _ in new_incoming]
