"""Dead code elimination: drop pure instructions whose results are unused."""

from __future__ import annotations

from ..ir.function import Function
from ..ir.instructions import PhiInst
from ..ir.values import Instruction


class DeadCodeEliminationPass:
    """Aggressively removes unused pure instructions (iterates to fixpoint)."""

    name = "dce"

    def run(self, function: Function) -> bool:
        changed_any = False
        while True:
            used: set[int] = set()
            for block in function.blocks:
                for inst in block.instructions:
                    operands = (inst.value_operands()
                                if not isinstance(inst, PhiInst)
                                else [v for v, _ in inst.incoming])
                    for operand in operands:
                        if isinstance(operand, Instruction):
                            used.add(operand.uid)

            removed = False
            for block in function.blocks:
                keep = []
                for inst in block.instructions:
                    is_dead = (inst.has_result
                               and inst.uid not in used
                               and not inst.has_side_effects
                               and not inst.is_terminator)
                    if is_dead:
                        removed = True
                    else:
                        keep.append(inst)
                if len(keep) != len(block.instructions):
                    block.instructions = keep
            if not removed:
                break
            changed_any = True
        return changed_any
