"""Common subexpression elimination.

Pure instructions (arithmetic, comparisons, casts, selects, geps, calls to
side-effect-free externs) that compute the same expression as an earlier
instruction in a dominating position are replaced by the earlier value.

The implementation performs dominator-tree scoped value numbering: walking
the dominator tree top-down, an expression table maps structural keys to the
first value computing them; entries added in a subtree are popped when the
walk leaves it.
"""

from __future__ import annotations

from ..ir.analysis import compute_dominator_tree, reverse_postorder
from ..ir.function import Function
from ..ir.instructions import (
    BinaryInst,
    CastInst,
    CompareInst,
    GEPInst,
    OverflowCheckInst,
    SelectInst,
    CallInst,
)
from ..ir.values import Constant, Value, replace_all_uses


def _operand_key(value: Value):
    if isinstance(value, Constant):
        if value.type.is_pointer:
            return ("const-ptr", id(value.value))
        return ("const", value.type.name, value.value)
    return ("val", value.uid)


def _expression_key(inst):
    if isinstance(inst, BinaryInst):
        key = [inst.opcode]
        operands = [_operand_key(inst.lhs), _operand_key(inst.rhs)]
        if inst.opcode in ("add", "mul", "fadd", "fmul", "and", "or", "xor",
                           "smin", "smax", "fmin", "fmax"):
            operands.sort()  # commutative
        return tuple(key + operands)
    if isinstance(inst, OverflowCheckInst):
        return ("ovf", inst.checked_opcode, _operand_key(inst.lhs),
                _operand_key(inst.rhs))
    if isinstance(inst, CompareInst):
        return (inst.opcode, inst.predicate, _operand_key(inst.lhs),
                _operand_key(inst.rhs))
    if isinstance(inst, CastInst):
        return (inst.opcode, inst.type.name, _operand_key(inst.value))
    if isinstance(inst, SelectInst):
        return ("select", _operand_key(inst.condition),
                _operand_key(inst.then_value), _operand_key(inst.else_value))
    if isinstance(inst, GEPInst):
        return ("gep", _operand_key(inst.base), _operand_key(inst.index))
    if isinstance(inst, CallInst) and not inst.has_side_effects:
        return tuple(["call", inst.callee.name]
                     + [_operand_key(a) for a in inst.args])
    return None


class CommonSubexpressionEliminationPass:
    """Dominator-scoped value numbering."""

    name = "cse"

    def run(self, function: Function) -> bool:
        order = reverse_postorder(function)
        if not order:
            return False
        dom_tree = compute_dominator_tree(function, order)
        changed = False
        table: dict = {}

        # Iterative dominator-tree DFS with scope markers.
        entry = order[0]
        stack: list[tuple] = [("visit", entry)]
        scopes: list[list] = []
        while stack:
            action, block = stack.pop()
            if action == "leave":
                for key in scopes.pop():
                    table.pop(key, None)
                continue
            added: list = []
            scopes.append(added)
            stack.append(("leave", block))
            for inst in list(block.instructions):
                key = _expression_key(inst)
                if key is None:
                    continue
                existing = table.get(key)
                if existing is not None:
                    replace_all_uses(function, inst, existing)
                    block.instructions.remove(inst)
                    changed = True
                else:
                    table[key] = inst
                    added.append(key)
            for child in reversed(dom_tree.children[id(block)]):
                stack.append(("visit", child))
        return changed
