"""Pass manager: runs a pipeline of function passes over a module."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Protocol

from ..ir.function import Function, Module


class FunctionPass(Protocol):
    """A transformation applied to one function at a time."""

    name: str

    def run(self, function: Function) -> bool:
        """Transform ``function`` in place; return True if anything changed."""
        ...  # pragma: no cover - protocol


@dataclass
class PassStats:
    """Statistics collected while running a pass pipeline."""

    per_pass_seconds: dict[str, float] = field(default_factory=dict)
    per_pass_changes: dict[str, int] = field(default_factory=dict)
    total_seconds: float = 0.0
    instructions_before: int = 0
    instructions_after: int = 0

    @property
    def instructions_removed(self) -> int:
        return self.instructions_before - self.instructions_after


class PassManager:
    """Runs an ordered list of function passes, optionally until fixpoint.

    With ``verify=True`` the IR verifier re-checks the function after every
    pass that reported a change, so a bad rewrite fails *at the breaking
    pass* (the raised :class:`repro.errors.IRVerificationError` carries the
    pass name) instead of three tiers later.  The default of ``None`` defers
    to the ``REPRO_VERIFY_IR`` environment flag, which is how CI keeps
    validation on for the whole test suite.
    """

    def __init__(self, passes: list[FunctionPass], max_iterations: int = 2,
                 verify: bool = None):
        self.passes = passes
        self.max_iterations = max_iterations
        if verify is None:
            from ..analysis import verify_ir_enabled
            verify = verify_ir_enabled()
        self.verify = verify

    def run_function(self, function: Function) -> PassStats:
        stats = PassStats(instructions_before=function.instruction_count())
        start = time.perf_counter()
        for _ in range(self.max_iterations):
            changed = False
            for pass_ in self.passes:
                pass_start = time.perf_counter()
                pass_changed = pass_.run(function)
                elapsed = time.perf_counter() - pass_start
                stats.per_pass_seconds[pass_.name] = (
                    stats.per_pass_seconds.get(pass_.name, 0.0) + elapsed)
                if pass_changed:
                    stats.per_pass_changes[pass_.name] = (
                        stats.per_pass_changes.get(pass_.name, 0) + 1)
                    changed = True
                    if self.verify:
                        self._verify_after(pass_, function)
            if not changed:
                break
        stats.total_seconds = time.perf_counter() - start
        stats.instructions_after = function.instruction_count()
        return stats

    @staticmethod
    def _verify_after(pass_: FunctionPass, function: Function) -> None:
        from ..errors import IRVerificationError
        from ..ir.verifier import verify_function
        try:
            verify_function(function)
        except IRVerificationError as error:
            wrapped = IRVerificationError(str(error), pass_name=pass_.name)
            wrapped.function_name = error.function_name
            wrapped.block_name = error.block_name
            wrapped.instruction = error.instruction
            raise wrapped from error

    def run_module(self, module: Module) -> PassStats:
        total = PassStats()
        for function in module.functions.values():
            stats = self.run_function(function)
            total.instructions_before += stats.instructions_before
            total.instructions_after += stats.instructions_after
            total.total_seconds += stats.total_seconds
            for name, seconds in stats.per_pass_seconds.items():
                total.per_pass_seconds[name] = (
                    total.per_pass_seconds.get(name, 0.0) + seconds)
            for name, changes in stats.per_pass_changes.items():
                total.per_pass_changes[name] = (
                    total.per_pass_changes.get(name, 0) + changes)
        return total


def default_pipeline(verify: bool = None) -> PassManager:
    """The optimized tier's pass pipeline (mirrors the paper's pass list)."""
    from .constant_folding import ConstantFoldingPass
    from .cse import CommonSubexpressionEliminationPass
    from .dce import DeadCodeEliminationPass
    from .peephole import PeepholePass
    from .simplify_cfg import SimplifyCFGPass

    return PassManager([
        ConstantFoldingPass(),
        PeepholePass(),
        CommonSubexpressionEliminationPass(),
        SimplifyCFGPass(),
        DeadCodeEliminationPass(),
    ], verify=verify)
