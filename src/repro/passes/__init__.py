"""IR optimization passes.

The optimized compilation tier runs this pass pipeline before lowering, just
like HyPer runs a hand-picked list of LLVM passes before optimized machine
code generation (paper Section V: peephole optimizations, reassociation,
common subexpression elimination, CFG simplification, dead code elimination).

The passes are intentionally real work: their cost scales with the size of
the IR, which is what produces the optimized tier's higher compile times in
the Fig. 2 / Fig. 6 / Fig. 15 reproductions.
"""

from .pass_manager import FunctionPass, PassManager, PassStats, default_pipeline
from .constant_folding import ConstantFoldingPass
from .peephole import PeepholePass
from .cse import CommonSubexpressionEliminationPass
from .dce import DeadCodeEliminationPass
from .simplify_cfg import SimplifyCFGPass

__all__ = [
    "FunctionPass", "PassManager", "PassStats", "default_pipeline",
    "ConstantFoldingPass", "PeepholePass",
    "CommonSubexpressionEliminationPass", "DeadCodeEliminationPass",
    "SimplifyCFGPass",
]
