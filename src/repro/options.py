"""Unified execution options for every query entry point.

One :class:`ExecOptions` value describes *how* a statement executes --
execution mode, thread budget, tracing, plan-cache usage and
auto-parameterization -- and is accepted by all five call sites:
``Database.execute``, ``Database.submit``, ``Session``, ``PreparedQuery``
and ``QueryScheduler.submit``.  The historical per-call keyword arguments
(``mode=``, ``threads=``, ``collect_trace=``, ``use_cache=``) remain as a
thin back-compat shim: every call site resolves them *on top of* an
optional ``options=`` value via :meth:`ExecOptions.resolve`, with explicit
keywords winning.

What a statement executes *with* -- the bind-parameter values -- is
deliberately not part of :class:`ExecOptions`: parameters vary per call,
options describe a policy, so ``params=`` stays a separate argument.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional

from .errors import ExecutionError


@dataclass(frozen=True)
class ExecOptions:
    """How one query execution should run.

    ``auto_parameterize=None`` means "use the database's default"; ``True``
    / ``False`` force auto-parameterization on or off for this call.
    """

    mode: str = "adaptive"
    threads: int = 1
    collect_trace: bool = False
    use_cache: bool = True
    #: Semantic result caching (:mod:`repro.result_cache`): repeated
    #: identical reads are served from materialized rows without executing.
    #: ``False`` forces real execution (the escape hatch for measuring
    #: execution and for callers that want fresh statistics); results are
    #: identical either way.  ``use_cache=False`` implies this off too.
    use_result_cache: bool = True
    auto_parameterize: Optional[bool] = None
    #: Zone-map chunk pruning for table scans.  ``False`` scans every chunk
    #: (the escape hatch for measuring pruning and for debugging); results
    #: are identical either way.
    use_pruning: bool = True
    #: Number of hash partitions per pipeline breaker (join build /
    #: aggregation).  ``None`` uses the database's worker count rounded up
    #: to a power of two; explicit values are rounded up likewise.
    breaker_partitions: Optional[int] = None
    #: ``False`` disables per-worker breaker partials and restores the
    #: historical single-table path (one shared hash table per breaker,
    #: aggregate updates guarded by a counted fallback lock); results are
    #: identical either way.
    use_partitioned_breakers: bool = True
    #: ``False`` disables the top-k output breaker for ORDER BY + LIMIT
    #: queries and restores the historical sort-then-slice finish (collect
    #: every row, sort, cut).  The escape hatch exists for measuring the
    #: breaker's win (benchmarks/bench_topk.py); results are identical
    #: either way.
    use_topk_breaker: bool = True
    #: Telemetry level of this execution: ``"off"`` records nothing,
    #: ``"basic"`` (the default) updates the database's metrics registry
    #: and attaches a lifecycle :class:`repro.telemetry.QueryTrace` to the
    #: result, ``"trace"`` additionally collects the per-morsel event
    #: timeline (implies ``collect_trace`` for engine modes).
    telemetry: str = "basic"
    #: Collect per-operator cardinalities that are not free to maintain
    #: (currently: hash-join build-side entry counts).  EXPLAIN ANALYZE
    #: turns this on for its inner execution; everything else defaults off.
    collect_operator_stats: bool = False
    #: Pass-pipeline validation: re-run the IR verifier after every
    #: optimization pass that changed a function, and the bytecode verifier
    #: after translation, so a bad rewrite fails at the pass that broke it.
    #: ``None`` (the default) defers to the ``REPRO_VERIFY_IR`` environment
    #: flag, which is how CI keeps validation on suite-wide; ``True`` /
    #: ``False`` force it per execution.
    verify_ir: Optional[bool] = None

    @classmethod
    def resolve(cls, options: Optional["ExecOptions"] = None,
                **overrides) -> "ExecOptions":
        """Merge legacy keyword overrides onto ``options`` (or the defaults).

        Overrides that are ``None`` (the shim's "not given" marker) are
        ignored, so ``resolve(opts)`` returns ``opts`` unchanged and
        ``resolve(None, mode="volcano")`` equals
        ``ExecOptions(mode="volcano")``.
        """
        base = options if options is not None else cls()
        if not isinstance(base, ExecOptions):
            raise ExecutionError(
                f"options must be an ExecOptions, got "
                f"{type(base).__name__}; pass mode/threads/... as keywords "
                f"instead")
        supplied = {key: value for key, value in overrides.items()
                    if value is not None}
        if not supplied:
            return base
        unknown = set(supplied) - {f.name for f in dataclasses.fields(cls)}
        if unknown:
            raise ExecutionError(
                f"unknown execution option(s) {sorted(unknown)}")
        return dataclasses.replace(base, **supplied)

    def merged(self, **overrides) -> "ExecOptions":
        """This options value with non-``None`` overrides applied."""
        return ExecOptions.resolve(self, **overrides)


class OptionsAccessors:
    """Read-only legacy accessors for classes carrying an ``options`` field.

    ``QueryTicket`` and ``Session`` historically exposed the execution
    options as individual attributes; this mixin keeps those working on top
    of the authoritative :class:`ExecOptions` value.
    """

    options: ExecOptions

    @property
    def mode(self) -> str:
        return self.options.mode

    @property
    def threads(self) -> int:
        return self.options.threads

    @property
    def collect_trace(self) -> bool:
        return self.options.collect_trace

    @property
    def use_cache(self) -> bool:
        return self.options.use_cache

    @property
    def use_result_cache(self) -> bool:
        return self.options.use_result_cache

    @property
    def use_pruning(self) -> bool:
        return self.options.use_pruning

    @property
    def breaker_partitions(self) -> Optional[int]:
        return self.options.breaker_partitions

    @property
    def use_partitioned_breakers(self) -> bool:
        return self.options.use_partitioned_breakers

    @property
    def use_topk_breaker(self) -> bool:
        return self.options.use_topk_breaker

    @property
    def telemetry(self) -> str:
        return self.options.telemetry

    @property
    def verify_ir(self) -> Optional[bool]:
        return self.options.verify_ir
