"""Blocking client library for the network serving front end.

:func:`connect` opens a TCP connection to a :class:`repro.server.QueryServer`
and performs the HELLO handshake; the returned :class:`ClientConnection`
offers the familiar statement API over the wire::

    conn = connect(host, port)
    result = conn.execute("select count(*) as n from t where a > ?",
                          params=(10,))
    stmt = conn.prepare("select b from t where a = :a")
    result = stmt.execute(params={"a": 3})
    conn.close()

A background reader thread demultiplexes response frames by request id, so
one connection supports *pipelined* requests: :meth:`ClientConnection.
execute_async` returns a :class:`PendingResult` immediately, several can be
in flight at once, and :meth:`PendingResult.cancel` sends a CANCEL frame
that resolves to ``QueryTicket.cancel`` on the server.

Failures reported by the server raise typed exceptions:
:class:`~repro.errors.ServerBusyError` (admission backpressure, with the
server's ``retry_after_ms`` hint), :class:`~repro.errors.QueryCancelledError`,
:class:`~repro.errors.AuthenticationError`, and
:class:`~repro.errors.ServerError` for everything else.  Transport and
framing problems raise :class:`~repro.errors.ProtocolError`.

Rows arrive in the engine's internal representation (ints/floats/strings,
exactly like ``QueryResult.rows``); :meth:`ClientResult.decoded_rows`
converts DATE/BOOL/DECIMAL columns to Python objects using the typed
column metadata the server sent.
"""

from __future__ import annotations

import queue
import socket
import struct
import threading
from typing import Optional

from .errors import (AuthenticationError, ProtocolError, QueryCancelledError,
                     ServerBusyError, ServerError)
from .server import protocol
from .server.protocol import (FRAME_HEADER_BYTES, PROTOCOL_VERSION,
                              decode_header, decode_payload, encode_frame)
from .types import SQLType, decode_internal_value


class ClientResult:
    """One query's result as received over the wire."""

    def __init__(self, column_names: list, column_types: list,
                 rows: list, done):
        self.column_names = column_names
        #: :class:`repro.SQLType` per result column.
        self.column_types = [SQLType(name) for name in column_types]
        #: Rows in the engine's internal representation.
        self.rows = rows
        #: Execution mode the server ran the query in ("" inside an
        #: EXECUTE_MANY stream, where the mode arrives on the final DONE).
        self.mode = getattr(done, "mode", "")
        #: True when the server served the query from a cached plan or a
        #: cached result.
        self.cached = done.cached
        #: What a cached execution reused: ``"plan"``, ``"result"``, or
        #: ``None`` (unknown / not cached; single EXECUTE responses do not
        #: carry the distinction).
        self.cache_source = getattr(done, "cache_source", "") or None
        #: Engine-side work seconds and admission-queue wait seconds
        #: (0.0 for per-binding results of an EXECUTE_MANY batch).
        self.total_seconds = getattr(done, "total_seconds", 0.0)
        self.queue_seconds = getattr(done, "queue_seconds", 0.0)

    def decoded_rows(self) -> list:
        """Rows with DATE/BOOL/DECIMAL columns decoded to Python objects."""
        return [tuple(decode_internal_value(value, sql_type)
                      for value, sql_type in zip(row, self.column_types))
                for row in self.rows]

    def columns(self) -> dict:
        """Column name -> list of values, in result-column order."""
        return {name: [row[index] for row in self.rows]
                for index, name in enumerate(self.column_names)}

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<ClientResult rows={len(self.rows)} mode={self.mode!r} "
                f"cached={self.cached}>")


class _Pending:
    """Demultiplexing mailbox of one outstanding request."""

    __slots__ = ("request_id", "frames")

    def __init__(self, request_id: int):
        self.request_id = request_id
        self.frames: queue.Queue = queue.Queue()


class PendingResult:
    """Handle to one in-flight EXECUTE; resolves to a :class:`ClientResult`."""

    def __init__(self, connection: "ClientConnection", pending: _Pending):
        self._connection = connection
        self._pending = pending
        self._result: Optional[ClientResult] = None
        self._error: Optional[BaseException] = None
        self._consumed = False

    @property
    def request_id(self) -> int:
        return self._pending.request_id

    def result(self, timeout: Optional[float] = None) -> ClientResult:
        """Block until the server's terminal frame arrives.

        Raises the typed error for ERROR frames; raises ``TimeoutError``
        when no terminal frame arrives within ``timeout`` seconds (the
        stream keeps accumulating; call ``result`` again to re-wait).
        """
        if not self._consumed:
            self._consume(timeout)
        if self._error is not None:
            raise self._error
        return self._result

    def _consume(self, timeout: Optional[float]) -> None:
        names: list = []
        types: list = []
        rows: list = []
        while True:
            try:
                frame = self._pending.frames.get(timeout=timeout)
            except queue.Empty:
                raise TimeoutError(
                    f"no response for request {self.request_id} within "
                    f"{timeout} seconds")
            if isinstance(frame, BaseException):
                self._error = frame
                break
            if isinstance(frame, protocol.RowHeader):
                names = frame.column_names
                types = frame.column_types
            elif isinstance(frame, protocol.RowBatch):
                rows.extend(frame.rows)
            elif isinstance(frame, protocol.Done):
                self._result = ClientResult(names, types, rows, frame)
                break
            elif isinstance(frame, protocol.Error):
                self._error = _error_from_frame(frame)
                break
            else:
                self._error = ProtocolError(
                    f"unexpected frame {type(frame).__name__.upper()} in "
                    f"an EXECUTE response stream")
                break
        self._consumed = True
        self._connection._forget(self._pending)

    def cancel(self) -> bool:
        """Ask the server to cancel this request (CANCEL frame).

        Returns True when the cancel took effect server-side (the query
        had not started running); the request then resolves with
        :class:`~repro.errors.QueryCancelledError`.  Returns False when
        the query already ran or finished -- its result still arrives.
        """
        return self._connection._cancel(self.request_id)


class PendingBatchResult:
    """Handle to one in-flight EXECUTE_MANY; resolves to a result list.

    The response stream interleaves one ``BATCH_DONE`` per binding between
    the row batches; each binding becomes its own :class:`ClientResult`
    (with ``cached`` / ``cache_source`` per binding), in request order.
    """

    def __init__(self, connection: "ClientConnection", pending: _Pending):
        self._connection = connection
        self._pending = pending
        self._results: Optional[list] = None
        self._error: Optional[BaseException] = None
        self._consumed = False

    @property
    def request_id(self) -> int:
        return self._pending.request_id

    def result(self, timeout: Optional[float] = None) -> list:
        """Block until DONE; returns the ordered ``list[ClientResult]``."""
        if not self._consumed:
            self._consume(timeout)
        if self._error is not None:
            raise self._error
        return self._results

    def _consume(self, timeout: Optional[float]) -> None:
        names: list = []
        types: list = []
        rows: list = []
        results: list = []
        while True:
            try:
                frame = self._pending.frames.get(timeout=timeout)
            except queue.Empty:
                raise TimeoutError(
                    f"no response for request {self.request_id} within "
                    f"{timeout} seconds")
            if isinstance(frame, BaseException):
                self._error = frame
                break
            if isinstance(frame, protocol.RowHeader):
                names = frame.column_names
                types = frame.column_types
            elif isinstance(frame, protocol.RowBatch):
                rows.extend(frame.rows)
            elif isinstance(frame, protocol.BatchDone):
                results.append(ClientResult(names, types, rows, frame))
                rows = []
            elif isinstance(frame, protocol.Done):
                # The terminal frame carries batch-wide totals; stamp the
                # fields every per-binding result shares.
                for result in results:
                    result.mode = frame.mode
                self._results = results
                break
            elif isinstance(frame, protocol.Error):
                self._error = _error_from_frame(frame)
                break
            else:
                self._error = ProtocolError(
                    f"unexpected frame {type(frame).__name__.upper()} in "
                    f"an EXECUTE_MANY response stream")
                break
        self._consumed = True
        self._connection._forget(self._pending)

    def cancel(self) -> bool:
        """Ask the server to cancel the whole batch (CANCEL frame)."""
        return self._connection._cancel(self.request_id)


def _error_from_frame(frame: protocol.Error) -> BaseException:
    if frame.code == "BUSY":
        return ServerBusyError(frame.message,
                               retry_after_ms=frame.retry_after_ms)
    if frame.code == "CANCELLED":
        return QueryCancelledError(frame.message)
    if frame.code == "AUTH":
        return AuthenticationError(frame.message)
    if frame.code == "PROTOCOL":
        return ProtocolError(frame.message)
    return ServerError(frame.code, frame.message)


class PreparedStatement:
    """Client-side handle to a server-side prepared statement."""

    def __init__(self, connection: "ClientConnection",
                 statement_id: int, sql: str,
                 prepared: protocol.Prepared):
        self._connection = connection
        self.statement_id = statement_id
        self.sql = sql
        #: ``(name, SQLType)`` per parameter slot (name "" = positional).
        self.parameters = [(name, SQLType(type_name))
                           for name, type_name in prepared.parameters]
        self.column_names = list(prepared.column_names)
        self.column_types = [SQLType(name)
                             for name in prepared.column_types]

    def execute(self, params=None, timeout: Optional[float] = None,
                **options) -> ClientResult:
        return self._connection.execute(
            statement=self, params=params, timeout=timeout, **options)

    def execute_async(self, params=None, **options) -> PendingResult:
        return self._connection.execute_async(
            statement=self, params=params, **options)

    def execute_many(self, bindings, timeout: Optional[float] = None,
                     **options) -> list:
        return self._connection.execute_many(
            statement=self, bindings=bindings, timeout=timeout, **options)

    def execute_many_async(self, bindings, **options) -> PendingBatchResult:
        return self._connection.execute_many_async(
            statement=self, bindings=bindings, **options)

    def close(self) -> None:
        """Drop the server-side registry entry (idempotent best-effort)."""
        self._connection._close_statement(self.statement_id)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<PreparedStatement {self.statement_id} "
                f"params={len(self.parameters)} sql={self.sql[:40]!r}>")


class ClientConnection:
    """One authenticated connection to a query server (thread-safe)."""

    def __init__(self, sock: socket.socket, session_name: str):
        self._sock = sock
        self.session_name = session_name
        self._write_lock = threading.Lock()
        self._state_lock = threading.Lock()
        self._pending: dict[int, _Pending] = {}
        self._request_seq = 0
        self._closed = False
        self._reader_error: Optional[BaseException] = None
        self._reader = threading.Thread(
            target=self._read_loop, name="repro-client-reader", daemon=True)
        self._reader.start()

    # ------------------------------------------------------------------ #
    # wire plumbing
    # ------------------------------------------------------------------ #
    def _next_request(self) -> _Pending:
        with self._state_lock:
            if self._closed:
                raise ProtocolError("connection is closed")
            if self._reader_error is not None:
                raise ProtocolError(
                    f"connection is broken: {self._reader_error}")
            self._request_seq += 1
            pending = _Pending(self._request_seq)
            self._pending[pending.request_id] = pending
            return pending

    def _forget(self, pending: _Pending) -> None:
        with self._state_lock:
            self._pending.pop(pending.request_id, None)

    def _send(self, message) -> None:
        data = encode_frame(message)
        with self._write_lock:
            try:
                self._sock.sendall(data)
            except OSError as exc:
                raise ProtocolError(f"send failed: {exc}") from exc

    def _read_loop(self) -> None:
        try:
            while True:
                frame = _read_frame(self._sock)
                if frame is None:  # orderly EOF
                    break
                request_id = getattr(frame, "request_id", None)
                if isinstance(frame, protocol.Goodbye):
                    break
                with self._state_lock:
                    pending = (None if request_id is None
                               else self._pending.get(request_id))
                    if pending is None and isinstance(frame, protocol.Error):
                        # Connection-level error (request id 0 or unknown):
                        # poison every outstanding request below.
                        self._reader_error = _error_from_frame(frame)
                        break
                if pending is not None:
                    pending.frames.put(frame)
        except OSError as exc:
            with self._state_lock:
                if not self._closed and self._reader_error is None:
                    self._reader_error = ProtocolError(
                        f"connection lost: {exc}")
        except ProtocolError as exc:
            with self._state_lock:
                if self._reader_error is None:
                    self._reader_error = exc
        finally:
            with self._state_lock:
                error = self._reader_error or ProtocolError(
                    "connection closed by server")
                outstanding = list(self._pending.values())
            for pending in outstanding:
                pending.frames.put(error)

    def _roundtrip(self, build_message, timeout: Optional[float] = None):
        """Send one request frame and return its single response frame."""
        pending = self._next_request()
        try:
            self._send(build_message(pending.request_id))
            try:
                frame = pending.frames.get(timeout=timeout)
            except queue.Empty:
                raise TimeoutError(
                    f"no response for request {pending.request_id} "
                    f"within {timeout} seconds")
            if isinstance(frame, BaseException):
                raise frame
            if isinstance(frame, protocol.Error):
                raise _error_from_frame(frame)
            return frame
        finally:
            self._forget(pending)

    # ------------------------------------------------------------------ #
    # statement API
    # ------------------------------------------------------------------ #
    def prepare(self, sql: str,
                timeout: Optional[float] = None) -> PreparedStatement:
        """Prepare ``sql`` server-side; returns the typed statement handle."""
        frame = self._roundtrip(
            lambda request_id: protocol.Prepare(request_id=request_id,
                                                sql=sql),
            timeout=timeout)
        if not isinstance(frame, protocol.Prepared):
            raise ProtocolError(
                f"expected PREPARED, got {type(frame).__name__.upper()}")
        return PreparedStatement(self, frame.statement_id, sql, frame)

    def execute_async(self, sql: str = "", params=None,
                      statement: Optional[PreparedStatement] = None,
                      batch_rows: int = 0, **options) -> PendingResult:
        """Submit an EXECUTE without waiting; returns a pending handle.

        ``options`` are per-request :class:`~repro.options.ExecOptions`
        field overrides (``mode=``, ``threads=``, ...), applied server-side
        on top of the connection's session defaults.
        """
        pending = self._next_request()
        message = protocol.Execute(
            request_id=pending.request_id,
            statement_id=statement.statement_id if statement else 0,
            sql="" if statement else sql,
            params=params,
            options={name: value for name, value in options.items()
                     if value is not None},
            batch_rows=batch_rows)
        try:
            self._send(message)
        except BaseException:
            self._forget(pending)
            raise
        return PendingResult(self, pending)

    def execute(self, sql: str = "", params=None,
                statement: Optional[PreparedStatement] = None,
                timeout: Optional[float] = None,
                batch_rows: int = 0, **options) -> ClientResult:
        """Execute and wait for the full result (see :meth:`execute_async`)."""
        return self.execute_async(
            sql, params=params, statement=statement,
            batch_rows=batch_rows, **options).result(timeout=timeout)

    def execute_many_async(self, sql: str = "", bindings=(),
                           statement: Optional[PreparedStatement] = None,
                           batch_rows: int = 0,
                           **options) -> PendingBatchResult:
        """Submit one EXECUTE_MANY for a whole batch of bindings.

        ``bindings`` is a sequence of per-execution parameter sets (each a
        tuple/list, a dict, or ``None``); the server runs the statement
        once per binding in a single request and streams the results back
        in order.  Returns a :class:`PendingBatchResult` immediately.
        """
        pending = self._next_request()
        message = protocol.ExecuteMany(
            request_id=pending.request_id,
            statement_id=statement.statement_id if statement else 0,
            sql="" if statement else sql,
            bindings=list(bindings),
            options={name: value for name, value in options.items()
                     if value is not None},
            batch_rows=batch_rows)
        try:
            self._send(message)
        except BaseException:
            self._forget(pending)
            raise
        return PendingBatchResult(self, pending)

    def execute_many(self, sql: str = "", bindings=(),
                     statement: Optional[PreparedStatement] = None,
                     timeout: Optional[float] = None,
                     batch_rows: int = 0, **options) -> list:
        """Run one statement for every binding; ordered result list."""
        return self.execute_many_async(
            sql, bindings=bindings, statement=statement,
            batch_rows=batch_rows, **options).result(timeout=timeout)

    def _cancel(self, target_request_id: int,
                timeout: Optional[float] = None) -> bool:
        frame = self._roundtrip(
            lambda request_id: protocol.Cancel(
                request_id=request_id,
                target_request_id=target_request_id),
            timeout=timeout)
        if not isinstance(frame, protocol.CancelResult):
            raise ProtocolError(
                f"expected CANCEL_RESULT, got "
                f"{type(frame).__name__.upper()}")
        return frame.cancelled

    def _close_statement(self, statement_id: int) -> None:
        try:
            self._roundtrip(
                lambda request_id: protocol.CloseStatement(
                    request_id=request_id, statement_id=statement_id),
                timeout=10.0)
        except (ProtocolError, TimeoutError):
            pass  # best-effort: a dead connection already dropped it

    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Send GOODBYE (best-effort), close the socket, join the reader."""
        with self._state_lock:
            if self._closed:
                return
            self._closed = True
        try:
            self._send(protocol.Goodbye())
        except ProtocolError:
            pass
        try:
            self._sock.shutdown(socket.SHUT_WR)
        except OSError:
            pass
        self._reader.join(10.0)
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ClientConnection":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "closed" if self._closed else "open"
        return f"<ClientConnection {self.session_name} {state}>"


# ---------------------------------------------------------------------- #
# socket-level helpers
# ---------------------------------------------------------------------- #
def _recv_exactly(sock: socket.socket, count: int,
                  allow_eof: bool = False) -> Optional[bytes]:
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if allow_eof and remaining == count:
                return None
            raise ProtocolError(
                f"connection closed mid-frame ({count - remaining} of "
                f"{count} bytes read)")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def _read_frame(sock: socket.socket):
    """One decoded frame, or ``None`` on a clean EOF between frames."""
    header = _recv_exactly(sock, FRAME_HEADER_BYTES, allow_eof=True)
    if header is None:
        return None
    length, frame_type = decode_header(header)
    payload = _recv_exactly(sock, length) if length else b""
    return decode_payload(frame_type, payload)


def connect(host: str, port: int, auth_token: str = "",
            session_name: str = "", timeout: Optional[float] = None
            ) -> ClientConnection:
    """Open a connection and perform the HELLO handshake.

    ``timeout`` bounds the TCP connect and the handshake round-trip; the
    established connection itself has no read timeout.  Raises
    :class:`~repro.errors.AuthenticationError` when the server rejects the
    token and :class:`~repro.errors.ProtocolError` on handshake violations.
    """
    sock = socket.create_connection((host, port), timeout=timeout)
    try:
        sock.settimeout(timeout)
        sock.sendall(encode_frame(protocol.Hello(
            token=auth_token, session_name=session_name,
            protocol_version=PROTOCOL_VERSION)))
        frame = _read_frame(sock)
        if frame is None:
            raise ProtocolError("server closed the connection during the "
                                "handshake")
        if isinstance(frame, protocol.Error):
            raise _error_from_frame(frame)
        if not isinstance(frame, protocol.Welcome):
            raise ProtocolError(
                f"expected WELCOME, got {type(frame).__name__.upper()}")
        sock.settimeout(None)
        return ClientConnection(sock, frame.session_name)
    except (struct.error, OSError) as exc:
        sock.close()
        raise ProtocolError(f"handshake failed: {exc}") from exc
    except BaseException:
        sock.close()
        raise
