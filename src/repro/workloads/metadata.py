"""pgAdmin-style metadata workload (paper Section I).

The paper motivates adaptive execution with the catalog queries a GUI tool
sends on startup: complex joins over tiny metadata tables, where compilation
would take orders of magnitude longer than execution.  This module builds a
miniature PostgreSQL-like catalog (pg_class / pg_namespace / pg_attribute /
pg_inherits / pg_index) and provides a batch of metadata queries in the same
spirit as the paper's example query.
"""

from __future__ import annotations

import random
from typing import Optional

from ..engine import Database
from ..types import SQLType


def populate_metadata(db: Optional[Database] = None, num_tables: int = 300,
                      seed: int = 11) -> Database:
    """Create and fill the miniature system catalog."""
    db = db or Database()
    I, S = SQLType.INT64, SQLType.STRING
    rng = random.Random(seed)

    db.create_table("pg_namespace", [("oid", I), ("nspname", S)])
    db.create_table("pg_class", [("oid", I), ("relname", S),
                                 ("relnamespace", I), ("relkind", S),
                                 ("relpages", I), ("reltuples", I)])
    db.create_table("pg_attribute", [("attrelid", I), ("attname", S),
                                     ("attnum", I), ("atttypid", I)])
    db.create_table("pg_inherits", [("inhrelid", I), ("inhparent", I),
                                    ("inhseqno", I)])
    db.create_table("pg_index", [("indexrelid", I), ("indrelid", I),
                                 ("indisunique", I), ("indisprimary", I)])

    namespaces = ["pg_catalog", "public", "information_schema", "app",
                  "analytics"]
    db.insert("pg_namespace", [(i + 1, name) for i, name
                               in enumerate(namespaces)], encode=False)

    classes = []
    attributes = []
    inherits = []
    indexes = []
    for oid in range(1, num_tables + 1):
        namespace = rng.randint(1, len(namespaces))
        classes.append((oid, f"table_{oid}", namespace,
                        rng.choice(["r", "i", "v"]), rng.randint(1, 1000),
                        rng.randint(0, 100_000)))
        for attnum in range(1, rng.randint(3, 12)):
            attributes.append((oid, f"col_{attnum}", attnum,
                               rng.choice([20, 23, 25, 700, 1082])))
        if oid > 10 and rng.random() < 0.2:
            inherits.append((oid, rng.randint(1, 10), rng.randint(1, 5)))
        if rng.random() < 0.5:
            indexes.append((10_000 + oid, oid, rng.randint(0, 1),
                            rng.randint(0, 1)))
    db.insert("pg_class", classes, encode=False)
    db.insert("pg_attribute", attributes, encode=False)
    db.insert("pg_inherits", inherits, encode=False)
    db.insert("pg_index", indexes, encode=False)
    return db


#: Metadata queries in the spirit of the paper's pgAdmin example: complex
#: join structure, tiny inputs, negligible execution time.
METADATA_QUERIES: list[str] = [
    # The paper's example query (rewritten without the correlated lookup).
    """
    select c.oid, c.relname, n.nspname, i.inhseqno
    from pg_inherits i, pg_class c, pg_namespace n
    where c.oid = i.inhparent and n.oid = c.relnamespace
      and i.inhrelid = 42
    order by i.inhseqno
    """,
    """
    select n.nspname, count(*) as num_tables, sum(c.reltuples) as tuples
    from pg_class c, pg_namespace n
    where c.relnamespace = n.oid and c.relkind = 'r'
    group by n.nspname
    order by num_tables desc
    """,
    """
    select c.relname, count(*) as num_columns
    from pg_class c, pg_attribute a
    where a.attrelid = c.oid
    group by c.relname
    order by num_columns desc, c.relname
    limit 20
    """,
    """
    select n.nspname, c.relname, x.indisunique, x.indisprimary
    from pg_index x, pg_class c, pg_namespace n
    where x.indrelid = c.oid and c.relnamespace = n.oid
      and x.indisprimary = 1
    order by n.nspname, c.relname
    limit 50
    """,
    """
    select p.relname as parent, c.relname as child, i.inhseqno
    from pg_inherits i, pg_class p, pg_class c, pg_namespace n
    where i.inhparent = p.oid and i.inhrelid = c.oid
      and p.relnamespace = n.oid and n.nspname = 'public'
    order by parent, inhseqno
    """,
]
