"""Machine-generated wide-aggregate queries (paper Section V-E, Fig. 15).

Business-intelligence tools generate enormous queries; the paper models them
with "a single table scan and an increasing number of aggregate expressions"
(10 to 1,900 aggregates, 1,000 to 160,000 LLVM instructions) and shows that
only the linear-time bytecode translation copes with them.  This module
generates exactly that query family.
"""

from __future__ import annotations

import random
from typing import Optional

from ..engine import Database
from ..types import SQLType

#: Columns of the synthetic wide table used as the scan target.
_WIDE_COLUMNS = ["v0", "v1", "v2", "v3", "v4", "v5", "v6", "v7"]


def populate_wide_table(db: Optional[Database] = None, num_rows: int = 5_000,
                        seed: int = 3) -> Database:
    """Create the scan target for the machine-generated queries."""
    db = db or Database()
    rng = random.Random(seed)
    db.create_table("measurements",
                    [("id", SQLType.INT64)]
                    + [(name, SQLType.FLOAT64) for name in _WIDE_COLUMNS])
    rows = []
    for i in range(num_rows):
        rows.append(tuple([i] + [round(rng.uniform(-100.0, 100.0), 4)
                                 for _ in _WIDE_COLUMNS]))
    db.insert("measurements", rows, encode=False)
    return db


def wide_aggregate_query(num_aggregates: int, with_filter: bool = True) -> str:
    """Generate a query with ``num_aggregates`` distinct aggregate expressions.

    Every aggregate is a different arithmetic combination of the base
    columns, so common-subexpression elimination cannot collapse them and the
    generated code grows linearly with ``num_aggregates`` -- the same
    behaviour the paper's generator exhibits.
    """
    aggregates = []
    for index in range(num_aggregates):
        column_a = _WIDE_COLUMNS[index % len(_WIDE_COLUMNS)]
        column_b = _WIDE_COLUMNS[(index // len(_WIDE_COLUMNS) + 1)
                                 % len(_WIDE_COLUMNS)]
        factor = (index % 13) + 1
        offset = index * 0.5
        function = ("sum", "avg", "min", "max")[index % 4]
        aggregates.append(
            f"{function}({column_a} * {factor} + {column_b} - {offset}) "
            f"as agg_{index}")
    where = "where v0 > -50.0 and v1 < 90.0" if with_filter else ""
    return (f"select {', '.join(aggregates)} from measurements {where}")
