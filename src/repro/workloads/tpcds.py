"""TPC-DS-flavoured star-schema workload.

TPC-DS is used in the paper mainly as a source of *larger* generated code
(its queries compile to up to ~19,000 LLVM instructions, Fig. 6, and TPC-DS
query 55 is the register-allocation example of Section IV-C).  This module
provides a compact star schema (store_sales fact table with date, item,
store and customer dimensions) plus a set of queries with deliberately wide
aggregate lists and multi-way joins so that the generated IR spans a wide
size range -- which is what the compile-time scaling experiments need.
"""

from __future__ import annotations

import random
from typing import Optional

from ..engine import Database
from ..types import SQLType, date_to_days, decimal_to_scaled

#: Rows per "scale unit" for the fact table and dimensions.
DEFAULT_FACT_ROWS = 8_000


def populate_tpcds(db: Optional[Database] = None, fact_rows: int = DEFAULT_FACT_ROWS,
                   seed: int = 7) -> Database:
    """Create and populate the TPC-DS-flavoured star schema."""
    db = db or Database()
    I, F, D, S, DEC = (SQLType.INT64, SQLType.FLOAT64, SQLType.DATE,
                       SQLType.STRING, SQLType.DECIMAL)
    rng = random.Random(seed)

    num_items = max(fact_rows // 40, 20)
    num_stores = 12
    num_customers = max(fact_rows // 20, 50)
    num_dates = 365 * 3

    db.create_table("date_dim", [("d_date_sk", I), ("d_date", D),
                                 ("d_year", I), ("d_moy", I), ("d_dom", I),
                                 ("d_day_name", S)])
    db.create_table("item", [("i_item_sk", I), ("i_item_id", S),
                             ("i_category", S), ("i_brand", S),
                             ("i_current_price", DEC), ("i_class", S)])
    db.create_table("store", [("s_store_sk", I), ("s_store_name", S),
                              ("s_state", S), ("s_market_id", I)])
    db.create_table("customer_dim", [("cd_customer_sk", I), ("cd_name", S),
                                     ("cd_birth_year", I), ("cd_state", S)])
    db.create_table("store_sales", [
        ("ss_sold_date_sk", I), ("ss_item_sk", I), ("ss_store_sk", I),
        ("ss_customer_sk", I), ("ss_quantity", I), ("ss_list_price", DEC),
        ("ss_sales_price", DEC), ("ss_ext_discount_amt", DEC),
        ("ss_net_profit", DEC), ("ss_wholesale_cost", DEC)])

    categories = ["Music", "Books", "Electronics", "Home", "Sports",
                  "Jewelry", "Shoes", "Women", "Men", "Children"]
    states = ["CA", "TX", "NY", "WA", "IL", "GA", "OH", "MI"]
    day_names = ["Sunday", "Monday", "Tuesday", "Wednesday", "Thursday",
                 "Friday", "Saturday"]

    base_date = date_to_days("1999-01-01")
    db.insert("date_dim", [
        (i, base_date + i, 1999 + (i // 365), (i // 30) % 12 + 1, i % 28 + 1,
         day_names[i % 7])
        for i in range(num_dates)], encode=False)
    db.insert("item", [
        (i, f"ITEM{i:08d}", categories[i % len(categories)],
         f"Brand#{i % 50}", decimal_to_scaled(round(rng.uniform(1, 300), 2)),
         f"class{i % 15}")
        for i in range(num_items)], encode=False)
    db.insert("store", [
        (i, f"Store {i}", states[i % len(states)], i % 5)
        for i in range(num_stores)], encode=False)
    db.insert("customer_dim", [
        (i, f"Customer {i}", 1930 + (i % 70), states[i % len(states)])
        for i in range(num_customers)], encode=False)

    fact_rows_data = []
    for i in range(fact_rows):
        list_price = round(rng.uniform(1.0, 300.0), 2)
        sales_price = round(list_price * rng.uniform(0.3, 1.0), 2)
        fact_rows_data.append((
            rng.randrange(num_dates), rng.randrange(num_items),
            rng.randrange(num_stores), rng.randrange(num_customers),
            rng.randint(1, 100), decimal_to_scaled(list_price),
            decimal_to_scaled(sales_price),
            decimal_to_scaled(round(rng.uniform(0, 50), 2)),
            decimal_to_scaled(round(rng.uniform(-100, 500), 2)),
            decimal_to_scaled(round(list_price * 0.6, 2))))
    db.insert("store_sales", fact_rows_data, encode=False)
    return db


def _wide_sum_list(columns: list[str], repetitions: int) -> str:
    """Build a wide aggregate list over the given columns."""
    aggregates = []
    for index in range(repetitions):
        column = columns[index % len(columns)]
        factor = (index % 7) + 1
        aggregates.append(
            f"sum({column} * {factor} + {index}) as agg_{index}")
    return ", ".join(aggregates)


_SALES_COLUMNS = ["ss_quantity", "ss_list_price", "ss_sales_price",
                  "ss_ext_discount_amt", "ss_net_profit",
                  "ss_wholesale_cost"]

#: TPC-DS-flavoured queries, deliberately spanning a wide range of generated
#: code sizes (the dict key is the query id used in reports).
TPCDS_QUERIES: dict[int, str] = {
    3: """
        select d_year, i_brand, sum(ss_ext_discount_amt) as sum_agg
        from store_sales, date_dim, item
        where ss_sold_date_sk = d_date_sk and ss_item_sk = i_item_sk
          and i_category = 'Music' and d_moy = 11
        group by d_year, i_brand
        order by d_year, sum_agg desc, i_brand
        limit 100
    """,
    7: """
        select i_item_id, avg(ss_quantity) as agg1,
               avg(ss_list_price) as agg2, avg(ss_sales_price) as agg3,
               avg(ss_net_profit) as agg4
        from store_sales, item, date_dim
        where ss_item_sk = i_item_sk and ss_sold_date_sk = d_date_sk
          and d_year = 2000
        group by i_item_id
        order by i_item_id
        limit 100
    """,
    19: """
        select i_brand, i_category, s_state,
               sum(ss_ext_discount_amt) as ext_price,
               sum(ss_net_profit) as profit,
               count(*) as cnt
        from store_sales, item, store, date_dim
        where ss_item_sk = i_item_sk and ss_store_sk = s_store_sk
          and ss_sold_date_sk = d_date_sk and d_moy = 12
          and i_current_price > 50.0
        group by i_brand, i_category, s_state
        order by ext_price desc, i_brand
        limit 100
    """,
    42: """
        select d_year, i_category,
               sum(ss_ext_discount_amt) as total_discount,
               sum(ss_sales_price * ss_quantity) as volume
        from store_sales, date_dim, item
        where ss_sold_date_sk = d_date_sk and ss_item_sk = i_item_sk
          and d_year = 2000
        group by d_year, i_category
        order by total_discount desc, i_category
    """,
    # Query 55-like shapes with progressively wider aggregate lists: these
    # are the "large generated code" data points of Fig. 6 and the register
    # allocation example of Section IV-C.
    55: f"""
        select i_brand, s_state, {_wide_sum_list(_SALES_COLUMNS, 24)}
        from store_sales, item, store, date_dim
        where ss_item_sk = i_item_sk and ss_store_sk = s_store_sk
          and ss_sold_date_sk = d_date_sk and d_moy = 11
        group by i_brand, s_state
        order by i_brand, s_state
        limit 100
    """,
    67: f"""
        select i_category, d_year, {_wide_sum_list(_SALES_COLUMNS, 48)}
        from store_sales, item, date_dim
        where ss_item_sk = i_item_sk and ss_sold_date_sk = d_date_sk
        group by i_category, d_year
        order by i_category, d_year
    """,
    88: f"""
        select s_store_name,
               {_wide_sum_list(_SALES_COLUMNS, 80)}
        from store_sales, store, date_dim, item, customer_dim
        where ss_store_sk = s_store_sk and ss_sold_date_sk = d_date_sk
          and ss_item_sk = i_item_sk and ss_customer_sk = cd_customer_sk
          and cd_birth_year > 1950
        group by s_store_name
        order by s_store_name
    """,
}
