"""Benchmark workloads: TPC-H-derived, TPC-DS-flavoured, metadata and
machine-generated wide-aggregate queries."""

from .tpch import TPCH_QUERIES, populate_tpch, tpch_query
from .tpcds import TPCDS_QUERIES, populate_tpcds
from .metadata import METADATA_QUERIES, populate_metadata
from .largequeries import populate_wide_table, wide_aggregate_query

__all__ = [
    "TPCH_QUERIES", "populate_tpch", "tpch_query",
    "TPCDS_QUERIES", "populate_tpcds",
    "METADATA_QUERIES", "populate_metadata",
    "populate_wide_table", "wide_aggregate_query",
]
