"""Deterministic, scaled TPC-H data generator.

The generator creates all eight TPC-H tables with the official column sets
and value domains (return flags, ship modes, brands, market segments, date
ranges...), but the row counts are scaled down by ``rows_per_unit`` relative
to the official 1 GB scale factor so that the full benchmark sweep runs on a
laptop in CI time (DESIGN.md documents the substitution: the experiments rely
on *relative* data sizes, which the scaled generator preserves exactly --
orders:lineitem:partsupp ratios match TPC-H).

Everything is generated from a seeded :class:`random.Random`, so repeated
runs and different execution engines see identical data.
"""

from __future__ import annotations

import datetime as _dt
import random
from typing import Optional

from ...engine import Database
from ...types import SQLType, date_to_days, decimal_to_scaled

#: Official TPC-H rows per scale factor 1.
TPCH_TABLE_RATIOS = {
    "region": 5,
    "nation": 25,
    "supplier": 10_000,
    "customer": 150_000,
    "part": 200_000,
    "partsupp": 800_000,
    "orders": 1_500_000,
    "lineitem": 6_000_000,
}

#: Default down-scaling: 1/1000 of the official row counts.
DEFAULT_ROWS_PER_UNIT = 0.001

_REGIONS = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]
_NATIONS = [
    ("ALGERIA", 0), ("ARGENTINA", 1), ("BRAZIL", 1), ("CANADA", 1),
    ("EGYPT", 4), ("ETHIOPIA", 0), ("FRANCE", 3), ("GERMANY", 3),
    ("INDIA", 2), ("INDONESIA", 2), ("IRAN", 4), ("IRAQ", 4),
    ("JAPAN", 2), ("JORDAN", 4), ("KENYA", 0), ("MOROCCO", 0),
    ("MOZAMBIQUE", 0), ("PERU", 1), ("CHINA", 2), ("ROMANIA", 3),
    ("SAUDI ARABIA", 4), ("VIETNAM", 2), ("RUSSIA", 3),
    ("UNITED KINGDOM", 3), ("UNITED STATES", 1),
]
_SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"]
_PRIORITIES = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"]
_SHIP_MODES = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"]
_SHIP_INSTRUCT = ["DELIVER IN PERSON", "COLLECT COD", "NONE",
                  "TAKE BACK RETURN"]
_CONTAINERS = ["SM CASE", "SM BOX", "SM PACK", "SM PKG",
               "MED BAG", "MED BOX", "MED PKG", "MED PACK",
               "LG CASE", "LG BOX", "LG PACK", "LG PKG",
               "JUMBO BAG", "JUMBO BOX", "WRAP CASE", "WRAP BOX"]
_TYPE_SYLL1 = ["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"]
_TYPE_SYLL2 = ["ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"]
_TYPE_SYLL3 = ["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"]
_NAME_WORDS = ["almond", "antique", "aquamarine", "azure", "beige", "bisque",
               "black", "blanched", "blue", "blush", "brown", "burlywood",
               "chartreuse", "chiffon", "chocolate", "coral", "cornflower",
               "cream", "cyan", "dark", "deep", "dim", "dodger", "drab",
               "firebrick", "floral", "forest", "frosted", "gainsboro",
               "ghost", "goldenrod", "green", "grey", "honeydew", "hot",
               "indian", "ivory", "khaki", "lace", "lavender", "lawn",
               "lemon", "light", "lime", "linen", "magenta", "maroon",
               "medium", "metallic", "midnight", "mint", "misty", "moccasin",
               "navajo", "navy", "olive", "orange", "orchid", "pale",
               "papaya", "peach", "peru", "pink", "plum", "powder", "puff",
               "purple", "red", "rose", "rosy", "royal", "saddle", "salmon",
               "sandy", "seashell", "sienna", "sky", "slate", "smoke",
               "snow", "spring", "steel", "tan", "thistle", "tomato",
               "turquoise", "violet", "wheat", "white", "yellow"]
_COMMENT_WORDS = ["carefully", "final", "requests", "special", "furiously",
                  "pending", "accounts", "deposits", "quickly", "ironic",
                  "packages", "express", "regular", "slyly", "bold", "even"]

_START_DATE = _dt.date(1992, 1, 1)
_END_DATE = _dt.date(1998, 12, 1)
_DATE_SPAN = (_END_DATE - _START_DATE).days


def table_sizes(scale_factor: float,
                rows_per_unit: float = DEFAULT_ROWS_PER_UNIT
                ) -> dict[str, int]:
    """Row counts per table for the given scale factor."""
    sizes = {}
    for table, official in TPCH_TABLE_RATIOS.items():
        if table in ("region", "nation"):
            sizes[table] = official
        else:
            sizes[table] = max(int(official * rows_per_unit * scale_factor), 1)
    return sizes


def create_tpch_schema(db: Database) -> None:
    """Create the eight TPC-H tables (official column names)."""
    I, F, D, S, DEC = (SQLType.INT64, SQLType.FLOAT64, SQLType.DATE,
                       SQLType.STRING, SQLType.DECIMAL)
    db.create_table("region", [("r_regionkey", I), ("r_name", S),
                               ("r_comment", S)])
    db.create_table("nation", [("n_nationkey", I), ("n_name", S),
                               ("n_regionkey", I), ("n_comment", S)])
    db.create_table("supplier", [("s_suppkey", I), ("s_name", S),
                                 ("s_address", S), ("s_nationkey", I),
                                 ("s_phone", S), ("s_acctbal", DEC),
                                 ("s_comment", S)])
    db.create_table("customer", [("c_custkey", I), ("c_name", S),
                                 ("c_address", S), ("c_nationkey", I),
                                 ("c_phone", S), ("c_acctbal", DEC),
                                 ("c_mktsegment", S), ("c_comment", S)])
    db.create_table("part", [("p_partkey", I), ("p_name", S), ("p_mfgr", S),
                             ("p_brand", S), ("p_type", S), ("p_size", I),
                             ("p_container", S), ("p_retailprice", DEC),
                             ("p_comment", S)])
    db.create_table("partsupp", [("ps_partkey", I), ("ps_suppkey", I),
                                 ("ps_availqty", I), ("ps_supplycost", DEC),
                                 ("ps_comment", S)])
    db.create_table("orders", [("o_orderkey", I), ("o_custkey", I),
                               ("o_orderstatus", S), ("o_totalprice", DEC),
                               ("o_orderdate", D), ("o_orderpriority", S),
                               ("o_clerk", S), ("o_shippriority", I),
                               ("o_comment", S)])
    db.create_table("lineitem", [("l_orderkey", I), ("l_partkey", I),
                                 ("l_suppkey", I), ("l_linenumber", I),
                                 ("l_quantity", DEC),
                                 ("l_extendedprice", DEC),
                                 ("l_discount", DEC), ("l_tax", DEC),
                                 ("l_returnflag", S), ("l_linestatus", S),
                                 ("l_shipdate", D), ("l_commitdate", D),
                                 ("l_receiptdate", D), ("l_shipinstruct", S),
                                 ("l_shipmode", S), ("l_comment", S)])


def populate_tpch(db: Optional[Database] = None, scale_factor: float = 0.1,
                  rows_per_unit: float = DEFAULT_ROWS_PER_UNIT,
                  seed: int = 42) -> Database:
    """Create and populate a TPC-H database at the given scale factor."""
    db = db or Database()
    if not db.catalog.has_table("lineitem"):
        create_tpch_schema(db)
    rng = random.Random(seed)
    sizes = table_sizes(scale_factor, rows_per_unit)

    def comment() -> str:
        return " ".join(rng.choices(_COMMENT_WORDS, k=rng.randint(3, 8)))

    def price() -> int:
        return decimal_to_scaled(round(rng.uniform(900.0, 100_000.0), 2))

    def random_date() -> int:
        return date_to_days(_START_DATE) + rng.randint(0, _DATE_SPAN)

    # region / nation --------------------------------------------------------
    db.insert("region", [(i, name, comment()) for i, name
                         in enumerate(_REGIONS)], encode=False)
    db.insert("nation", [(i, name, region, comment()) for i, (name, region)
                         in enumerate(_NATIONS)], encode=False)

    # supplier ----------------------------------------------------------------
    num_suppliers = sizes["supplier"]
    db.insert("supplier", [
        (i, f"Supplier#{i:09d}", f"address {i}", rng.randrange(25),
         f"{rng.randint(10, 34)}-{rng.randint(100, 999)}-{rng.randint(1000, 9999)}",
         decimal_to_scaled(round(rng.uniform(-999.99, 9999.99), 2)), comment())
        for i in range(num_suppliers)], encode=False)

    # customer ----------------------------------------------------------------
    num_customers = sizes["customer"]
    db.insert("customer", [
        (i, f"Customer#{i:09d}", f"address {i}", rng.randrange(25),
         f"{rng.randint(10, 34)}-{rng.randint(100, 999)}-{rng.randint(1000, 9999)}",
         decimal_to_scaled(round(rng.uniform(-999.99, 9999.99), 2)),
         rng.choice(_SEGMENTS), comment())
        for i in range(num_customers)], encode=False)

    # part --------------------------------------------------------------------
    num_parts = sizes["part"]
    db.insert("part", [
        (i,
         " ".join(rng.sample(_NAME_WORDS, 5)),
         f"Manufacturer#{rng.randint(1, 5)}",
         f"Brand#{rng.randint(1, 5)}{rng.randint(1, 5)}",
         f"{rng.choice(_TYPE_SYLL1)} {rng.choice(_TYPE_SYLL2)} "
         f"{rng.choice(_TYPE_SYLL3)}",
         rng.randint(1, 50), rng.choice(_CONTAINERS),
         decimal_to_scaled(round(900 + (i % 200) + 0.01 * (i % 100), 2)),
         comment())
        for i in range(num_parts)], encode=False)

    # partsupp ----------------------------------------------------------------
    num_partsupp = sizes["partsupp"]
    per_part = max(num_partsupp // max(num_parts, 1), 1)
    partsupp_rows = []
    for part in range(num_parts):
        for j in range(per_part):
            partsupp_rows.append(
                (part, (part + j * 7) % max(num_suppliers, 1),
                 rng.randint(1, 9999),
                 decimal_to_scaled(round(rng.uniform(1.0, 1000.0), 2)),
                 comment()))
    db.insert("partsupp", partsupp_rows, encode=False)

    # orders ------------------------------------------------------------------
    num_orders = sizes["orders"]
    order_dates = {}
    orders_rows = []
    for i in range(num_orders):
        order_date = random_date()
        order_dates[i] = order_date
        orders_rows.append(
            (i, rng.randrange(max(num_customers, 1)),
             rng.choice(["O", "F", "P"]), price(), order_date,
             rng.choice(_PRIORITIES), f"Clerk#{rng.randint(1, 1000):09d}",
             0, comment()))
    db.insert("orders", orders_rows, encode=False)

    # lineitem ----------------------------------------------------------------
    num_lineitems = sizes["lineitem"]
    lineitem_rows = []
    for i in range(num_lineitems):
        order = rng.randrange(max(num_orders, 1))
        ship_date = order_dates.get(order, random_date()) + rng.randint(1, 121)
        commit_date = ship_date + rng.randint(-30, 60)
        receipt_date = ship_date + rng.randint(1, 30)
        quantity = decimal_to_scaled(rng.randint(1, 50))
        extended_price = decimal_to_scaled(
            round(rng.uniform(1.0, 100.0) * (quantity / 100), 2))
        return_flag = rng.choice(["R", "A", "N"])
        line_status = "O" if ship_date > date_to_days(_dt.date(1995, 6, 17)) \
            else "F"
        lineitem_rows.append(
            (order, rng.randrange(max(num_parts, 1)),
             rng.randrange(max(num_suppliers, 1)), i % 7 + 1,
             quantity, extended_price,
             decimal_to_scaled(round(rng.uniform(0.0, 0.10), 2)),
             decimal_to_scaled(round(rng.uniform(0.0, 0.08), 2)),
             return_flag, line_status, ship_date, commit_date, receipt_date,
             rng.choice(_SHIP_INSTRUCT), rng.choice(_SHIP_MODES), comment()))
    db.insert("lineitem", lineitem_rows, encode=False)
    return db
