"""The 22 TPC-H-derived benchmark queries.

The queries keep the table sets, join structures, predicates and aggregation
shapes of the official TPC-H queries, expressed in the SQL dialect this
engine supports.  Correlated and scalar subqueries (Q2, Q4, Q11, Q13, Q15,
Q16, Q17, Q18, Q20, Q21, Q22 in the official suite) are rewritten into
join/aggregate forms with constant thresholds -- DESIGN.md documents this
substitution; the benchmarks compare execution *strategies* on identical
queries, so all engines and execution modes run exactly the same rewritten
statements.
"""

from __future__ import annotations

TPCH_QUERIES: dict[int, str] = {
    1: """
        select l_returnflag, l_linestatus,
               sum(l_quantity) as sum_qty,
               sum(l_extendedprice) as sum_base_price,
               sum(l_extendedprice * (1 - l_discount)) as sum_disc_price,
               sum(l_extendedprice * (1 - l_discount) * (1 + l_tax)) as sum_charge,
               avg(l_quantity) as avg_qty,
               avg(l_extendedprice) as avg_price,
               avg(l_discount) as avg_disc,
               count(*) as count_order
        from lineitem
        where l_shipdate <= date '1998-09-02'
        group by l_returnflag, l_linestatus
        order by l_returnflag, l_linestatus
    """,
    2: """
        select s_acctbal, s_name, n_name, p_partkey, p_mfgr
        from part, supplier, partsupp, nation, region
        where p_partkey = ps_partkey and s_suppkey = ps_suppkey
          and p_size = 15 and p_type like '%BRASS'
          and s_nationkey = n_nationkey and n_regionkey = r_regionkey
          and r_name = 'EUROPE'
        order by s_acctbal desc, n_name, s_name, p_partkey
        limit 100
    """,
    3: """
        select l_orderkey,
               sum(l_extendedprice * (1 - l_discount)) as revenue,
               o_orderdate, o_shippriority
        from customer, orders, lineitem
        where c_mktsegment = 'BUILDING'
          and c_custkey = o_custkey and l_orderkey = o_orderkey
          and o_orderdate < date '1995-03-15'
          and l_shipdate > date '1995-03-15'
        group by l_orderkey, o_orderdate, o_shippriority
        order by revenue desc, o_orderdate
        limit 10
    """,
    4: """
        select o_orderpriority, count(*) as order_count
        from orders, lineitem
        where l_orderkey = o_orderkey
          and o_orderdate >= date '1993-07-01'
          and o_orderdate < date '1993-10-01'
          and l_commitdate < l_receiptdate
        group by o_orderpriority
        order by o_orderpriority
    """,
    5: """
        select n_name, sum(l_extendedprice * (1 - l_discount)) as revenue
        from customer, orders, lineitem, supplier, nation, region
        where c_custkey = o_custkey and l_orderkey = o_orderkey
          and l_suppkey = s_suppkey and c_nationkey = s_nationkey
          and s_nationkey = n_nationkey and n_regionkey = r_regionkey
          and r_name = 'ASIA'
          and o_orderdate >= date '1994-01-01'
          and o_orderdate < date '1995-01-01'
        group by n_name
        order by revenue desc
    """,
    6: """
        select sum(l_extendedprice * l_discount) as revenue
        from lineitem
        where l_shipdate >= date '1994-01-01'
          and l_shipdate < date '1995-01-01'
          and l_discount between 0.05 and 0.07
          and l_quantity < 24
    """,
    7: """
        select n1.n_name as supp_nation, n2.n_name as cust_nation,
               year(l_shipdate) as l_year,
               sum(l_extendedprice * (1 - l_discount)) as revenue
        from supplier, lineitem, orders, customer, nation n1, nation n2
        where s_suppkey = l_suppkey and o_orderkey = l_orderkey
          and c_custkey = o_custkey and s_nationkey = n1.n_nationkey
          and c_nationkey = n2.n_nationkey
          and ((n1.n_name = 'FRANCE' and n2.n_name = 'GERMANY')
               or (n1.n_name = 'GERMANY' and n2.n_name = 'FRANCE'))
          and l_shipdate between date '1995-01-01' and date '1996-12-31'
        group by n1.n_name, n2.n_name, year(l_shipdate)
        order by supp_nation, cust_nation, l_year
    """,
    8: """
        select year(o_orderdate) as o_year,
               sum(case when n2.n_name = 'BRAZIL'
                        then l_extendedprice * (1 - l_discount)
                        else 0.0 end) as brazil_revenue,
               sum(l_extendedprice * (1 - l_discount)) as total_revenue
        from part, supplier, lineitem, orders, customer,
             nation n1, nation n2, region
        where p_partkey = l_partkey and s_suppkey = l_suppkey
          and l_orderkey = o_orderkey and o_custkey = c_custkey
          and c_nationkey = n1.n_nationkey and n1.n_regionkey = r_regionkey
          and r_name = 'AMERICA' and s_nationkey = n2.n_nationkey
          and o_orderdate between date '1995-01-01' and date '1996-12-31'
          and p_type = 'ECONOMY ANODIZED STEEL'
        group by year(o_orderdate)
        order by o_year
    """,
    9: """
        select n_name as nation, year(o_orderdate) as o_year,
               sum(l_extendedprice * (1 - l_discount)
                   - ps_supplycost * l_quantity) as sum_profit
        from part, supplier, lineitem, partsupp, orders, nation
        where s_suppkey = l_suppkey and ps_suppkey = l_suppkey
          and ps_partkey = l_partkey and p_partkey = l_partkey
          and o_orderkey = l_orderkey and s_nationkey = n_nationkey
          and p_name like '%green%'
        group by n_name, year(o_orderdate)
        order by nation, o_year desc
    """,
    10: """
        select c_custkey, c_name,
               sum(l_extendedprice * (1 - l_discount)) as revenue,
               c_acctbal, n_name
        from customer, orders, lineitem, nation
        where c_custkey = o_custkey and l_orderkey = o_orderkey
          and o_orderdate >= date '1993-10-01'
          and o_orderdate < date '1994-01-01'
          and l_returnflag = 'R' and c_nationkey = n_nationkey
        group by c_custkey, c_name, c_acctbal, n_name
        order by revenue desc
        limit 20
    """,
    11: """
        select ps_partkey, sum(ps_supplycost * ps_availqty) as value
        from partsupp, supplier, nation
        where ps_suppkey = s_suppkey and s_nationkey = n_nationkey
          and n_name = 'GERMANY'
        group by ps_partkey
        having sum(ps_supplycost * ps_availqty) > 1000.0
        order by value desc
    """,
    12: """
        select l_shipmode,
               sum(case when o_orderpriority = '1-URGENT'
                          or o_orderpriority = '2-HIGH'
                        then 1 else 0 end) as high_line_count,
               sum(case when o_orderpriority <> '1-URGENT'
                         and o_orderpriority <> '2-HIGH'
                        then 1 else 0 end) as low_line_count
        from orders, lineitem
        where o_orderkey = l_orderkey
          and l_shipmode in ('MAIL', 'SHIP')
          and l_commitdate < l_receiptdate and l_shipdate < l_commitdate
          and l_receiptdate >= date '1994-01-01'
          and l_receiptdate < date '1995-01-01'
        group by l_shipmode
        order by l_shipmode
    """,
    13: """
        select c_custkey, count(*) as c_count
        from customer, orders
        where c_custkey = o_custkey
          and o_comment not like '%special%requests%'
        group by c_custkey
        order by c_count desc, c_custkey
        limit 100
    """,
    14: """
        select sum(case when p_type like 'PROMO%'
                        then l_extendedprice * (1 - l_discount)
                        else 0.0 end) as promo_revenue,
               sum(l_extendedprice * (1 - l_discount)) as total_revenue
        from lineitem, part
        where l_partkey = p_partkey
          and l_shipdate >= date '1995-09-01'
          and l_shipdate < date '1995-10-01'
    """,
    15: """
        select l_suppkey,
               sum(l_extendedprice * (1 - l_discount)) as total_revenue
        from lineitem
        where l_shipdate >= date '1996-01-01'
          and l_shipdate < date '1996-04-01'
        group by l_suppkey
        order by total_revenue desc, l_suppkey
        limit 1
    """,
    16: """
        select p_brand, p_type, p_size, count(*) as supplier_cnt
        from partsupp, part
        where p_partkey = ps_partkey
          and p_brand <> 'Brand#45'
          and p_type not like 'MEDIUM POLISHED%'
          and p_size in (49, 14, 23, 45, 19, 3, 36, 9)
        group by p_brand, p_type, p_size
        order by supplier_cnt desc, p_brand, p_type, p_size
        limit 100
    """,
    17: """
        select p_brand, avg(l_quantity) as avg_qty,
               sum(l_extendedprice) as total_price
        from lineitem, part
        where p_partkey = l_partkey
          and p_brand = 'Brand#23' and p_container = 'MED BOX'
          and l_quantity < 5
        group by p_brand
    """,
    18: """
        select c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice,
               sum(l_quantity) as total_qty
        from customer, orders, lineitem
        where c_custkey = o_custkey and o_orderkey = l_orderkey
        group by c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice
        having sum(l_quantity) > 150
        order by o_totalprice desc, o_orderdate
        limit 100
    """,
    19: """
        select sum(l_extendedprice * (1 - l_discount)) as revenue
        from lineitem, part
        where p_partkey = l_partkey
          and l_shipmode in ('AIR', 'REG AIR')
          and l_shipinstruct = 'DELIVER IN PERSON'
          and ((p_brand = 'Brand#12'
                and p_container in ('SM CASE', 'SM BOX', 'SM PACK', 'SM PKG')
                and l_quantity >= 1 and l_quantity <= 11
                and p_size between 1 and 5)
            or (p_brand = 'Brand#23'
                and p_container in ('MED BAG', 'MED BOX', 'MED PKG', 'MED PACK')
                and l_quantity >= 10 and l_quantity <= 20
                and p_size between 1 and 10)
            or (p_brand = 'Brand#34'
                and p_container in ('LG CASE', 'LG BOX', 'LG PACK', 'LG PKG')
                and l_quantity >= 20 and l_quantity <= 30
                and p_size between 1 and 15))
    """,
    20: """
        select distinct s_name, s_address
        from supplier, nation, partsupp, part
        where s_suppkey = ps_suppkey and ps_partkey = p_partkey
          and p_name like 'forest%' and s_nationkey = n_nationkey
          and n_name = 'CANADA' and ps_availqty > 100
        order by s_name
        limit 100
    """,
    21: """
        select s_name, count(*) as numwait
        from supplier, lineitem, orders, nation
        where s_suppkey = l_suppkey and o_orderkey = l_orderkey
          and o_orderstatus = 'F' and l_receiptdate > l_commitdate
          and s_nationkey = n_nationkey and n_name = 'SAUDI ARABIA'
        group by s_name
        order by numwait desc, s_name
        limit 100
    """,
    22: """
        select c_nationkey, count(*) as numcust,
               sum(c_acctbal) as totacctbal
        from customer
        where c_acctbal > 0.0
          and c_nationkey in (13, 31, 23, 29, 30, 18, 17)
        group by c_nationkey
        order by c_nationkey
    """,
}


def tpch_query(number: int) -> str:
    """Return the SQL text of TPC-H-derived query ``number`` (1..22)."""
    return TPCH_QUERIES[number]
