"""TPC-H-derived workload: scaled data generator and the 22 query templates."""

from .datagen import populate_tpch, TPCH_TABLE_RATIOS
from .queries import TPCH_QUERIES, tpch_query

__all__ = ["populate_tpch", "TPCH_TABLE_RATIOS", "TPCH_QUERIES", "tpch_query"]
