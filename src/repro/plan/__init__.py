"""Logical and physical (pipeline-decomposed) query plans."""

from .logical import (
    LogicalOperator,
    LogicalScan,
    LogicalJoin,
    LogicalAggregate,
    LogicalFilter,
    LogicalProject,
    LogicalSort,
    LogicalLimit,
    LogicalDistinct,
    explain,
)
from .sargs import (
    SargConjunct,
    SargOperand,
    ScanPlan,
    chunk_survives,
    extract_scan_predicates,
    plan_pipeline_scan,
    plan_table_scan,
)
from .physical import (
    AggregateSpec,
    AggregateSink,
    HashBuildSink,
    OutputSink,
    PhysFilter,
    PhysHashProbe,
    Pipeline,
    PhysicalPlan,
    TableSource,
    IntermediateSource,
)

__all__ = [
    "LogicalOperator", "LogicalScan", "LogicalJoin", "LogicalAggregate",
    "LogicalFilter", "LogicalProject", "LogicalSort", "LogicalLimit",
    "LogicalDistinct", "explain",
    "AggregateSpec", "AggregateSink", "HashBuildSink", "OutputSink",
    "PhysFilter", "PhysHashProbe", "Pipeline", "PhysicalPlan",
    "TableSource", "IntermediateSource",
    "SargConjunct", "SargOperand", "ScanPlan", "chunk_survives",
    "extract_scan_predicates", "plan_pipeline_scan", "plan_table_scan",
]
