"""Logical and physical (pipeline-decomposed) query plans."""

from .logical import (
    LogicalOperator,
    LogicalScan,
    LogicalJoin,
    LogicalAggregate,
    LogicalFilter,
    LogicalProject,
    LogicalSort,
    LogicalLimit,
    LogicalDistinct,
    explain,
)
from .physical import (
    AggregateSpec,
    AggregateSink,
    HashBuildSink,
    OutputSink,
    PhysFilter,
    PhysHashProbe,
    Pipeline,
    PhysicalPlan,
    TableSource,
    IntermediateSource,
)

__all__ = [
    "LogicalOperator", "LogicalScan", "LogicalJoin", "LogicalAggregate",
    "LogicalFilter", "LogicalProject", "LogicalSort", "LogicalLimit",
    "LogicalDistinct", "explain",
    "AggregateSpec", "AggregateSink", "HashBuildSink", "OutputSink",
    "PhysFilter", "PhysHashProbe", "Pipeline", "PhysicalPlan",
    "TableSource", "IntermediateSource",
]
