"""Sargable scan predicates: extraction and zone-map evaluation.

At *plan* time, :func:`extract_scan_predicates` walks the filter conjuncts
pushed into a table scan and keeps the ones of a sargable shape::

    column <op> constant        (and the mirrored constant <op> column)
    column BETWEEN low AND high (also NOT BETWEEN)
    column IN (v1, v2, ...)     (also NOT IN)

where the constant side is a literal *or a bind-parameter slot*.  The
extracted :class:`SargConjunct` list is stored on the pipeline, so it is
part of a cached plan; the constants of parameter slots are resolved at
*execution* time against the current parameter vector, which is what lets
one cached plan prune correctly for every binding.

At execution time, :func:`chunk_survives` evaluates the conjuncts against a
chunk's **exact** per-chunk zone maps (``(min, max)`` of the sealed chunk,
see :meth:`repro.catalog.Table.zone_map`).  Zone maps bound the storage
values; DECIMAL columns store scaled integers while predicates compare the
decoded numeric value, so the bounds are decoded before the comparison.
Sampled table statistics (:mod:`repro.catalog.statistics`) are *never*
consulted here -- their min/max are approximate and would prune chunks that
still contain matching rows.

Everything is conservative: a conjunct whose zone map is unavailable (open
tail chunk), whose shape was not extracted, or whose comparison raises is
treated as "may match".  Pruning can only skip chunks that provably contain
no qualifying row.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from ..semantics.expressions import (
    BetweenExpr,
    CastExpr,
    ColumnExpr,
    ComparisonExpr,
    InListExpr,
    LiteralExpr,
    ParameterExpr,
    TypedExpression,
    split_conjuncts,
)
from ..types import DECIMAL_SCALE, SQLType

#: Factor decoding DECIMAL storage values.  Deliberately a *multiplication*
#: by the reciprocal, because that is bit-for-bit what every execution tier
#: computes (codegen emits ``fmul raw, 0.01``, the baselines evaluate
#: ``raw * 0.01``) -- ``raw / 100`` differs in the last ulp for ~13% of
#: values, which would mis-prune exact boundary predicates.
_DECIMAL_DECODE = 1.0 / DECIMAL_SCALE

#: Comparison operators with a mirrored counterpart (for ``const <op> col``).
_MIRRORED = {"=": "=", "<>": "<>", "<": ">", "<=": ">=", ">": "<", ">=": "<="}


@dataclass(frozen=True)
class SargOperand:
    """The constant side of a sargable conjunct: a literal or a parameter.

    ``to_float`` marks a value that the predicate compares after an
    int-to-float cast (``CAST(? AS FLOAT)`` and implicit int/float
    coercions); the cast is monotonic, so applying it to the resolved value
    keeps the zone-map comparison exact.
    """

    value: object = None
    param_index: Optional[int] = None
    to_float: bool = False

    def resolve(self, params: Sequence):
        value = (params[self.param_index] if self.param_index is not None
                 else self.value)
        return float(value) if self.to_float else value


@dataclass(frozen=True)
class SargConjunct:
    """One sargable conjunct over a single scanned column."""

    column: str
    kind: str                         # "cmp" | "between" | "in"
    operator: str = ""                # comparison operator for kind "cmp"
    operands: tuple[SargOperand, ...] = ()
    negated: bool = False             # NOT BETWEEN / NOT IN
    #: The column stores DECIMAL scaled integers; zone bounds must be
    #: decoded (/ DECIMAL_SCALE) before comparing against predicate values.
    decimal_storage: bool = False
    #: The predicate compares the column after an int->float cast.
    column_to_float: bool = False


# --------------------------------------------------------------------------- #
# extraction (plan time)
# --------------------------------------------------------------------------- #
def _column_side(expr: TypedExpression, binding: str
                 ) -> Optional[tuple[str, bool, bool]]:
    """``(column, decimal_storage, column_to_float)`` when sargable."""
    if isinstance(expr, ColumnExpr) and expr.binding == binding:
        return (expr.column, expr.storage_type is SQLType.DECIMAL, False)
    if isinstance(expr, CastExpr) and expr.result_type is SQLType.FLOAT64 \
            and isinstance(expr.operand, ColumnExpr) \
            and expr.operand.binding == binding \
            and expr.operand.result_type is SQLType.INT64:
        return (expr.operand.column, False, True)
    return None


def _value_side(expr: TypedExpression) -> Optional[SargOperand]:
    if isinstance(expr, LiteralExpr):
        return SargOperand(value=expr.value)
    if isinstance(expr, ParameterExpr):
        return SargOperand(param_index=expr.index)
    if isinstance(expr, CastExpr) and expr.result_type is SQLType.FLOAT64:
        inner = _value_side(expr.operand)
        if inner is not None:
            return SargOperand(value=inner.value,
                               param_index=inner.param_index, to_float=True)
    return None


def _extract_one(conjunct: TypedExpression,
                 binding: str) -> Optional[SargConjunct]:
    if isinstance(conjunct, ComparisonExpr):
        for left, right, operator in (
                (conjunct.left, conjunct.right, conjunct.operator),
                (conjunct.right, conjunct.left,
                 _MIRRORED.get(conjunct.operator))):
            if operator is None:
                continue
            column = _column_side(left, binding)
            value = _value_side(right)
            if column is not None and value is not None:
                name, decimal_storage, to_float = column
                return SargConjunct(column=name, kind="cmp",
                                    operator=operator, operands=(value,),
                                    decimal_storage=decimal_storage,
                                    column_to_float=to_float)
        return None
    if isinstance(conjunct, BetweenExpr):
        column = _column_side(conjunct.expr, binding)
        low = _value_side(conjunct.low)
        high = _value_side(conjunct.high)
        if column is not None and low is not None and high is not None:
            name, decimal_storage, to_float = column
            return SargConjunct(column=name, kind="between",
                                operands=(low, high),
                                negated=conjunct.negated,
                                decimal_storage=decimal_storage,
                                column_to_float=to_float)
        return None
    if isinstance(conjunct, InListExpr):
        column = _column_side(conjunct.expr, binding)
        if column is None:
            return None
        values = []
        for value_expr in conjunct.values:
            value = _value_side(value_expr)
            if value is None:
                return None
            values.append(value)
        name, decimal_storage, to_float = column
        return SargConjunct(column=name, kind="in", operands=tuple(values),
                            negated=conjunct.negated,
                            decimal_storage=decimal_storage,
                            column_to_float=to_float)
    return None


def extract_scan_predicates(binding: str,
                            predicates: Sequence[TypedExpression]
                            ) -> list[SargConjunct]:
    """Sargable conjuncts of the filters pushed into one table scan."""
    out: list[SargConjunct] = []
    for predicate in predicates:
        for conjunct in split_conjuncts(predicate):
            extracted = _extract_one(conjunct, binding)
            if extracted is not None:
                out.append(extracted)
    return out


# --------------------------------------------------------------------------- #
# evaluation (execution time)
# --------------------------------------------------------------------------- #
def _may_match(conjunct: SargConjunct, zone_min, zone_max,
               params: Sequence) -> bool:
    # A NaN operand makes every zone comparison False (so e.g. NOT BETWEEN
    # NaN AND NaN would wrongly prune everything); never prune on NaN.
    if any(value != value for operand in conjunct.operands
           for value in [operand.resolve(params)]):
        return True
    if conjunct.kind == "cmp":
        value = conjunct.operands[0].resolve(params)
        operator = conjunct.operator
        if operator == "=":
            return zone_min <= value <= zone_max
        if operator == "<":
            return zone_min < value
        if operator == "<=":
            return zone_min <= value
        if operator == ">":
            return zone_max > value
        if operator == ">=":
            return zone_max >= value
        # "<>": only an all-equal chunk of exactly this value cannot match.
        return not (zone_min == zone_max == value)
    if conjunct.kind == "between":
        low = conjunct.operands[0].resolve(params)
        high = conjunct.operands[1].resolve(params)
        if conjunct.negated:
            # Some value outside [low, high] must be possible.
            if low > high:
                return True
            return zone_min < low or zone_max > high
        return zone_max >= low and zone_min <= high
    if conjunct.kind == "in":
        values = [operand.resolve(params) for operand in conjunct.operands]
        if conjunct.negated:
            # Only an all-equal chunk whose single value is excluded fails.
            return not (zone_min == zone_max
                        and any(value == zone_min for value in values))
        return any(zone_min <= value <= zone_max for value in values)
    return True  # pragma: no cover - defensive


def chunk_survives(conjuncts: Sequence[SargConjunct],
                   zone_of: Callable[[str], Optional[tuple]],
                   params: Sequence) -> bool:
    """Whether a chunk may contain qualifying rows.

    ``zone_of(column)`` returns the chunk's exact ``(min, max)`` storage
    bounds or ``None`` when the chunk has no zone map (unsealed).  Any
    doubt -- missing zone map, incomparable types -- keeps the chunk.
    """
    for conjunct in conjuncts:
        zone = zone_of(conjunct.column)
        if zone is None:
            continue
        zone_min, zone_max = zone
        if conjunct.decimal_storage:
            zone_min = zone_min * _DECIMAL_DECODE
            zone_max = zone_max * _DECIMAL_DECODE
        elif conjunct.column_to_float:
            zone_min = float(zone_min)
            zone_max = float(zone_max)
        try:
            if not _may_match(conjunct, zone_min, zone_max, params):
                return False
        except TypeError:
            continue  # incomparable types: never prune on doubt
    return True


# --------------------------------------------------------------------------- #
# scan planning (execution time)
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class ScanPlan:
    """Which chunk-aligned row ranges of one pipeline source to scan."""

    #: Surviving ``[begin, end)`` ranges in ascending order.  Range edges
    #: fall on chunk boundaries (adjacent surviving chunks are coalesced),
    #: so a pruned chunk is never even partially covered.
    ranges: tuple[tuple[int, int], ...]
    rows_total: int
    rows_to_scan: int
    chunks_total: int = 0
    chunks_pruned: int = 0

    @property
    def chunks_scanned(self) -> int:
        return self.chunks_total - self.chunks_pruned


def plan_table_scan(table, scan_predicates: Sequence[SargConjunct],
                    total_rows: int, params: Sequence,
                    use_pruning: bool = True) -> ScanPlan:
    """Prune a table scan's chunks against their zone maps.

    ``total_rows`` is the caller's row-count snapshot (the scan's upper
    bound); chunk ranges are clamped to it.  Pruning consults only the
    table's exact per-chunk zone maps -- a sealed chunk's bounds cover any
    prefix of it, so pruning a partially-covered sealed chunk is safe.
    """
    chunk_rows = table.chunk_rows
    if total_rows <= 0:
        return ScanPlan(ranges=(), rows_total=0, rows_to_scan=0)
    chunks_total = (total_rows + chunk_rows - 1) // chunk_rows
    if not use_pruning or not scan_predicates:
        return ScanPlan(ranges=((0, total_rows),), rows_total=total_rows,
                        rows_to_scan=total_rows, chunks_total=chunks_total)
    ranges: list[tuple[int, int]] = []
    rows_to_scan = 0
    chunks_pruned = 0
    for index in range(chunks_total):
        begin = index * chunk_rows
        end = min(begin + chunk_rows, total_rows)
        if not chunk_survives(scan_predicates,
                              lambda column: table.zone_map(column, index),
                              params):
            chunks_pruned += 1
            continue
        if ranges and ranges[-1][1] == begin:
            # Coalesce adjacent surviving chunks: a pruned chunk is never
            # dispatched either way, and larger contiguous ranges keep the
            # morsel size (and so dispatch overhead) unaffected by the
            # chunk granularity.
            ranges[-1] = (ranges[-1][0], end)
        else:
            ranges.append((begin, end))
        rows_to_scan += end - begin
    return ScanPlan(ranges=tuple(ranges), rows_total=total_rows,
                    rows_to_scan=rows_to_scan, chunks_total=chunks_total,
                    chunks_pruned=chunks_pruned)


def plan_pipeline_scan(pipeline, total_rows: int, params: Sequence,
                       use_pruning: bool = True) -> ScanPlan:
    """The :class:`ScanPlan` of one pipeline's source.

    Table sources go through zone-map pruning with chunk-aligned ranges;
    intermediate sources (materialised aggregates) are one unchunked range.
    """
    from .physical import TableSource  # local import avoids a cycle

    source = pipeline.source
    if isinstance(source, TableSource):
        return plan_table_scan(source.table, pipeline.scan_predicates,
                               total_rows, params, use_pruning=use_pruning)
    if total_rows <= 0:
        return ScanPlan(ranges=(), rows_total=0, rows_to_scan=0)
    return ScanPlan(ranges=((0, total_rows),), rows_total=total_rows,
                    rows_to_scan=total_rows)
