"""Logical plan operators.

The logical plan is a conventional relational-algebra tree.  The optimizer
(:mod:`repro.optimizer`) builds it from a :class:`~repro.semantics.BoundQuery`
after predicate pushdown and join ordering; the physical planner decomposes
it into pipelines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..semantics.expressions import (
    AggregateExpr,
    ColumnExpr,
    TypedExpression,
)


class LogicalOperator:
    """Base class for logical plan nodes."""

    def children(self) -> list["LogicalOperator"]:
        return []

    def estimated_rows(self) -> float:
        raise NotImplementedError


@dataclass
class LogicalScan(LogicalOperator):
    """Scan of a base table binding with pushed-down filters."""

    binding: str
    table_name: str
    filters: list[TypedExpression] = field(default_factory=list)
    cardinality: float = 0.0

    def estimated_rows(self) -> float:
        return self.cardinality


@dataclass
class LogicalJoin(LogicalOperator):
    """Hash join; the right child is always the build side.

    ``kind`` is ``"inner"`` or ``"left"`` -- for a left outer join the left
    (probe) child is the preserved side and the residual predicates are part
    of the join itself (a non-matching probe row survives NULL-padded rather
    than being filtered out).
    """

    left: LogicalOperator
    right: LogicalOperator
    #: Equi-join key pairs: (probe-side expression, build-side expression).
    keys: list[tuple[TypedExpression, TypedExpression]]
    #: Non-equi residual predicates evaluated after the join.
    residual: list[TypedExpression] = field(default_factory=list)
    kind: str = "inner"
    cardinality: float = 0.0

    def children(self):
        return [self.left, self.right]

    def estimated_rows(self) -> float:
        return self.cardinality


@dataclass
class LogicalFilter(LogicalOperator):
    """A filter that could not be pushed into a scan (multi-table residual)."""

    child: LogicalOperator
    predicates: list[TypedExpression]

    def children(self):
        return [self.child]

    def estimated_rows(self) -> float:
        return self.child.estimated_rows() * 0.5


@dataclass
class LogicalAggregate(LogicalOperator):
    """Hash aggregation with optional grouping."""

    child: LogicalOperator
    group_by: list[TypedExpression]
    aggregates: list[AggregateExpr]
    having: Optional[TypedExpression] = None
    cardinality: float = 0.0

    def children(self):
        return [self.child]

    def estimated_rows(self) -> float:
        return self.cardinality


@dataclass
class LogicalProject(LogicalOperator):
    """Final projection to the query's output columns."""

    child: LogicalOperator
    columns: list[tuple[str, TypedExpression]]

    def children(self):
        return [self.child]

    def estimated_rows(self) -> float:
        return self.child.estimated_rows()


@dataclass
class LogicalDistinct(LogicalOperator):
    child: LogicalOperator

    def children(self):
        return [self.child]

    def estimated_rows(self) -> float:
        return self.child.estimated_rows() * 0.9


@dataclass
class LogicalSort(LogicalOperator):
    child: LogicalOperator
    keys: list[tuple[TypedExpression, bool]]

    def children(self):
        return [self.child]

    def estimated_rows(self) -> float:
        return self.child.estimated_rows()


@dataclass
class LogicalLimit(LogicalOperator):
    child: LogicalOperator
    #: An ``int`` or a ParameterExpr (``LIMIT ?``), unknown until execution.
    limit: object

    def children(self):
        return [self.child]

    def estimated_rows(self) -> float:
        if isinstance(self.limit, int):
            return min(self.child.estimated_rows(), self.limit)
        return self.child.estimated_rows()


def explain(operator: LogicalOperator, indent: int = 0) -> str:
    """Render a logical plan as an indented text tree."""
    pad = "  " * indent
    if isinstance(operator, LogicalScan):
        filters = f" filters={len(operator.filters)}" if operator.filters else ""
        line = (f"{pad}Scan {operator.table_name} as {operator.binding}"
                f"{filters} (~{operator.cardinality:.0f} rows)")
    elif isinstance(operator, LogicalJoin):
        keys = ", ".join(f"{p.key()}={b.key()}" for p, b in operator.keys)
        name = "LeftOuterHashJoin" if operator.kind == "left" else "HashJoin"
        line = f"{pad}{name} [{keys}] (~{operator.cardinality:.0f} rows)"
    elif isinstance(operator, LogicalFilter):
        line = f"{pad}Filter ({len(operator.predicates)} predicates)"
    elif isinstance(operator, LogicalAggregate):
        line = (f"{pad}Aggregate group_by={len(operator.group_by)} "
                f"aggs={len(operator.aggregates)}")
    elif isinstance(operator, LogicalProject):
        line = f"{pad}Project [{', '.join(name for name, _ in operator.columns)}]"
    elif isinstance(operator, LogicalSort):
        line = f"{pad}Sort ({len(operator.keys)} keys)"
    elif isinstance(operator, LogicalLimit):
        shown = operator.limit if isinstance(operator.limit, int) else "?"
        line = f"{pad}Limit {shown}"
    elif isinstance(operator, LogicalDistinct):
        line = f"{pad}Distinct"
    else:
        line = f"{pad}{type(operator).__name__}"
    parts = [line]
    for child in operator.children():
        parts.append(explain(child, indent + 1))
    return "\n".join(parts)
