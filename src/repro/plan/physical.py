"""Physical, pipeline-decomposed query plans.

A query becomes an ordered list of :class:`Pipeline` objects (paper Fig. 4):
every pipeline scans one source relation morsel by morsel, pushes each row
through a chain of streaming operators (filters and hash-table probes) and
feeds a sink (hash-table build, aggregation or result output).  The order of
the list respects the dependencies: a pipeline that probes a hash table runs
after the pipeline that built it; a pipeline that scans an aggregation's
output runs after the aggregating pipeline.

The code generator turns every pipeline into exactly one IR worker function
``workerN(state, morsel_begin, morsel_end)``, which is what the adaptive
execution framework schedules, monitors and recompiles (paper Section III).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from ..catalog import Table
from ..parameters import ParameterSpec
from ..semantics.expressions import ColumnExpr, TypedExpression
from ..types import SQLType


# --------------------------------------------------------------------------- #
# sources
# --------------------------------------------------------------------------- #
@dataclass
class TableSource:
    """Pipeline source: a base table."""

    source_id: int
    binding: str
    table: Table

    @property
    def name(self) -> str:
        return f"{self.table.name} ({self.binding})"

    def column_names(self) -> list[str]:
        return self.table.schema.column_names()


@dataclass
class IntermediateSource:
    """Pipeline source: the materialised output of an earlier pipeline."""

    source_id: int
    name: str
    binding: str
    columns: list[tuple[str, SQLType]]

    def column_names(self) -> list[str]:
        return [name for name, _ in self.columns]


Source = Union[TableSource, IntermediateSource]


# --------------------------------------------------------------------------- #
# streaming operators
# --------------------------------------------------------------------------- #
@dataclass
class PhysFilter:
    """Drop rows for which the predicate evaluates to false."""

    predicate: TypedExpression


@dataclass
class PhysHashProbe:
    """Probe a hash table built by an earlier pipeline.

    ``probe_keys`` are evaluated against the current row; matching build-side
    rows contribute their ``payload_columns`` (columns of the build binding
    that later operators or the sink still need).  Inner-join semantics: a
    row without matches is dropped, a row with several matches fans out.
    """

    join_id: int
    probe_keys: list[TypedExpression]
    build_binding: str
    payload_columns: list[ColumnExpr]
    #: residual non-equi predicates checked per match
    residual: list[TypedExpression] = field(default_factory=list)
    #: LEFT OUTER JOIN: a probe row without any (residual-passing) match is
    #: preserved once, with every payload column NULL-padded, instead of
    #: being dropped.
    outer: bool = False


# --------------------------------------------------------------------------- #
# sinks
# --------------------------------------------------------------------------- #
@dataclass
class HashBuildSink:
    """Insert every surviving row into a join hash table."""

    join_id: int
    build_keys: list[TypedExpression]
    payload_columns: list[ColumnExpr]


@dataclass
class AggregateSpec:
    """One aggregate computed by an :class:`AggregateSink`."""

    function: str                      # sum | count | avg | min | max
    argument: Optional[TypedExpression]
    result_type: SQLType


@dataclass
class AggregateSink:
    """Hash aggregation; its result materialises as an intermediate source."""

    agg_id: int
    group_by: list[TypedExpression]
    aggregates: list[AggregateSpec]
    intermediate: IntermediateSource


@dataclass
class OutputSink:
    """Collect result rows; ordering / limit / distinct run in the finish step."""

    output: list[tuple[str, TypedExpression]]
    order_by: list[tuple[TypedExpression, bool]] = field(default_factory=list)
    #: ``None``, an ``int``, or a ParameterExpr (``LIMIT ?``) resolved against
    #: the bound parameter values at execution time.
    limit: Optional[object] = None
    distinct: bool = False


Sink = Union[HashBuildSink, AggregateSink, OutputSink]


# --------------------------------------------------------------------------- #
# pipelines
# --------------------------------------------------------------------------- #
@dataclass
class Pipeline:
    """One pipeline: source -> streaming operators -> sink."""

    pipeline_id: int
    source: Source
    operators: list[Union[PhysFilter, PhysHashProbe]]
    sink: Sink
    estimated_rows: float = 0.0
    label: str = ""
    #: Sargable conjuncts of the filters pushed into this scan
    #: (:class:`repro.plan.sargs.SargConjunct`); evaluated against per-chunk
    #: zone maps at execution time to skip chunks.  Empty for intermediate
    #: sources and for predicates with no sargable shape.
    scan_predicates: list = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.label or f"pipeline{self.pipeline_id}"

    def describe(self) -> str:
        parts = [f"scan {self.source.name if isinstance(self.source, TableSource) else self.source.name}"]
        for operator in self.operators:
            if isinstance(operator, PhysFilter):
                parts.append("filter")
            elif operator.outer:
                parts.append(f"outer probe HT{operator.join_id}")
            else:
                parts.append(f"probe HT{operator.join_id}")
        sink = self.sink
        if isinstance(sink, HashBuildSink):
            parts.append(f"build HT{sink.join_id}")
        elif isinstance(sink, AggregateSink):
            parts.append(f"aggregate #{sink.agg_id}")
        else:
            parts.append("output")
        return " -> ".join(parts)


@dataclass
class PhysicalPlan:
    """The full pipeline-decomposed plan of one query."""

    pipelines: list[Pipeline]
    output_columns: list[tuple[str, SQLType]]
    #: Map source_id -> TableSource for every base table scanned.
    table_sources: dict[int, TableSource] = field(default_factory=dict)
    #: Map source_id -> IntermediateSource for every materialised intermediate.
    intermediate_sources: dict[int, IntermediateSource] = field(
        default_factory=dict)
    #: Bind-parameter slots of the query, in slot order (empty when the
    #: statement has no parameters).  Execution binds one value per spec
    #: into the query state before the pipelines run.
    parameters: list[ParameterSpec] = field(default_factory=list)

    def describe(self) -> str:
        return "\n".join(f"P{p.pipeline_id}: {p.describe()}"
                         for p in self.pipelines)
