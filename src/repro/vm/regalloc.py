"""Register allocation for the bytecode VM (paper Section IV-C).

The allocator maps every SSA value onto a slot of the virtual register file.
Its goals, straight from the paper:

1. every value gets a slot,
2. two values share a slot only if their live ranges do not overlap,
3. the total number of slots is minimised (the register file should stay in
   the L1 cache),
4. allocation runs in linear time even for functions with thousands of
   blocks.

Three strategies are provided.  ``loop_aware`` (the paper's algorithm, backed
by :func:`repro.vm.liveness.compute_live_ranges`) is the one used for
execution; ``no_reuse`` and ``greedy_window`` exist to reproduce the
register-file size comparison of Section IV-C and are never used to run
queries.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..errors import VMError
from ..ir.analysis import LoopInfo
from ..ir.function import Function
from ..ir.instructions import PhiInst
from ..ir.values import Constant, Undef, Value
from .liveness import LiveRange, compute_live_ranges, naive_live_ranges

#: Slots 0 and 1 are reserved for the constants 0 and 1 (paper Section IV-A).
RESERVED_SLOTS = 2


@dataclass
class RegisterAllocation:
    """Result of register allocation for one function."""

    function_name: str
    #: value uid -> register slot
    slot_of: Dict[int, int]
    #: (type name, constant value) -> register slot for pooled constants
    constant_slot_of: Dict[tuple, int]
    #: total number of slots (including the two reserved constant slots)
    num_registers: int
    strategy: str = "loop_aware"

    @property
    def register_file_bytes(self) -> int:
        """Register file size assuming 8-byte slots (paper's KB numbers)."""
        return self.num_registers * 8

    def slot(self, value: Value) -> int:
        try:
            return self.slot_of[value.uid]
        except KeyError as exc:
            raise VMError(
                f"{self.function_name}: no register assigned to "
                f"{value.short_name()}") from exc


class _SlotPool:
    """A free list of register slots that always hands out the lowest slot.

    Using a min-heap keeps slot numbers dense, which both minimises the file
    size and keeps hot slots together (cache locality in the C++ original).
    """

    def __init__(self, first_slot: int):
        self._next_fresh = first_slot
        self._free: list[int] = []

    def allocate(self) -> int:
        if self._free:
            return heapq.heappop(self._free)
        slot = self._next_fresh
        self._next_fresh += 1
        return slot

    def release(self, slot: int) -> None:
        heapq.heappush(self._free, slot)

    @property
    def high_water_mark(self) -> int:
        return self._next_fresh


def allocate_registers(function: Function,
                       strategy: str = "loop_aware",
                       loop_info: Optional[LoopInfo] = None,
                       window: int = 4) -> RegisterAllocation:
    """Assign a register slot to every value of ``function``.

    ``strategy`` is one of ``"loop_aware"`` (default, the paper's algorithm),
    ``"no_reuse"`` or ``"greedy_window"``; the latter two are measurement-only
    baselines for the Section IV-C comparison.
    """
    if strategy == "loop_aware":
        ranges, _ = compute_live_ranges(function, loop_info)
    elif strategy == "no_reuse":
        ranges = naive_live_ranges(function, window=None)
    elif strategy == "greedy_window":
        ranges = naive_live_ranges(function, window=window)
    else:
        raise VMError(f"unknown register allocation strategy {strategy!r}")

    constant_slot_of = _pool_constants(function)
    first_free = RESERVED_SLOTS + len(constant_slot_of)
    pool = _SlotPool(first_free)

    # Bucket ranges by start and end block for the linear sweep.
    starts: dict[int, list[LiveRange]] = {}
    ends: dict[int, list[LiveRange]] = {}
    max_block = 0
    for live_range in ranges.values():
        starts.setdefault(live_range.start_block, []).append(live_range)
        ends.setdefault(live_range.end_block, []).append(live_range)
        max_block = max(max_block, live_range.end_block)

    slot_of: dict[int, int] = {}

    for block_index in range(max_block + 1):
        starting = starts.get(block_index, [])

        # Multi-block values are allocated for the whole block span; values
        # local to a single block are handled with instruction-level
        # precision below so their slots can be recycled within the block.
        local = [r for r in starting if r.single_block]
        spanning = [r for r in starting if not r.single_block]

        for live_range in sorted(spanning, key=lambda r: r.value.uid):
            slot_of[live_range.value.uid] = pool.allocate()

        # Instruction-precise sweep inside the block: release a local value's
        # slot right after its last use so the next local value can reuse it
        # ("allocate on demand, release when the last user is gone").  A heap
        # ordered by last-use position keeps the sweep O(n log n), which is
        # essential for the huge single-block functions machine-generated
        # queries produce (paper Section IV-C).
        if local:
            local.sort(key=lambda r: (r.def_position, r.value.uid))
            releases: list[tuple[int, int]] = []  # (last_use, value uid)
            for live_range in local:
                while releases and releases[0][0] < live_range.def_position:
                    _, released_uid = heapq.heappop(releases)
                    pool.release(slot_of[released_uid])
                slot_of[live_range.value.uid] = pool.allocate()
                heapq.heappush(releases, (live_range.last_use_position,
                                          live_range.value.uid))
            while releases:
                _, released_uid = heapq.heappop(releases)
                pool.release(slot_of[released_uid])

        # Release multi-block values whose range ends at this block.
        for live_range in ends.get(block_index, []):
            if live_range.single_block:
                continue
            slot = slot_of.get(live_range.value.uid)
            if slot is not None:
                pool.release(slot)

    num_registers = max(pool.high_water_mark, first_free)
    return RegisterAllocation(
        function_name=function.name,
        slot_of=slot_of,
        constant_slot_of=constant_slot_of,
        num_registers=num_registers,
        strategy=strategy,
    )


def _pool_constants(function: Function) -> Dict[tuple, int]:
    """Assign register slots to the distinct constants used by the function.

    Slot 0 and 1 always hold 0 and 1; every other distinct constant gets one
    pooled slot that the frame initialises once per invocation, so the
    interpreter never materialises constants in the hot loop.
    """
    constant_slot_of: dict[tuple, int] = {}
    next_slot = RESERVED_SLOTS
    for block in function.blocks:
        for inst in block.instructions:
            operands = (list(inst.value_operands())
                        if not isinstance(inst, PhiInst)
                        else [v for v, _ in inst.incoming])
            for operand in operands:
                if not isinstance(operand, Constant):
                    continue
                key = constant_key(operand)
                if key in constant_slot_of:
                    continue
                if _is_reserved_constant(operand):
                    continue
                constant_slot_of[key] = next_slot
                next_slot += 1
    return constant_slot_of


def constant_key(constant: Constant) -> tuple:
    """Hashable pooling key for a constant (pointers pool by identity)."""
    if constant.type.is_pointer:
        return (constant.type.name, id(constant.value))
    return (constant.type.name, constant.value)


def _is_reserved_constant(constant: Constant) -> bool:
    """Whether the constant is covered by the reserved slots 0/1."""
    return (constant.type.is_integer and not constant.type.is_pointer
            and constant.value in (0, 1))


def constant_slot(allocation: RegisterAllocation, constant: Constant) -> int:
    """Register slot holding ``constant`` (reserved slots for 0 and 1)."""
    if _is_reserved_constant(constant):
        return int(constant.value)
    return allocation.constant_slot_of[constant_key(constant)]
