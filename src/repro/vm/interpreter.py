"""The bytecode dispatch loop (paper Fig. 8).

The virtual machine executes a :class:`BytecodeFunction` against a freshly
allocated register file.  The loop mirrors the paper's C++ switch statement:
fetch the fixed-length instruction at ``ip``, dispatch on the integer opcode,
execute one simple statement, continue.  All type dispatch happened at
translation time, so every handler is branch-free apart from the comparison
itself.

Semantics notes:

* unchecked integer arithmetic wraps to 64 bits (exactly what machine code
  does), checked arithmetic raises :class:`repro.errors.OverflowError_`,
* division by zero raises :class:`repro.errors.DivisionByZeroError`,
* pointers are ``(buffer, offset)`` pairs; ``load``/``store`` index the
  buffer, so column scans run directly against the storage arrays.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..errors import DivisionByZeroError, ExecutionError, OverflowError_, VMError
from ..telemetry.metrics import Counter
from .bytecode import BytecodeFunction
from .opcodes import Opcode

_INT64_MASK = (1 << 64) - 1
_INT64_SIGN = 1 << 63
_INT64_MIN = -(1 << 63)
_INT64_MAX = (1 << 63) - 1


def _wrap64(value: int) -> int:
    value &= _INT64_MASK
    if value & _INT64_SIGN:
        value -= 1 << 64
    return value


class VirtualMachine:
    """Executes translated bytecode functions.

    A single instance is stateless between calls and can be shared by all
    worker threads; every invocation allocates its own register file.
    """

    def __init__(self, trace: bool = False):
        self.trace = trace
        #: Sharded instruction counter: one VM instance is shared by all
        #: worker threads of a database, so each thread accumulates into
        #: its own cell and reads merge the cells -- exact totals without
        #: the per-call lock this counter historically took.
        self._instructions = Counter("vm.instructions")

    @property
    def instructions_executed(self) -> int:
        """Total bytecode instructions executed (merged over all threads)."""
        return self._instructions.value

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def execute(self, function: BytecodeFunction,
                args: Sequence[object] = ()) -> Optional[object]:
        """Run ``function`` with ``args``, returning its result (or None)."""
        regs = function.make_register_file(args)
        code = function.code
        ip = 0
        executed = 0

        # Hoist every opcode into a local integer: the dispatch loop then
        # performs plain int comparisons, the Python equivalent of the
        # paper's jump-table switch.
        O = Opcode
        _ADD_CHK_I64 = int(O.ADD_CHK_I64)
        _ADD_F64 = int(O.ADD_F64)
        _ADD_I64 = int(O.ADD_I64)
        _AND_I64 = int(O.AND_I64)
        _ASHR_I64 = int(O.ASHR_I64)
        _BR = int(O.BR)
        _CALL = int(O.CALL)
        _CALL_VOID = int(O.CALL_VOID)
        _CONDBR = int(O.CONDBR)
        _DIV_F64 = int(O.DIV_F64)
        _FCMP_EQ_F64 = int(O.FCMP_EQ_F64)
        _FCMP_GE_F64 = int(O.FCMP_GE_F64)
        _FCMP_GT_F64 = int(O.FCMP_GT_F64)
        _FCMP_LE_F64 = int(O.FCMP_LE_F64)
        _FCMP_LT_F64 = int(O.FCMP_LT_F64)
        _FCMP_NE_F64 = int(O.FCMP_NE_F64)
        _FMAX_F64 = int(O.FMAX_F64)
        _FMIN_F64 = int(O.FMIN_F64)
        _FPTOSI = int(O.FPTOSI)
        _GEP = int(O.GEP)
        _ICMP_EQ_I64 = int(O.ICMP_EQ_I64)
        _ICMP_GE_I64 = int(O.ICMP_GE_I64)
        _ICMP_GT_I64 = int(O.ICMP_GT_I64)
        _ICMP_LE_I64 = int(O.ICMP_LE_I64)
        _ICMP_LT_I64 = int(O.ICMP_LT_I64)
        _ICMP_NE_I64 = int(O.ICMP_NE_I64)
        _LOAD = int(O.LOAD)
        _LOAD_CONST = int(O.LOAD_CONST)
        _LOAD_IDX = int(O.LOAD_IDX)
        _MOV = int(O.MOV)
        _MUL_CHK_I64 = int(O.MUL_CHK_I64)
        _MUL_F64 = int(O.MUL_F64)
        _MUL_I64 = int(O.MUL_I64)
        _OCMP_EQ = int(O.OCMP_EQ)
        _OCMP_GE = int(O.OCMP_GE)
        _OCMP_GT = int(O.OCMP_GT)
        _OCMP_LE = int(O.OCMP_LE)
        _OCMP_LT = int(O.OCMP_LT)
        _OCMP_NE = int(O.OCMP_NE)
        _OR_I64 = int(O.OR_I64)
        _OVF_ADD_I64 = int(O.OVF_ADD_I64)
        _OVF_MUL_I64 = int(O.OVF_MUL_I64)
        _OVF_SUB_I64 = int(O.OVF_SUB_I64)
        _RET = int(O.RET)
        _RET_VAL = int(O.RET_VAL)
        _SDIV_I64 = int(O.SDIV_I64)
        _SELECT = int(O.SELECT)
        _SHL_I64 = int(O.SHL_I64)
        _SITOFP = int(O.SITOFP)
        _SMAX_I64 = int(O.SMAX_I64)
        _SMIN_I64 = int(O.SMIN_I64)
        _SREM_I64 = int(O.SREM_I64)
        _STORE = int(O.STORE)
        _STORE_IDX = int(O.STORE_IDX)
        _SUB_CHK_I64 = int(O.SUB_CHK_I64)
        _SUB_F64 = int(O.SUB_F64)
        _SUB_I64 = int(O.SUB_I64)
        _TRAP = int(O.TRAP)
        _TRUNC = int(O.TRUNC)
        _XOR_I64 = int(O.XOR_I64)
        try:
            while True:
                op, a1, a2, a3, lit = code[ip]
                ip += 1
                executed += 1

                if op == _ADD_I64:
                    regs[a1] = _wrap64(regs[a2] + regs[a3])
                elif op == _LOAD_IDX:
                    buf, off = regs[a2]
                    regs[a1] = buf[off + regs[a3]]
                elif op == _ICMP_LT_I64:
                    regs[a1] = 1 if regs[a2] < regs[a3] else 0
                elif op == _CONDBR:
                    ip = a2 if regs[a1] else a3
                elif op == _BR:
                    ip = lit
                elif op == _MOV:
                    regs[a1] = regs[a2]
                elif op == _ADD_F64:
                    regs[a1] = regs[a2] + regs[a3]
                elif op == _MUL_F64:
                    regs[a1] = regs[a2] * regs[a3]
                elif op == _SUB_F64:
                    regs[a1] = regs[a2] - regs[a3]
                elif op == _DIV_F64:
                    divisor = regs[a3]
                    if divisor == 0.0:
                        raise DivisionByZeroError("float division by zero")
                    regs[a1] = regs[a2] / divisor
                elif op == _SUB_I64:
                    regs[a1] = _wrap64(regs[a2] - regs[a3])
                elif op == _MUL_I64:
                    regs[a1] = _wrap64(regs[a2] * regs[a3])
                elif op == _ADD_CHK_I64:
                    value = regs[a2] + regs[a3]
                    if value < _INT64_MIN or value > _INT64_MAX:
                        raise OverflowError_("integer addition overflow")
                    regs[a1] = value
                elif op == _SUB_CHK_I64:
                    value = regs[a2] - regs[a3]
                    if value < _INT64_MIN or value > _INT64_MAX:
                        raise OverflowError_("integer subtraction overflow")
                    regs[a1] = value
                elif op == _MUL_CHK_I64:
                    value = regs[a2] * regs[a3]
                    if value < _INT64_MIN or value > _INT64_MAX:
                        raise OverflowError_("integer multiplication overflow")
                    regs[a1] = value
                elif op == _ICMP_EQ_I64:
                    regs[a1] = 1 if regs[a2] == regs[a3] else 0
                elif op == _ICMP_NE_I64:
                    regs[a1] = 1 if regs[a2] != regs[a3] else 0
                elif op == _ICMP_LE_I64:
                    regs[a1] = 1 if regs[a2] <= regs[a3] else 0
                elif op == _ICMP_GT_I64:
                    regs[a1] = 1 if regs[a2] > regs[a3] else 0
                elif op == _ICMP_GE_I64:
                    regs[a1] = 1 if regs[a2] >= regs[a3] else 0
                elif op == _CALL:
                    impl, arg_slots = lit
                    regs[a1] = impl(*[regs[slot] for slot in arg_slots])
                elif op == _CALL_VOID:
                    impl, arg_slots = lit
                    impl(*[regs[slot] for slot in arg_slots])
                elif op == _STORE_IDX:
                    buf, off = regs[a2]
                    buf[off + regs[a3]] = regs[a1]
                elif op == _LOAD:
                    buf, off = regs[a2]
                    regs[a1] = buf[off]
                elif op == _STORE:
                    buf, off = regs[a2]
                    buf[off] = regs[a1]
                elif op == _GEP:
                    buf, off = regs[a2]
                    regs[a1] = (buf, off + regs[a3])
                elif op == _SELECT:
                    regs[a1] = regs[a2] if regs[lit] else regs[a3]
                elif op == _FCMP_EQ_F64:
                    regs[a1] = 1 if regs[a2] == regs[a3] else 0
                elif op == _FCMP_NE_F64:
                    regs[a1] = 1 if regs[a2] != regs[a3] else 0
                elif op == _FCMP_LT_F64:
                    regs[a1] = 1 if regs[a2] < regs[a3] else 0
                elif op == _FCMP_LE_F64:
                    regs[a1] = 1 if regs[a2] <= regs[a3] else 0
                elif op == _FCMP_GT_F64:
                    regs[a1] = 1 if regs[a2] > regs[a3] else 0
                elif op == _FCMP_GE_F64:
                    regs[a1] = 1 if regs[a2] >= regs[a3] else 0
                elif op == _OCMP_EQ:
                    regs[a1] = 1 if regs[a2] == regs[a3] else 0
                elif op == _OCMP_NE:
                    regs[a1] = 1 if regs[a2] != regs[a3] else 0
                elif op == _OCMP_LT:
                    regs[a1] = 1 if regs[a2] < regs[a3] else 0
                elif op == _OCMP_LE:
                    regs[a1] = 1 if regs[a2] <= regs[a3] else 0
                elif op == _OCMP_GT:
                    regs[a1] = 1 if regs[a2] > regs[a3] else 0
                elif op == _OCMP_GE:
                    regs[a1] = 1 if regs[a2] >= regs[a3] else 0
                elif op == _SDIV_I64:
                    divisor = regs[a3]
                    if divisor == 0:
                        raise DivisionByZeroError("integer division by zero")
                    quotient = abs(regs[a2]) // abs(divisor)
                    if (regs[a2] < 0) != (divisor < 0):
                        quotient = -quotient
                    regs[a1] = _wrap64(quotient)
                elif op == _SREM_I64:
                    divisor = regs[a3]
                    if divisor == 0:
                        raise DivisionByZeroError("integer modulo by zero")
                    remainder = abs(regs[a2]) % abs(divisor)
                    regs[a1] = -remainder if regs[a2] < 0 else remainder
                elif op == _AND_I64:
                    regs[a1] = regs[a2] & regs[a3]
                elif op == _OR_I64:
                    regs[a1] = regs[a2] | regs[a3]
                elif op == _XOR_I64:
                    regs[a1] = regs[a2] ^ regs[a3]
                elif op == _SHL_I64:
                    regs[a1] = _wrap64(regs[a2] << (regs[a3] & 63))
                elif op == _ASHR_I64:
                    regs[a1] = regs[a2] >> (regs[a3] & 63)
                elif op == _SMIN_I64:
                    regs[a1] = regs[a2] if regs[a2] < regs[a3] else regs[a3]
                elif op == _SMAX_I64:
                    regs[a1] = regs[a2] if regs[a2] > regs[a3] else regs[a3]
                elif op == _FMIN_F64:
                    regs[a1] = regs[a2] if regs[a2] < regs[a3] else regs[a3]
                elif op == _FMAX_F64:
                    regs[a1] = regs[a2] if regs[a2] > regs[a3] else regs[a3]
                elif op == _OVF_ADD_I64:
                    value = regs[a2] + regs[a3]
                    regs[a1] = 1 if (value < _INT64_MIN or value > _INT64_MAX) else 0
                elif op == _OVF_SUB_I64:
                    value = regs[a2] - regs[a3]
                    regs[a1] = 1 if (value < _INT64_MIN or value > _INT64_MAX) else 0
                elif op == _OVF_MUL_I64:
                    value = regs[a2] * regs[a3]
                    regs[a1] = 1 if (value < _INT64_MIN or value > _INT64_MAX) else 0
                elif op == _SITOFP:
                    regs[a1] = float(regs[a2])
                elif op == _FPTOSI:
                    regs[a1] = int(regs[a2])
                elif op == _TRUNC:
                    bits = lit
                    mask = (1 << bits) - 1
                    value = regs[a2] & mask
                    if bits > 1 and value >= (1 << (bits - 1)):
                        value -= 1 << bits
                    regs[a1] = value
                elif op == _LOAD_CONST:
                    regs[a1] = lit
                elif op == _RET:
                    return None
                elif op == _RET_VAL:
                    return regs[a1]
                elif op == _TRAP:
                    raise ExecutionError(str(lit))
                else:  # pragma: no cover - defensive
                    raise VMError(f"unknown opcode {op}")
        finally:
            self._instructions.inc(executed)
