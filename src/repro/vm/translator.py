"""Translation of IR functions into VM bytecode (paper Section IV-B/IV-F).

The translation follows Fig. 9 of the paper:

* compute liveness / allocate registers (the only algorithmically involved
  step, delegated to :mod:`repro.vm.liveness` and :mod:`repro.vm.regalloc`),
* iterate over the blocks in reverse postorder and translate instructions
  one by one, skipping instructions that are *subsumed* by a fused opcode,
* propagate values into phi nodes at the end of each predecessor block,
* patch branch targets once the final layout is known.

Two fusions from Section IV-F are implemented:

* the overflow-check sequence (``op`` / ``ovf.op`` / ``condbr``) becomes a
  single checked arithmetic opcode,
* ``gep`` + ``load`` / ``gep`` + ``store`` become ``load_idx`` /
  ``store_idx``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from ..errors import VMError
from ..ir.analysis import LoopInfo, reverse_postorder
from ..ir.function import BasicBlock, ExternFunction, Function
from ..ir.instructions import (
    BinaryInst,
    BranchInst,
    CallInst,
    CastInst,
    CompareInst,
    CondBranchInst,
    GEPInst,
    LoadInst,
    OverflowCheckInst,
    PhiInst,
    ReturnInst,
    SelectInst,
    StoreInst,
    UnreachableInst,
)
from ..ir.values import Argument, Constant, Instruction, Undef, Value
from .bytecode import BytecodeFunction
from .opcodes import (
    BCInstruction,
    BINARY_TO_OPCODE,
    CHECKED_TO_OPCODE,
    COMPARE_TO_OPCODE,
    OVERFLOW_TO_OPCODE,
    Opcode,
)
from .regalloc import RegisterAllocation, allocate_registers, constant_slot


@dataclass
class TranslationStats:
    """Bookkeeping about one translation, used by benchmarks and tests."""

    ir_instructions: int = 0
    bytecode_instructions: int = 0
    fused_overflow_checks: int = 0
    fused_memory_ops: int = 0
    phi_copies: int = 0
    num_registers: int = 0
    translation_seconds: float = 0.0


class _Emitter:
    """Accumulates bytecode with label-based branch targets."""

    def __init__(self):
        self.code: list[list] = []
        self.fixups: list[tuple[int, int, object]] = []  # (index, field, label)
        self.labels: dict[object, int] = {}

    def here(self, label: object) -> None:
        self.labels[label] = len(self.code)

    def emit(self, op: Opcode, a1: int = 0, a2: int = 0, a3: int = 0,
             lit=None) -> int:
        self.code.append([int(op), a1, a2, a3, lit])
        return len(self.code) - 1

    def emit_branch(self, label: object) -> None:
        index = self.emit(Opcode.BR, lit=None)
        self.fixups.append((index, 4, label))

    def emit_condbr(self, cond_slot: int, true_label: object,
                    false_label: object) -> None:
        index = self.emit(Opcode.CONDBR, cond_slot, 0, 0)
        self.fixups.append((index, 2, true_label))
        self.fixups.append((index, 3, false_label))

    def finish(self) -> list[BCInstruction]:
        for index, pos, label in self.fixups:
            try:
                target = self.labels[label]
            except KeyError as exc:
                raise VMError(f"unresolved branch target {label!r}") from exc
            self.code[index][pos] = target
        return [BCInstruction(*inst) for inst in self.code]


def translate_function(function: Function,
                       allocation: Optional[RegisterAllocation] = None,
                       loop_info: Optional[LoopInfo] = None,
                       enable_fusion: bool = True
                       ) -> tuple[BytecodeFunction, TranslationStats]:
    """Translate one IR function into a :class:`BytecodeFunction`."""
    start_time = time.perf_counter()
    stats = TranslationStats(ir_instructions=function.instruction_count())

    order = reverse_postorder(function)
    if allocation is None:
        allocation = allocate_registers(function, loop_info=loop_info)

    # One scratch slot is reserved for breaking cycles in phi parallel copies.
    scratch_slot = allocation.num_registers
    num_registers = allocation.num_registers + 1

    emitter = _Emitter()
    reachable = {id(block) for block in order}

    def slot_for(value: Value) -> int:
        if isinstance(value, Constant):
            return constant_slot(allocation, value)
        if isinstance(value, Undef):
            return 0
        return allocation.slot(value)

    # Pre-compute use counts of GEP results for the memory fusion, and of
    # overflow checks for the checked-arithmetic fusion.
    gep_single_use: dict[int, Instruction] = {}
    check_use_count: dict[int, int] = {}
    if enable_fusion:
        gep_single_use = _find_fusable_geps(function)
        check_use_count = _overflow_check_uses(function)

    block_offsets: dict[str, int] = {}
    # Trampolines for phi copies on conditional edges: (label, copies, target).
    pending_trampolines: list[tuple[object, list[tuple[int, int]],
                                    BasicBlock]] = []

    for block in order:
        emitter.here(id(block))
        block_offsets.setdefault(block.name, len(emitter.code))
        subsumed: set[int] = set()

        instructions = block.instructions
        for position, inst in enumerate(instructions):
            if inst.uid in subsumed:
                continue
            if isinstance(inst, PhiInst):
                continue  # materialised by copies at the predecessor ends

            if isinstance(inst, BinaryInst):
                fused = False
                if (enable_fusion and inst.opcode in CHECKED_TO_OPCODE
                        and position + 2 < len(instructions)):
                    fused = _try_fuse_overflow(
                        emitter, inst, instructions, position, subsumed,
                        slot_for, stats, block, check_use_count)
                if not fused:
                    opcode = BINARY_TO_OPCODE[(inst.opcode,
                                               inst.type.is_float
                                               or inst.opcode.startswith("f"))]
                    emitter.emit(opcode, slot_for(inst), slot_for(inst.lhs),
                                 slot_for(inst.rhs))
                continue

            if isinstance(inst, OverflowCheckInst):
                opcode = OVERFLOW_TO_OPCODE[inst.checked_opcode]
                emitter.emit(opcode, slot_for(inst), slot_for(inst.lhs),
                             slot_for(inst.rhs))
                continue

            if isinstance(inst, CompareInst):
                kind = ("f" if inst.lhs.type.is_float
                        else "o" if inst.lhs.type.is_pointer else "i")
                opcode = COMPARE_TO_OPCODE[(inst.predicate, kind)]
                emitter.emit(opcode, slot_for(inst), slot_for(inst.lhs),
                             slot_for(inst.rhs))
                continue

            if isinstance(inst, CastInst):
                if inst.opcode == "sitofp":
                    emitter.emit(Opcode.SITOFP, slot_for(inst),
                                 slot_for(inst.value))
                elif inst.opcode == "fptosi":
                    emitter.emit(Opcode.FPTOSI, slot_for(inst),
                                 slot_for(inst.value))
                elif inst.opcode == "trunc":
                    emitter.emit(Opcode.TRUNC, slot_for(inst),
                                 slot_for(inst.value), 0, inst.type.bits)
                else:  # zext / sext are no-ops on Python integers
                    emitter.emit(Opcode.MOV, slot_for(inst),
                                 slot_for(inst.value))
                continue

            if isinstance(inst, SelectInst):
                emitter.emit(Opcode.SELECT, slot_for(inst),
                             slot_for(inst.then_value),
                             slot_for(inst.else_value),
                             slot_for(inst.condition))
                continue

            if isinstance(inst, GEPInst):
                if inst.uid in gep_single_use:
                    # Subsumed into the fused LOAD_IDX / STORE_IDX below.
                    continue
                emitter.emit(Opcode.GEP, slot_for(inst), slot_for(inst.base),
                             slot_for(inst.index))
                continue

            if isinstance(inst, LoadInst):
                pointer = inst.pointer
                if (isinstance(pointer, GEPInst)
                        and pointer.uid in gep_single_use
                        and gep_single_use[pointer.uid] is inst):
                    emitter.emit(Opcode.LOAD_IDX, slot_for(inst),
                                 slot_for(pointer.base),
                                 slot_for(pointer.index))
                    stats.fused_memory_ops += 1
                else:
                    emitter.emit(Opcode.LOAD, slot_for(inst),
                                 slot_for(pointer))
                continue

            if isinstance(inst, StoreInst):
                pointer = inst.pointer
                if (isinstance(pointer, GEPInst)
                        and pointer.uid in gep_single_use
                        and gep_single_use[pointer.uid] is inst):
                    emitter.emit(Opcode.STORE_IDX, slot_for(inst.value),
                                 slot_for(pointer.base),
                                 slot_for(pointer.index))
                    stats.fused_memory_ops += 1
                else:
                    emitter.emit(Opcode.STORE, slot_for(inst.value),
                                 slot_for(pointer))
                continue

            if isinstance(inst, CallInst):
                impl = _callee_impl(inst)
                arg_slots = tuple(slot_for(arg) for arg in inst.args)
                if inst.has_result:
                    emitter.emit(Opcode.CALL, slot_for(inst), 0, 0,
                                 (impl, arg_slots))
                else:
                    emitter.emit(Opcode.CALL_VOID, 0, 0, 0, (impl, arg_slots))
                continue

            if isinstance(inst, BranchInst):
                copies = _phi_copies(block, inst.target, slot_for, reachable)
                _emit_parallel_copies(emitter, copies, scratch_slot, stats)
                emitter.emit_branch(id(inst.target))
                continue

            if isinstance(inst, CondBranchInst):
                true_label = _edge_label(emitter, block, inst.true_target,
                                         slot_for, reachable,
                                         pending_trampolines)
                false_label = _edge_label(emitter, block, inst.false_target,
                                          slot_for, reachable,
                                          pending_trampolines)
                emitter.emit_condbr(slot_for(inst.condition), true_label,
                                    false_label)
                continue

            if isinstance(inst, ReturnInst):
                if inst.value is None:
                    emitter.emit(Opcode.RET)
                else:
                    emitter.emit(Opcode.RET_VAL, slot_for(inst.value))
                continue

            if isinstance(inst, UnreachableInst):
                emitter.emit(Opcode.TRAP, 0, 0, 0,
                             f"unreachable code reached in {function.name}")
                continue

            raise VMError(
                f"{function.name}: cannot translate instruction "
                f"{inst.opcode!r}")

    # Emit the phi-copy trampolines for conditional edges.
    for label, copies, target in pending_trampolines:
        emitter.here(label)
        _emit_parallel_copies(emitter, copies, scratch_slot, stats)
        emitter.emit_branch(id(target))

    code = emitter.finish()

    # Pointer constants need the actual object (not its pooling key), so the
    # pool values are recollected from the IR itself.
    constant_slots = _collect_constant_values(function, allocation)

    arg_slots = [allocation.slot(arg) for arg in function.args]

    bytecode = BytecodeFunction(
        name=function.name,
        code=code,
        num_registers=num_registers,
        constant_slots=constant_slots,
        arg_slots=arg_slots,
        block_offsets=block_offsets,
        source_instruction_count=stats.ir_instructions,
    )
    stats.bytecode_instructions = len(code)
    stats.num_registers = num_registers
    stats.translation_seconds = time.perf_counter() - start_time
    return bytecode, stats


# --------------------------------------------------------------------------- #
# helpers
# --------------------------------------------------------------------------- #
def _callee_impl(inst: CallInst):
    callee = inst.callee
    if isinstance(callee, ExternFunction):
        if callee.python_impl is None:
            raise VMError(f"extern @{callee.name} has no runtime binding")
        return callee.python_impl
    raise VMError(
        "direct IR-to-IR calls are not supported by the VM; pipeline worker "
        "functions are dispatched by the execution engine instead")


def _find_fusable_geps(function: Function) -> dict[int, Instruction]:
    """GEPs used exactly once, by a load/store in the same block."""
    use_count: dict[int, int] = {}
    single_user: dict[int, Instruction] = {}
    for block in function.blocks:
        for inst in block.instructions:
            operands = (inst.value_operands()
                        if not isinstance(inst, PhiInst)
                        else [v for v, _ in inst.incoming])
            for operand in operands:
                if isinstance(operand, GEPInst):
                    use_count[operand.uid] = use_count.get(operand.uid, 0) + 1
                    single_user[operand.uid] = inst
    fusable: dict[int, Instruction] = {}
    for block in function.blocks:
        for inst in block.instructions:
            if not isinstance(inst, GEPInst):
                continue
            if use_count.get(inst.uid) != 1:
                continue
            user = single_user[inst.uid]
            if not isinstance(user, (LoadInst, StoreInst)):
                continue
            if user.block is not inst.block:
                continue
            if isinstance(user, StoreInst) and user.pointer is not inst:
                continue  # the gep is the *value* being stored, not the target
            fusable[inst.uid] = user
    return fusable


def _overflow_check_uses(function: Function) -> dict[int, int]:
    """Use counts of overflow-check results, keyed by uid."""
    use_count: dict[int, int] = {}
    for block in function.blocks:
        for inst in block.instructions:
            operands = (inst.value_operands()
                        if not isinstance(inst, PhiInst)
                        else [v for v, _ in inst.incoming])
            for operand in operands:
                if isinstance(operand, OverflowCheckInst):
                    use_count[operand.uid] = use_count.get(operand.uid, 0) + 1
    return use_count


def _try_fuse_overflow(emitter: _Emitter, inst: BinaryInst,
                       instructions: list[Instruction], position: int,
                       subsumed: set[int], slot_for, stats: TranslationStats,
                       block: BasicBlock,
                       check_use_count: dict[int, int]) -> bool:
    """Try to fuse ``op / ovf.op / condbr`` into a single checked opcode.

    The pattern produced by :meth:`IRBuilder.checked_arith` places the
    overflow predicate directly after the arithmetic and branches to the
    error block on overflow.  The fused opcode performs the arithmetic and
    raises the overflow error itself, then control continues at the
    fall-through target, so both the predicate and the branch are subsumed.
    """
    check = instructions[position + 1]
    branch = instructions[position + 2]
    if not isinstance(check, OverflowCheckInst):
        return False
    if not isinstance(branch, CondBranchInst):
        return False
    if check.checked_opcode != inst.opcode:
        return False
    if check.lhs is not inst.lhs or check.rhs is not inst.rhs:
        return False
    if branch.condition is not check:
        return False
    if check_use_count.get(check.uid, 0) != 1:
        # After CSE a second branch elsewhere may test the same check value;
        # subsuming the check's register write would leave that branch
        # reading an undefined register.  Keep the unfused form.
        return False
    # The branch must be the block terminator (it is, by construction).
    opcode = CHECKED_TO_OPCODE[inst.opcode]
    emitter.emit(opcode, slot_for(inst), slot_for(inst.lhs),
                 slot_for(inst.rhs))
    emitter.emit_branch(id(branch.false_target))
    subsumed.add(check.uid)
    subsumed.add(branch.uid)
    stats.fused_overflow_checks += 1
    return True


def _phi_copies(pred: BasicBlock, succ: BasicBlock, slot_for,
                reachable: set[int]) -> list[tuple[int, int]]:
    """Register copies needed on the edge ``pred -> succ`` (dst, src)."""
    copies: list[tuple[int, int]] = []
    if id(succ) not in reachable:
        return copies
    for phi in succ.phis():
        incoming = phi.incoming_for(pred)
        if isinstance(incoming, Undef):
            continue
        dst = slot_for(phi)
        src = slot_for(incoming)
        if dst != src:
            copies.append((dst, src))
    return copies


def _edge_label(emitter: _Emitter, pred: BasicBlock, succ: BasicBlock,
                slot_for, reachable: set[int],
                pending: list) -> object:
    """Branch label for a conditional edge, adding a trampoline if needed."""
    copies = _phi_copies(pred, succ, slot_for, reachable)
    if not copies:
        return id(succ)
    label = ("edge", id(pred), id(succ))
    pending.append((label, copies, succ))
    return label


def _emit_parallel_copies(emitter: _Emitter, copies: list[tuple[int, int]],
                          scratch_slot: int, stats: TranslationStats) -> None:
    """Emit a set of simultaneous register copies.

    Copies are ordered so that no destination is overwritten before it has
    been read; cycles are broken with the reserved scratch register.
    """
    pending = list(copies)
    stats.phi_copies += len(pending)
    while pending:
        # Find a copy whose destination is not a source of any other copy.
        progress = False
        for index, (dst, src) in enumerate(pending):
            if any(other_src == dst for j, (_, other_src) in
                   enumerate(pending) if j != index):
                continue
            emitter.emit(Opcode.MOV, dst, src)
            pending.pop(index)
            progress = True
            break
        if progress:
            continue
        # Cycle: every pending destination is also a pending source.  Stash
        # the current value of one destination in the scratch register and
        # redirect every read of it there; that destination then stops
        # blocking and the loop makes progress on the next iteration.
        dst, _ = pending[0]
        emitter.emit(Opcode.MOV, scratch_slot, dst)
        pending = [(d, scratch_slot if s == dst else s) for d, s in pending]


def _collect_constant_values(function: Function,
                             allocation: RegisterAllocation
                             ) -> list[tuple[int, object]]:
    """Recover the actual constant objects for the constant pool slots."""
    from .regalloc import constant_key  # local import to avoid cycle noise

    slots: dict[int, object] = {}
    for block in function.blocks:
        for inst in block.instructions:
            operands = (inst.value_operands()
                        if not isinstance(inst, PhiInst)
                        else [v for v, _ in inst.incoming])
            for operand in operands:
                if not isinstance(operand, Constant):
                    continue
                key = constant_key(operand)
                slot = allocation.constant_slot_of.get(key)
                if slot is not None and slot not in slots:
                    slots[slot] = operand.value
    return sorted(slots.items())
