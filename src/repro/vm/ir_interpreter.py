"""A deliberately naive, direct IR interpreter.

This is the stand-in for LLVM's built-in ``lli`` interpreter, the slowest
execution mode in paper Fig. 2.  It walks the pointer-heavy in-memory IR
representation instruction object by instruction object, resolving operand
values through a dictionary environment and dispatching on the instruction's
Python class -- exactly the sources of overhead the paper attributes to the
LLVM interpreter (cache-unfriendly representation, per-instruction runtime
dispatch over operand types).

It is used for two purposes:

* as a differential-testing oracle for the bytecode VM and the compiled
  tiers (all must produce identical results), and
* as the ``EXECUTION MODE: llvm-ir`` data point in the Fig. 2 reproduction.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..errors import DivisionByZeroError, ExecutionError, OverflowError_, VMError
from ..telemetry.metrics import Counter
from ..ir.function import ExternFunction, Function
from ..ir.instructions import (
    BinaryInst,
    BranchInst,
    CallInst,
    CastInst,
    CompareInst,
    CondBranchInst,
    GEPInst,
    LoadInst,
    OverflowCheckInst,
    PhiInst,
    ReturnInst,
    SelectInst,
    StoreInst,
    UnreachableInst,
)
from ..ir.types import wrap_integer
from ..ir.values import Argument, Constant, Undef, Value

_INT64_MIN = -(1 << 63)
_INT64_MAX = (1 << 63) - 1

_COMPARE_FUNCS = {
    "eq": lambda a, b: a == b,
    "ne": lambda a, b: a != b,
    "lt": lambda a, b: a < b,
    "le": lambda a, b: a <= b,
    "gt": lambda a, b: a > b,
    "ge": lambda a, b: a >= b,
}


class IRInterpreter:
    """Direct interpretation of IR functions (slow by design)."""

    def __init__(self):
        #: Sharded counter, mirroring :class:`VirtualMachine`: an
        #: interpreter instance may serve morsels on several pool workers,
        #: so each thread accumulates into its own cell.
        self._instructions = Counter("ir.instructions")

    @property
    def instructions_executed(self) -> int:
        """Total IR instructions executed (merged over all threads)."""
        return self._instructions.value

    def execute(self, function: Function,
                args: Sequence[object] = ()) -> Optional[object]:
        """Interpret ``function`` with the given arguments."""
        if len(args) != len(function.args):
            raise VMError(
                f"{function.name}: expected {len(function.args)} arguments, "
                f"got {len(args)}")
        env: dict[int, object] = {}
        for formal, actual in zip(function.args, args):
            env[formal.uid] = actual

        block = function.entry_block
        previous_block = None
        executed = 0
        try:
            while True:
                # Phi nodes of the current block are evaluated together,
                # against the values on entry (standard SSA semantics).
                phi_updates = []
                next_block = None
                leave = None
                for inst in block.instructions:
                    executed += 1
                    if isinstance(inst, PhiInst):
                        value = inst.incoming_for(previous_block)
                        phi_updates.append((inst.uid, self._value(value, env)))
                        continue
                    if phi_updates:
                        for uid, value in phi_updates:
                            env[uid] = value
                        phi_updates = []
                    result = self._step(inst, env, function)
                    if isinstance(result, _Jump):
                        next_block = result.target
                        break
                    if isinstance(result, _Return):
                        leave = result
                        break
                if phi_updates:
                    for uid, value in phi_updates:
                        env[uid] = value
                if leave is not None:
                    return leave.value
                if next_block is None:
                    raise VMError(
                        f"{function.name}/{block.name}: block fell through "
                        f"without a terminator")
                previous_block, block = block, next_block
        finally:
            self._instructions.inc(executed)

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    def _value(self, value: Value, env: dict):
        if isinstance(value, Constant):
            return value.value
        if isinstance(value, Undef):
            return 0
        try:
            return env[value.uid]
        except KeyError as exc:
            raise VMError(
                f"use of undefined value {value.short_name()}") from exc

    def _step(self, inst, env: dict, function: Function):
        value = self._value

        if isinstance(inst, BinaryInst):
            lhs = value(inst.lhs, env)
            rhs = value(inst.rhs, env)
            env[inst.uid] = _apply_binary(inst.opcode, lhs, rhs, inst.type)
            return None
        if isinstance(inst, OverflowCheckInst):
            lhs = value(inst.lhs, env)
            rhs = value(inst.rhs, env)
            raw = {"add": lhs + rhs, "sub": lhs - rhs,
                   "mul": lhs * rhs}[inst.checked_opcode]
            env[inst.uid] = 1 if (raw < _INT64_MIN or raw > _INT64_MAX) else 0
            return None
        if isinstance(inst, CompareInst):
            result = _COMPARE_FUNCS[inst.predicate](value(inst.lhs, env),
                                                    value(inst.rhs, env))
            env[inst.uid] = 1 if result else 0
            return None
        if isinstance(inst, CastInst):
            operand = value(inst.value, env)
            if inst.opcode == "sitofp":
                env[inst.uid] = float(operand)
            elif inst.opcode == "fptosi":
                env[inst.uid] = int(operand)
            elif inst.opcode == "trunc":
                env[inst.uid] = wrap_integer(int(operand), inst.type)
            else:  # zext / sext
                env[inst.uid] = int(operand)
            return None
        if isinstance(inst, SelectInst):
            cond = value(inst.condition, env)
            env[inst.uid] = (value(inst.then_value, env) if cond
                             else value(inst.else_value, env))
            return None
        if isinstance(inst, GEPInst):
            buf, off = value(inst.base, env)
            env[inst.uid] = (buf, off + value(inst.index, env))
            return None
        if isinstance(inst, LoadInst):
            buf, off = value(inst.pointer, env)
            env[inst.uid] = buf[off]
            return None
        if isinstance(inst, StoreInst):
            buf, off = value(inst.pointer, env)
            buf[off] = value(inst.value, env)
            return None
        if isinstance(inst, CallInst):
            callee = inst.callee
            if not isinstance(callee, ExternFunction) or callee.python_impl is None:
                raise VMError(
                    f"cannot interpret call to @{callee.name} (no binding)")
            result = callee.python_impl(*[value(a, env) for a in inst.args])
            if inst.has_result:
                env[inst.uid] = result
            return None
        if isinstance(inst, BranchInst):
            return _Jump(inst.target)
        if isinstance(inst, CondBranchInst):
            taken = value(inst.condition, env)
            return _Jump(inst.true_target if taken else inst.false_target)
        if isinstance(inst, ReturnInst):
            return _Return(None if inst.value is None
                           else value(inst.value, env))
        if isinstance(inst, UnreachableInst):
            raise ExecutionError(
                f"unreachable code reached in {function.name}")
        raise VMError(f"cannot interpret instruction {inst.opcode!r}")


class _Jump:
    __slots__ = ("target",)

    def __init__(self, target):
        self.target = target


class _Return:
    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value


def _apply_binary(opcode: str, lhs, rhs, result_type):
    if opcode == "add":
        return wrap_integer(lhs + rhs, result_type)
    if opcode == "sub":
        return wrap_integer(lhs - rhs, result_type)
    if opcode == "mul":
        return wrap_integer(lhs * rhs, result_type)
    if opcode == "sdiv":
        if rhs == 0:
            raise DivisionByZeroError("integer division by zero")
        quotient = abs(lhs) // abs(rhs)
        if (lhs < 0) != (rhs < 0):
            quotient = -quotient
        return wrap_integer(quotient, result_type)
    if opcode == "srem":
        if rhs == 0:
            raise DivisionByZeroError("integer modulo by zero")
        remainder = abs(lhs) % abs(rhs)
        return -remainder if lhs < 0 else remainder
    if opcode == "and":
        return lhs & rhs
    if opcode == "or":
        return lhs | rhs
    if opcode == "xor":
        return lhs ^ rhs
    if opcode == "shl":
        return wrap_integer(lhs << (rhs & 63), result_type)
    if opcode == "ashr":
        return lhs >> (rhs & 63)
    if opcode == "smin":
        return lhs if lhs < rhs else rhs
    if opcode == "smax":
        return lhs if lhs > rhs else rhs
    if opcode == "fadd":
        return lhs + rhs
    if opcode == "fsub":
        return lhs - rhs
    if opcode == "fmul":
        return lhs * rhs
    if opcode == "fdiv":
        if rhs == 0.0:
            raise DivisionByZeroError("float division by zero")
        return lhs / rhs
    if opcode == "fmin":
        return lhs if lhs < rhs else rhs
    if opcode == "fmax":
        return lhs if lhs > rhs else rhs
    raise VMError(f"unknown binary opcode {opcode!r}")
