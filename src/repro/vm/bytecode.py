"""Bytecode function container and disassembler."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from .opcodes import BCInstruction, Opcode


@dataclass
class BytecodeFunction:
    """A translated function ready for interpretation.

    Attributes
    ----------
    name:
        Name of the originating IR function.
    code:
        Flat list of :class:`BCInstruction`; branch operands are absolute
        instruction indices.
    num_registers:
        Size of the register file (in slots).  The register file is laid out
        as ``[0, 1, constants..., arguments..., temporaries...]`` -- the first
        two slots always hold the constants 0 and 1, mirroring the paper.
    constant_slots:
        Pairs of ``(slot, value)`` initialised when a frame is created.
    arg_slots:
        Register slot of each formal argument, in argument order.
    block_offsets:
        Map from basic-block name to the instruction index of its first
        opcode (used by tests and the disassembler).
    """

    name: str
    code: list[BCInstruction]
    num_registers: int
    constant_slots: list[tuple[int, object]]
    arg_slots: list[int]
    block_offsets: dict[str, int] = field(default_factory=dict)
    source_instruction_count: int = 0

    # ------------------------------------------------------------------ #
    # frames
    # ------------------------------------------------------------------ #
    def make_register_file(self, args: Sequence[object]) -> list:
        """Allocate and initialise a register file for one invocation.

        The allocation is a plain Python list, the closest equivalent of the
        paper's stack-allocated register file.
        """
        regs = [0] * self.num_registers
        if self.num_registers >= 2:
            regs[0] = 0
            regs[1] = 1
        for slot, value in self.constant_slots:
            regs[slot] = value
        if len(args) != len(self.arg_slots):
            raise ValueError(
                f"{self.name}: expected {len(self.arg_slots)} arguments, "
                f"got {len(args)}")
        for slot, value in zip(self.arg_slots, args):
            regs[slot] = value
        return regs

    # ------------------------------------------------------------------ #
    # metrics
    # ------------------------------------------------------------------ #
    @property
    def register_file_bytes(self) -> int:
        """Register file size in bytes, assuming 8-byte slots (paper IV-C)."""
        return self.num_registers * 8

    def __len__(self) -> int:
        return len(self.code)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<BytecodeFunction {self.name}: {len(self.code)} insts, "
                f"{self.num_registers} regs>")


def disassemble(function: BytecodeFunction) -> str:
    """Human-readable dump of a bytecode function (for tests and debugging)."""
    offset_to_block = {off: name for name, off in function.block_offsets.items()}
    lines = [f"; function {function.name}: {function.num_registers} registers"]
    for slot, value in function.constant_slots:
        lines.append(f";   const r{slot} = {value!r}")
    for idx, arg_slot in enumerate(function.arg_slots):
        lines.append(f";   arg{idx} -> r{arg_slot}")
    for addr, inst in enumerate(function.code):
        block = offset_to_block.get(addr)
        if block is not None:
            lines.append(f"{block}:")
        op = Opcode(inst.op)
        if op in (Opcode.CALL, Opcode.CALL_VOID):
            impl, arg_slots = inst.lit
            args = ", ".join(f"r{slot}" for slot in arg_slots)
            target = getattr(impl, "__name__", repr(impl))
            if op is Opcode.CALL:
                lines.append(f"  {addr:4}  call        r{inst.a1} = "
                             f"{target}({args})")
            else:
                lines.append(f"  {addr:4}  call_void   {target}({args})")
        elif op is Opcode.BR:
            lines.append(f"  {addr:4}  br          -> {inst.lit}")
        elif op is Opcode.CONDBR:
            lines.append(f"  {addr:4}  condbr      r{inst.a1} ? "
                         f"{inst.a2} : {inst.a3}")
        elif op is Opcode.LOAD_CONST:
            lines.append(f"  {addr:4}  load_const  r{inst.a1} = {inst.lit!r}")
        else:
            lines.append(f"  {addr:4}  {op.name.lower():<11} "
                         f"r{inst.a1} r{inst.a2} r{inst.a3}"
                         + (f" lit={inst.lit!r}" if inst.lit is not None else ""))
    return "\n".join(lines)
