"""Fast bytecode virtual machine for the query IR (paper Section IV).

The VM is a register machine with a statically typed, fixed-length
instruction encoding.  Translation from IR into bytecode is linear time; the
dominant cost is the liveness computation for register allocation, which
implements the paper's loop-aware algorithm (Fig. 10-12).

Public entry points:

* :func:`translate_function` -- IR function -> :class:`BytecodeFunction`.
* :class:`VirtualMachine` -- the dispatch-loop interpreter.
* :class:`repro.vm.ir_interpreter.IRInterpreter` -- the deliberately naive
  direct IR walker standing in for LLVM's built-in interpreter (the slowest
  point in paper Fig. 2).
"""

from .opcodes import Opcode, BCInstruction
from .bytecode import BytecodeFunction, disassemble
from .liveness import LiveRange, compute_live_ranges
from .regalloc import RegisterAllocation, allocate_registers
from .translator import translate_function, TranslationStats
from .interpreter import VirtualMachine
from .ir_interpreter import IRInterpreter

__all__ = [
    "Opcode", "BCInstruction",
    "BytecodeFunction", "disassemble",
    "LiveRange", "compute_live_ranges",
    "RegisterAllocation", "allocate_registers",
    "translate_function", "TranslationStats",
    "VirtualMachine",
    "IRInterpreter",
]
