"""Linear-time liveness computation (paper Section IV-D, Fig. 10-12).

The classic per-block dataflow formulation of liveness is super-linear in the
number of basic blocks, which the paper shows is unacceptable for the very
large functions machine-generated queries produce.  This module implements
the paper's alternative:

1. label all basic blocks in reverse postorder,
2. build the dominator tree and number it with pre-/post-order intervals so
   ancestor checks are O(1),
3. mark the function entry and the target of every back edge as loop heads
   and associate each block with its innermost loop (union-find with path
   compression),
4. represent the liveness of each value as a single live *range* -- an
   interval of reverse-postorder block labels -- extended to the enclosing
   loop whenever a definition or use sits inside a loop that does not contain
   all the other uses.

The result intentionally over-approximates liveness for complex control flow
(the paper accepts a slightly longer lifetime in exchange for the linear
bound), but it is always *safe*: every block on any path between the
definition and a use lies within the computed range.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..errors import VMError
from ..ir.analysis import LoopInfo, find_loops
from ..ir.function import Function
from ..ir.instructions import PhiInst
from ..ir.values import Argument, Constant, Instruction, Undef, Value


@dataclass
class LiveRange:
    """The live range of one SSA value, in reverse-postorder block indices.

    ``def_position`` and ``last_use_position`` give instruction indices within
    the start/end blocks and are only meaningful when the range covers a
    single block; they allow the register allocator to reuse slots within a
    block (the common case the paper mentions: allocate on demand, release
    when the last user is gone).
    """

    value: Value
    start_block: int
    end_block: int
    def_position: int
    last_use_position: int
    crosses_blocks: bool

    @property
    def single_block(self) -> bool:
        return not self.crosses_blocks

    def overlaps(self, other: "LiveRange") -> bool:
        """Whether two ranges can be live at the same time (block level)."""
        return not (self.end_block < other.start_block
                    or other.end_block < self.start_block)


def compute_live_ranges(function: Function,
                        loop_info: Optional[LoopInfo] = None
                        ) -> tuple[Dict[int, LiveRange], LoopInfo]:
    """Compute a live range for every value produced in ``function``.

    Returns ``(ranges, loop_info)`` where ``ranges`` maps ``value.uid`` to its
    :class:`LiveRange`.  Function arguments get a range starting at the entry
    block; constants are not tracked (they live in the constant pool).
    """
    info = loop_info if loop_info is not None else find_loops(function)
    rpo_index = info.rpo_index
    order = info.order
    reachable_ids = set(rpo_index.keys())

    # ------------------------------------------------------------------ #
    # collect, for every value, the blocks (and instruction positions) of its
    # definition and of all its uses.  Phi semantics follow the paper: the
    # phi's arguments are read at the *end of the incoming block*, the phi
    # itself is written at the start of its own block.
    # ------------------------------------------------------------------ #
    def_block: dict[int, int] = {}
    def_pos: dict[int, int] = {}
    use_blocks: dict[int, set[int]] = {}
    last_use_pos: dict[int, int] = {}
    values: dict[int, Value] = {}

    def note_def(value: Value, block_idx: int, pos: int) -> None:
        values[value.uid] = value
        def_block[value.uid] = block_idx
        def_pos[value.uid] = pos
        use_blocks.setdefault(value.uid, set()).add(block_idx)

    def note_use(value: Value, block_idx: int, pos: int) -> None:
        if isinstance(value, (Constant, Undef)):
            return
        values[value.uid] = value
        use_blocks.setdefault(value.uid, set()).add(block_idx)
        prev = last_use_pos.get(value.uid, -1)
        if block_idx == def_block.get(value.uid) and pos > prev:
            last_use_pos[value.uid] = pos

    for arg in function.args:
        note_def(arg, 0, -1)

    for block in order:
        bidx = rpo_index[id(block)]
        block_len = len(block.instructions)
        for pos, inst in enumerate(block.instructions):
            if inst.has_result:
                note_def(inst, bidx, pos)
            if isinstance(inst, PhiInst):
                # Arguments are read at the end of their incoming block; the
                # phi itself is written there too (the translator emits the
                # register copy just before the predecessor's terminator), so
                # the phi's own range must include every incoming block.
                for value, pred in inst.incoming:
                    if id(pred) not in reachable_ids:
                        continue
                    pred_idx = rpo_index[id(pred)]
                    use_blocks.setdefault(inst.uid, set()).add(pred_idx)
                    if isinstance(value, (Constant, Undef)):
                        continue
                    values[value.uid] = value
                    use_blocks.setdefault(value.uid, set()).add(pred_idx)
                    if pred_idx == def_block.get(value.uid):
                        # read happens at the very end of the incoming block
                        last_use_pos[value.uid] = len(pred.instructions)
            else:
                for operand in inst.value_operands():
                    note_use(operand, bidx, pos)

    # ------------------------------------------------------------------ #
    # turn block sets into ranges, extending to enclosing loops (Fig. 11).
    # ------------------------------------------------------------------ #
    index_to_block = {idx: block for block, idx in
                      ((b, rpo_index[id(b)]) for b in order)}
    ranges: dict[int, LiveRange] = {}
    for uid, value in values.items():
        if uid not in def_block:
            raise VMError(
                f"{function.name}: value {value.short_name()} is used but "
                f"never defined (run the IR verifier first)")
        blocks = use_blocks[uid]
        d_idx = def_block[uid]

        if len(blocks) == 1 and blocks == {d_idx}:
            # Entirely local to its defining block: precise positions apply.
            ranges[uid] = LiveRange(
                value=value,
                start_block=d_idx,
                end_block=d_idx,
                def_position=def_pos[uid],
                last_use_position=last_use_pos.get(uid, def_pos[uid]),
                crosses_blocks=False,
            )
            continue

        # C_v: the innermost loop containing all blocks of B_v.
        member_loops = [info.loop_of(index_to_block[idx]) for idx in blocks]
        common = info.common_loop(member_loops)

        start = min(blocks)
        end = max(blocks)
        for idx in blocks:
            block = index_to_block[idx]
            inner = info.loop_of(block)
            if inner is common:
                # The block sits directly in C_v: extend with the block itself.
                continue
            # Otherwise extend with the outermost loop below C_v containing it.
            outer_below = info.outermost_below(common, block)
            start = min(start, outer_below.first_index)
            end = max(end, outer_below.last_index)

        ranges[uid] = LiveRange(
            value=value,
            start_block=min(start, d_idx),
            end_block=max(end, d_idx),
            def_position=def_pos[uid],
            last_use_position=-1,
            crosses_blocks=True,
        )

    return ranges, info


def naive_live_ranges(function: Function,
                      window: Optional[int] = None) -> Dict[int, LiveRange]:
    """Baseline liveness strategies used by the register-file ablation.

    ``window=None`` reproduces the "no reuse" strategy (every value keeps its
    register until the end of the function).  A numeric ``window`` reproduces
    the greedy fixed-window strategy some JIT compilers use: a value whose
    uses all fall within ``window`` blocks of its definition gets a tight
    range; any value living longer keeps its register until the end of the
    function.  These strategies are only used to *measure* register-file
    sizes (paper Section IV-C); execution always uses
    :func:`compute_live_ranges`.
    """
    info = find_loops(function)
    rpo_index = info.rpo_index
    last_block = len(info.order) - 1

    def_block: dict[int, int] = {}
    max_use: dict[int, int] = {}
    values: dict[int, Value] = {}

    for arg in function.args:
        values[arg.uid] = arg
        def_block[arg.uid] = 0
        max_use[arg.uid] = 0

    for block in info.order:
        bidx = rpo_index[id(block)]
        for inst in block.instructions:
            if inst.has_result:
                values[inst.uid] = inst
                def_block[inst.uid] = bidx
                max_use.setdefault(inst.uid, bidx)
            operands = (inst.value_operands()
                        if not isinstance(inst, PhiInst)
                        else [v for v, _ in inst.incoming])
            for operand in operands:
                if isinstance(operand, (Constant, Undef)):
                    continue
                if operand.uid in values:
                    max_use[operand.uid] = max(max_use[operand.uid], bidx)

    ranges: dict[int, LiveRange] = {}
    for uid, value in values.items():
        start = def_block[uid]
        end = max_use.get(uid, start)
        if window is None:
            end = last_block
        elif end - start > window:
            end = last_block
        ranges[uid] = LiveRange(value=value, start_block=start,
                                end_block=end, def_position=-1,
                                last_use_position=-1, crosses_blocks=True)
    return ranges
