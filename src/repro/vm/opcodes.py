"""Bytecode opcodes and the fixed-length instruction encoding.

Every bytecode instruction is a 5-tuple ``(op, a1, a2, a3, lit)``:

* ``op``  -- the :class:`Opcode` (an ``IntEnum``, so dispatch compares ints),
* ``a1``  -- usually the destination register slot,
* ``a2``/``a3`` -- operand register slots (or branch targets),
* ``lit`` -- an immediate literal (constants, call descriptors, jump targets).

The encoding is deliberately fixed length, mirroring the paper's design: the
interpreter never has to decode variable-length operands, and the translated
function is a flat Python list that stays cache friendly.

Opcodes are statically typed (``ADD_I64`` vs ``ADD_F64``), so the dispatch
loop never inspects operand types at runtime -- the second property the paper
calls out as essential for a fast interpreter.
"""

from __future__ import annotations

import enum
from typing import NamedTuple


class Opcode(enum.IntEnum):
    """All bytecode opcodes understood by the virtual machine."""

    # -- moves and constants ------------------------------------------------
    MOV = 1                 # regs[a1] = regs[a2]
    LOAD_CONST = 2          # regs[a1] = lit

    # -- 64-bit integer arithmetic (wrapping) --------------------------------
    ADD_I64 = 10            # regs[a1] = wrap(regs[a2] + regs[a3])
    SUB_I64 = 11
    MUL_I64 = 12
    SDIV_I64 = 13
    SREM_I64 = 14
    AND_I64 = 15
    OR_I64 = 16
    XOR_I64 = 17
    SHL_I64 = 18
    ASHR_I64 = 19
    SMIN_I64 = 20
    SMAX_I64 = 21

    # -- 64-bit integer arithmetic, fused overflow check ---------------------
    # On overflow the VM raises a query error (the paper's error code path).
    ADD_CHK_I64 = 25
    SUB_CHK_I64 = 26
    MUL_CHK_I64 = 27
    # standalone overflow predicates (unfused fallback)
    OVF_ADD_I64 = 28
    OVF_SUB_I64 = 29
    OVF_MUL_I64 = 22

    # -- double arithmetic ----------------------------------------------------
    ADD_F64 = 30
    SUB_F64 = 31
    MUL_F64 = 32
    DIV_F64 = 33
    FMIN_F64 = 34
    FMAX_F64 = 35

    # -- comparisons ----------------------------------------------------------
    ICMP_EQ_I64 = 40
    ICMP_NE_I64 = 41
    ICMP_LT_I64 = 42
    ICMP_LE_I64 = 43
    ICMP_GT_I64 = 44
    ICMP_GE_I64 = 45
    FCMP_EQ_F64 = 46
    FCMP_NE_F64 = 47
    FCMP_LT_F64 = 48
    FCMP_LE_F64 = 49
    FCMP_GT_F64 = 50
    FCMP_GE_F64 = 51
    # object comparisons (strings and other runtime objects)
    OCMP_EQ = 52
    OCMP_NE = 53
    OCMP_LT = 54
    OCMP_LE = 55
    OCMP_GT = 56
    OCMP_GE = 57

    # -- select / casts -------------------------------------------------------
    SELECT = 60             # regs[a1] = regs[a2] if regs[lit] else regs[a3]
    SITOFP = 61             # regs[a1] = float(regs[a2])
    FPTOSI = 62             # regs[a1] = int(regs[a2])
    TRUNC = 63              # regs[a1] = wrap(regs[a2], bits=lit)

    # -- memory ---------------------------------------------------------------
    GEP = 70                # regs[a1] = (buf, off + regs[a3]) of pointer a2
    LOAD = 71               # regs[a1] = buf[off] of pointer a2
    STORE = 72              # buf[off] = regs[a1]  (pointer in a2)
    LOAD_IDX = 73           # fused gep+load: regs[a1] = buf[off + regs[a3]]
    STORE_IDX = 74          # fused gep+store: buf[off + regs[a3]] = regs[a1]

    # -- calls ----------------------------------------------------------------
    CALL = 80               # lit = (impl, arg_slots); regs[a1] = impl(*args)
    CALL_VOID = 81          # lit = (impl, arg_slots); impl(*args)

    # -- control flow ---------------------------------------------------------
    BR = 90                 # ip = lit
    CONDBR = 91             # ip = a2 if regs[a1] else a3
    RET = 92                # return None
    RET_VAL = 93            # return regs[a1]
    TRAP = 94               # unreachable reached -> raise

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name.lower()


class BCInstruction(NamedTuple):
    """A single fixed-length bytecode instruction."""

    op: int
    a1: int
    a2: int
    a3: int
    lit: object

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"{Opcode(self.op).name.lower():<12} "
                f"{self.a1:>4} {self.a2:>4} {self.a3:>4} "
                f"{'' if self.lit is None else self.lit}")


#: Opcodes whose ``lit``/operands reference jump targets, patched after layout.
BRANCH_OPCODES = frozenset({Opcode.BR, Opcode.CONDBR})

#: Checked arithmetic opcodes and the exception message they raise.
CHECKED_OPCODES = {
    Opcode.ADD_CHK_I64: "integer addition overflow",
    Opcode.SUB_CHK_I64: "integer subtraction overflow",
    Opcode.MUL_CHK_I64: "integer multiplication overflow",
}

#: Map (binary IR opcode, is_float) -> VM opcode for plain arithmetic.
BINARY_TO_OPCODE = {
    ("add", False): Opcode.ADD_I64,
    ("sub", False): Opcode.SUB_I64,
    ("mul", False): Opcode.MUL_I64,
    ("sdiv", False): Opcode.SDIV_I64,
    ("srem", False): Opcode.SREM_I64,
    ("and", False): Opcode.AND_I64,
    ("or", False): Opcode.OR_I64,
    ("xor", False): Opcode.XOR_I64,
    ("shl", False): Opcode.SHL_I64,
    ("ashr", False): Opcode.ASHR_I64,
    ("smin", False): Opcode.SMIN_I64,
    ("smax", False): Opcode.SMAX_I64,
    ("fadd", True): Opcode.ADD_F64,
    ("fsub", True): Opcode.SUB_F64,
    ("fmul", True): Opcode.MUL_F64,
    ("fdiv", True): Opcode.DIV_F64,
    ("fmin", True): Opcode.FMIN_F64,
    ("fmax", True): Opcode.FMAX_F64,
}

#: Map (predicate, kind) -> comparison opcode; kind is "i", "f" or "o".
COMPARE_TO_OPCODE = {
    ("eq", "i"): Opcode.ICMP_EQ_I64,
    ("ne", "i"): Opcode.ICMP_NE_I64,
    ("lt", "i"): Opcode.ICMP_LT_I64,
    ("le", "i"): Opcode.ICMP_LE_I64,
    ("gt", "i"): Opcode.ICMP_GT_I64,
    ("ge", "i"): Opcode.ICMP_GE_I64,
    ("eq", "f"): Opcode.FCMP_EQ_F64,
    ("ne", "f"): Opcode.FCMP_NE_F64,
    ("lt", "f"): Opcode.FCMP_LT_F64,
    ("le", "f"): Opcode.FCMP_LE_F64,
    ("gt", "f"): Opcode.FCMP_GT_F64,
    ("ge", "f"): Opcode.FCMP_GE_F64,
    ("eq", "o"): Opcode.OCMP_EQ,
    ("ne", "o"): Opcode.OCMP_NE,
    ("lt", "o"): Opcode.OCMP_LT,
    ("le", "o"): Opcode.OCMP_LE,
    ("gt", "o"): Opcode.OCMP_GT,
    ("ge", "o"): Opcode.OCMP_GE,
}

#: Map checked IR opcode -> fused checked VM opcode.
CHECKED_TO_OPCODE = {
    "add": Opcode.ADD_CHK_I64,
    "sub": Opcode.SUB_CHK_I64,
    "mul": Opcode.MUL_CHK_I64,
}

#: Map checked IR opcode -> standalone overflow-predicate VM opcode.
OVERFLOW_TO_OPCODE = {
    "add": Opcode.OVF_ADD_I64,
    "sub": Opcode.OVF_SUB_I64,
    "mul": Opcode.OVF_MUL_I64,
}


class OpcodeSignature(NamedTuple):
    """Static register/control effects of one opcode.

    ``reads`` / ``writes`` name the instruction fields (``"a1"``, ``"a2"``,
    ``"a3"``, ``"lit"``) holding register slots the instruction reads or
    writes; ``jumps`` names fields holding absolute jump targets.  ``call``
    marks the two call opcodes, whose ``lit`` is an ``(impl, arg_slots)``
    descriptor (the tuple's slots are all read).  ``falls_through`` is False
    for every opcode after which execution never reaches ``ip + 1``.

    This table is the single source of truth for the bytecode verifier's
    abstract interpretation (:mod:`repro.analysis.bytecode_verifier`); a new
    opcode without a signature is itself a verification failure.
    """

    reads: tuple = ()
    writes: tuple = ()
    jumps: tuple = ()
    call: bool = False
    falls_through: bool = True


def _binary_signature() -> OpcodeSignature:
    return OpcodeSignature(reads=("a2", "a3"), writes=("a1",))


def _unary_signature() -> OpcodeSignature:
    return OpcodeSignature(reads=("a2",), writes=("a1",))


#: Opcode -> :class:`OpcodeSignature` for every opcode the VM understands.
OPCODE_SIGNATURES: dict = {
    Opcode.MOV: _unary_signature(),
    Opcode.LOAD_CONST: OpcodeSignature(writes=("a1",)),
    # SELECT reads its condition register out of ``lit``.
    Opcode.SELECT: OpcodeSignature(reads=("a2", "a3", "lit"), writes=("a1",)),
    Opcode.SITOFP: _unary_signature(),
    Opcode.FPTOSI: _unary_signature(),
    Opcode.TRUNC: _unary_signature(),        # lit is a bit width, not a slot
    Opcode.GEP: OpcodeSignature(reads=("a2", "a3"), writes=("a1",)),
    Opcode.LOAD: _unary_signature(),
    Opcode.STORE: OpcodeSignature(reads=("a1", "a2")),
    Opcode.LOAD_IDX: OpcodeSignature(reads=("a2", "a3"), writes=("a1",)),
    Opcode.STORE_IDX: OpcodeSignature(reads=("a1", "a2", "a3")),
    Opcode.CALL: OpcodeSignature(writes=("a1",), call=True),
    Opcode.CALL_VOID: OpcodeSignature(call=True),
    Opcode.BR: OpcodeSignature(jumps=("lit",), falls_through=False),
    Opcode.CONDBR: OpcodeSignature(reads=("a1",), jumps=("a2", "a3"),
                                   falls_through=False),
    Opcode.RET: OpcodeSignature(falls_through=False),
    Opcode.RET_VAL: OpcodeSignature(reads=("a1",), falls_through=False),
    Opcode.TRAP: OpcodeSignature(falls_through=False),
}

# All two-operand arithmetic / comparison / overflow-predicate opcodes share
# the (reads a2+a3, writes a1) shape.
for _op in (Opcode.ADD_I64, Opcode.SUB_I64, Opcode.MUL_I64, Opcode.SDIV_I64,
            Opcode.SREM_I64, Opcode.AND_I64, Opcode.OR_I64, Opcode.XOR_I64,
            Opcode.SHL_I64, Opcode.ASHR_I64, Opcode.SMIN_I64, Opcode.SMAX_I64,
            Opcode.ADD_CHK_I64, Opcode.SUB_CHK_I64, Opcode.MUL_CHK_I64,
            Opcode.OVF_ADD_I64, Opcode.OVF_SUB_I64, Opcode.OVF_MUL_I64,
            Opcode.ADD_F64, Opcode.SUB_F64, Opcode.MUL_F64, Opcode.DIV_F64,
            Opcode.FMIN_F64, Opcode.FMAX_F64,
            Opcode.ICMP_EQ_I64, Opcode.ICMP_NE_I64, Opcode.ICMP_LT_I64,
            Opcode.ICMP_LE_I64, Opcode.ICMP_GT_I64, Opcode.ICMP_GE_I64,
            Opcode.FCMP_EQ_F64, Opcode.FCMP_NE_F64, Opcode.FCMP_LT_F64,
            Opcode.FCMP_LE_F64, Opcode.FCMP_GT_F64, Opcode.FCMP_GE_F64,
            Opcode.OCMP_EQ, Opcode.OCMP_NE, Opcode.OCMP_LT, Opcode.OCMP_LE,
            Opcode.OCMP_GT, Opcode.OCMP_GE):
    OPCODE_SIGNATURES[_op] = _binary_signature()
del _op
