"""Generation of IR worker functions from pipeline plans (paper Fig. 4).

Every pipeline becomes one worker function::

    void workerN(ptr state, i64 morsel_begin, i64 morsel_end)

which processes the source rows in ``[morsel_begin, morsel_end)``: it loads
the needed source columns, evaluates filters, probes join hash tables
(fanning out over matches with nested loops) and finally feeds the pipeline's
sink through a runtime call.  The generated code is purely data-centric --
operators are fused into the loop rather than iterated -- which is exactly
the code shape HyPer produces and the shape the bytecode VM, the compiled
tiers and the adaptive framework all consume unchanged.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..errors import CodegenError
from ..ir.builder import IRBuilder
from ..ir.function import ExternFunction, Function, Module
from ..ir.types import f64, i1, i64, ptr, void
from ..ir.values import Constant, Value
from ..ir.verifier import verify_module
from ..plan.physical import (
    AggregateSink,
    HashBuildSink,
    IntermediateSource,
    OutputSink,
    PhysFilter,
    PhysHashProbe,
    Pipeline,
    PhysicalPlan,
    TableSource,
)
from ..semantics.expressions import ColumnExpr
from ..types import SQLType
from .expr_codegen import ExpressionCompiler, ir_type_of
from .runtime import QueryRuntime, QueryState


@dataclass
class GeneratedPipeline:
    """One pipeline's generated artefacts."""

    pipeline: Pipeline
    function: Function
    #: Runs single-threaded after all morsels of the pipeline finished
    #: (e.g. materialising an aggregation result).  ``None`` when nothing
    #: needs to happen.
    finish: Optional[Callable[[], None]] = None

    @property
    def name(self) -> str:
        return self.pipeline.name


@dataclass
class GeneratedQuery:
    """The complete generated program of one query.

    The artefacts split into two halves:

    * **Immutable artefacts** -- ``module``, ``pipelines`` (the IR worker
      functions), ``output_sink`` and ``codegen_seconds``.  These are fixed
      once generation finishes and can be shared by many executions; the
      bytecode translations and compiled tiers derived from them are equally
      reusable (see :class:`repro.prepared.PreparedQuery`).
    * **Per-execution state** -- ``state`` (and the ``runtime`` closures bound
      to it).  The generated code references the state's containers by
      identity, so re-execution works by resetting those containers in place
      via :meth:`reset_for_execution` rather than by allocating a new state.
    """

    module: Module
    pipelines: list[GeneratedPipeline]
    state: QueryState
    runtime: QueryRuntime
    output_sink: OutputSink
    codegen_seconds: float = 0.0

    @property
    def instruction_count(self) -> int:
        return self.module.instruction_count()

    def reset_for_execution(self) -> None:
        """Reset the mutable execution state; all artefacts stay valid."""
        self.state.reset()


class CodeGenerator:
    """Generates the IR module for one query execution."""

    def __init__(self, plan: PhysicalPlan, state: QueryState,
                 runtime: Optional[QueryRuntime] = None,
                 verify: bool = True):
        self.plan = plan
        self.state = state
        self.runtime = runtime or QueryRuntime(state)
        self.verify = verify
        self._extern_cache: dict = {}

    # ------------------------------------------------------------------ #
    def generate(self) -> GeneratedQuery:
        start = time.perf_counter()
        module = Module("query")
        generated: list[GeneratedPipeline] = []
        output_sink: Optional[OutputSink] = None

        for index, pipeline in enumerate(self.plan.pipelines):
            function = self._generate_worker(module, index, pipeline)
            finish = self._finish_step(pipeline)
            generated.append(GeneratedPipeline(pipeline=pipeline,
                                               function=function,
                                               finish=finish))
            if isinstance(pipeline.sink, OutputSink):
                output_sink = pipeline.sink

        if output_sink is None:
            raise CodegenError("query plan has no output pipeline")
        if self.verify:
            verify_module(module)

        return GeneratedQuery(
            module=module,
            pipelines=generated,
            state=self.state,
            runtime=self.runtime,
            output_sink=output_sink,
            codegen_seconds=time.perf_counter() - start)

    # ------------------------------------------------------------------ #
    # per-pipeline worker generation
    # ------------------------------------------------------------------ #
    def _generate_worker(self, module: Module, index: int,
                         pipeline: Pipeline) -> Function:
        function = Function(f"worker{index}", [ptr, i64, i64],
                            ["state", "morsel_begin", "morsel_end"])
        module.add_function(function)
        builder = IRBuilder(function)

        # Error path shared by all overflow checks of this worker.
        error_block = function.add_block("overflow.error")
        error_builder = IRBuilder(function, error_block)
        raise_extern = ExternFunction("rt_raise_overflow", [], void,
                                      QueryRuntime.raise_overflow)
        error_builder.call(raise_extern, [])
        error_builder.unreachable()

        # Canonical scan loop over the morsel range.
        head = builder.new_block("scan.head")
        body = builder.new_block("scan.body")
        latch = builder.new_block("scan.latch")
        exit_block = builder.new_block("scan.exit")

        entry = builder.block
        builder.br(head)
        builder.set_block(head)
        row = builder.phi(i64, "row")
        row.add_incoming(function.args[1], entry)
        in_range = builder.cmp("lt", row, function.args[2])
        builder.condbr(in_range, body, exit_block)

        builder.set_block(body)
        column_cache: dict[tuple[str, str], Value] = {}
        resolver = self._source_resolver(builder, pipeline, row, column_cache)
        compiler = ExpressionCompiler(builder, error_block, resolver,
                                      self._extern_cache,
                                      params=self.state.params)
        self._emit_operators(builder, compiler, pipeline, 0,
                             done_label=latch, row=row,
                             resolver_stack=[resolver])

        builder.set_block(latch)
        next_row = builder.add(row, builder.const_i64(1))
        row.add_incoming(next_row, latch)
        builder.br(head)

        builder.set_block(exit_block)
        builder.ret()
        return function

    # ------------------------------------------------------------------ #
    # source column resolution
    # ------------------------------------------------------------------ #
    def _source_resolver(self, builder: IRBuilder, pipeline: Pipeline,
                         row: Value, cache: dict):
        source = pipeline.source

        if isinstance(source, TableSource):
            table = source.table
            binding = source.binding

            # Note: column loads are deliberately *not* cached per row.  A
            # load emitted inside a conditional sub-expression (e.g. a CASE
            # branch) would not dominate later uses after the merge; the
            # optimized tier's dominator-scoped CSE removes the duplicates
            # where that is legal.
            def resolve(column: ColumnExpr) -> Value:
                if column.binding != binding:
                    raise CodegenError(
                        f"column {column.binding}.{column.column} is not "
                        f"available from pipeline source {binding!r}")
                data = table.column_data(column.column)
                pointer = Constant(ptr, (data, 0))
                element = builder.gep(pointer, row)
                return self._load_column(builder, element,
                                         column.storage_type)
            return resolve

        # Intermediate source: columns live in the pre-created state lists.
        assert isinstance(source, IntermediateSource)
        agg_id = self._agg_id_for(source)
        columns = self.state.intermediate_columns[agg_id]
        names = source.column_names()
        types = dict(source.columns)

        def resolve_intermediate(column: ColumnExpr) -> Value:
            if column.binding != source.binding:
                raise CodegenError(
                    f"column {column.binding}.{column.column} is not "
                    f"available from intermediate {source.binding!r}")
            position = names.index(column.column)
            pointer = Constant(ptr, (columns[position], 0))
            element = builder.gep(pointer, row)
            sql_type = types[column.column]
            return self._load_column(builder, element, sql_type,
                                     already_decoded=True)
        return resolve_intermediate

    def _agg_id_for(self, source: IntermediateSource) -> int:
        for pipeline in self.plan.pipelines:
            sink = pipeline.sink
            if isinstance(sink, AggregateSink) and sink.intermediate is source:
                return sink.agg_id
        raise CodegenError(f"no producing pipeline for {source.name!r}")

    def _load_column(self, builder: IRBuilder, element: Value,
                     sql_type: SQLType, already_decoded: bool = False) -> Value:
        if sql_type is SQLType.FLOAT64:
            return builder.load(f64, element)
        if sql_type is SQLType.STRING:
            return builder.load(ptr, element)
        if sql_type is SQLType.DECIMAL and not already_decoded:
            # Stored as a scaled integer; surface as its numeric value.
            raw = builder.load(i64, element)
            as_float = builder.sitofp(raw)
            return builder.binary("fmul", as_float, Constant(f64, 0.01))
        if sql_type is SQLType.BOOL:
            raw = builder.load(i64, element)
            return builder.trunc(raw, i1)
        return builder.load(i64, element)

    # ------------------------------------------------------------------ #
    # operator chain
    # ------------------------------------------------------------------ #
    def _emit_operators(self, builder: IRBuilder,
                        compiler: ExpressionCompiler, pipeline: Pipeline,
                        op_index: int, done_label, row: Value,
                        resolver_stack: list) -> None:
        operators = pipeline.operators
        if op_index == len(operators):
            self._emit_sink(builder, compiler, pipeline)
            builder.br(done_label)
            return

        operator = operators[op_index]

        if isinstance(operator, PhysFilter):
            condition = compiler.compile(operator.predicate)
            passed = builder.new_block(f"filter{op_index}.pass")
            builder.condbr(condition, passed, done_label)
            builder.set_block(passed)
            self._emit_operators(builder, compiler, pipeline, op_index + 1,
                                 done_label, row, resolver_stack)
            return

        if isinstance(operator, PhysHashProbe):
            self._emit_probe(builder, compiler, pipeline, operator, op_index,
                             done_label, row, resolver_stack)
            return

        raise CodegenError(f"unknown operator {type(operator).__name__}")

    def _emit_probe(self, builder: IRBuilder, compiler: ExpressionCompiler,
                    pipeline: Pipeline, probe: PhysHashProbe, op_index: int,
                    done_label, row: Value, resolver_stack: list) -> None:
        key_values = [compiler.compile(key) for key in probe.probe_keys]

        probe_impl = self.runtime.make_probe(probe.join_id,
                                             len(probe.probe_keys))
        probe_extern = ExternFunction(
            probe_impl.__name__,
            [ir_type_of(key.result_type) for key in probe.probe_keys],
            ptr, probe_impl, has_side_effects=False)
        matches = builder.call(probe_extern, key_values, "matches")

        count_extern = self._cached_extern(
            ("match_count",), "rt_match_count", [ptr], i64,
            QueryRuntime.match_count, pure=True)
        match_count = builder.call(count_extern, [matches], "match_count")

        # LEFT OUTER JOIN with residuals: a per-probe-row flag cell records
        # whether any match passed them (allocated fresh per row; the extern
        # is side-effecting so no tier merges or hoists the allocation).
        flag_cell = None
        if probe.outer and probe.residual:
            flag_new = self._cached_extern(
                ("flag_new",), "rt_flag_new", [], ptr,
                QueryRuntime.flag_new)
            flag_cell = builder.call(flag_new, [],
                                     f"matched{probe.join_id}")

        # Inner loop over the matching build-side rows.
        head = builder.new_block(f"probe{probe.join_id}.head")
        body = builder.new_block(f"probe{probe.join_id}.body")
        latch = builder.new_block(f"probe{probe.join_id}.latch")
        # For an outer probe the loop's exhausted edge runs through an
        # unmatched check instead of straight to ``done_label``.
        exhausted = (builder.new_block(f"probe{probe.join_id}.exhausted")
                     if probe.outer else None)

        preheader = builder.block
        builder.br(head)
        builder.set_block(head)
        match_index = builder.phi(i64, f"match{probe.join_id}")
        match_index.add_incoming(Constant(i64, 0), preheader)
        has_more = builder.cmp("lt", match_index, match_count)
        builder.condbr(has_more, body,
                       exhausted if probe.outer else done_label)

        builder.set_block(body)

        # Extend column resolution with the probe payload (no caching, for
        # the same dominance reason as the source resolver).
        getters: dict[str, ExternFunction] = {}
        for position, column in enumerate(probe.payload_columns):
            getter_impl = QueryRuntime.make_match_getter(position)
            getters[column.column] = ExternFunction(
                f"rt_match_get_{probe.join_id}_{position}",
                [ptr, i64], ir_type_of(column.result_type),
                getter_impl, has_side_effects=False)
        payload_columns = {column.column for column in probe.payload_columns}
        parent_resolver = resolver_stack[-1]

        def resolve(column: ColumnExpr) -> Value:
            if column.binding == probe.build_binding \
                    and column.column in payload_columns:
                return builder.call(getters[column.column],
                                    [matches, match_index])
            return parent_resolver(column)

        inner_compiler = ExpressionCompiler(builder, compiler.error_block,
                                            resolve, self._extern_cache,
                                            params=self.state.params)

        # Residual predicates of this join, then the rest of the chain; a
        # failing residual moves on to the next match (the inner latch).
        def continue_chain():
            self._emit_operators(builder, inner_compiler, pipeline,
                                 op_index + 1, latch, row,
                                 resolver_stack + [resolve])

        if probe.residual:
            residual_value = None
            for predicate in probe.residual:
                value = inner_compiler.compile(predicate)
                residual_value = (value if residual_value is None
                                  else builder.and_(residual_value, value))
            passed = builder.new_block(f"probe{probe.join_id}.residual")
            builder.condbr(residual_value, passed, latch)
            builder.set_block(passed)
            if flag_cell is not None:
                flag_set = self._cached_extern(
                    ("flag_set",), "rt_flag_set", [ptr], void,
                    QueryRuntime.flag_set)
                builder.call(flag_set, [flag_cell])
        continue_chain()

        builder.set_block(latch)
        next_index = builder.add(match_index, builder.const_i64(1))
        match_index.add_incoming(next_index, latch)
        builder.br(head)

        if probe.outer:
            # The match loop is exhausted: if no match survived, emit the
            # probe row once with every build payload column NULL-padded.
            builder.set_block(exhausted)
            if flag_cell is not None:
                flag_get = self._cached_extern(
                    ("flag_get",), "rt_flag_get", [ptr], i1,
                    QueryRuntime.flag_get)
                matched = builder.call(flag_get, [flag_cell],
                                       f"any_match{probe.join_id}")
            else:
                matched = builder.cmp("gt", match_count, Constant(i64, 0),
                                      f"any_match{probe.join_id}")
            unmatched = builder.new_block(f"probe{probe.join_id}.unmatched")
            builder.condbr(matched, done_label, unmatched)
            builder.set_block(unmatched)

            def resolve_null(column: ColumnExpr) -> Value:
                if column.binding == probe.build_binding \
                        and column.column in payload_columns:
                    return builder.call(
                        self._null_extern(column.result_type), [])
                return parent_resolver(column)

            null_compiler = ExpressionCompiler(builder, compiler.error_block,
                                               resolve_null,
                                               self._extern_cache,
                                               params=self.state.params)
            self._emit_operators(builder, null_compiler, pipeline,
                                 op_index + 1, done_label, row,
                                 resolver_stack + [resolve_null])
            return

        # Continue emitting after the loop is not needed: every downstream
        # path ends at ``done_label`` via the loop exit edge above.

    # ------------------------------------------------------------------ #
    # sinks
    # ------------------------------------------------------------------ #
    def _emit_sink(self, builder: IRBuilder, compiler: ExpressionCompiler,
                   pipeline: Pipeline) -> None:
        sink = pipeline.sink
        # The worker function's ``state`` argument carries the per-worker
        # breaker context (a WorkerContext, or None on the single-table
        # fallback path); every sink call forwards it so partial state stays
        # slot-local no matter which tier executes the call.
        context_arg = builder.function.args[0]

        if isinstance(sink, HashBuildSink):
            key_values = [compiler.compile(key) for key in sink.build_keys]
            payload_values = [compiler.compile(column)
                              for column in sink.payload_columns]
            insert_impl = self.runtime.make_build_insert(
                sink.join_id, len(sink.build_keys), len(sink.payload_columns))
            arg_types = ([ptr]
                         + [ir_type_of(k.result_type) for k in sink.build_keys]
                         + [ir_type_of(c.result_type)
                            for c in sink.payload_columns])
            insert_extern = ExternFunction(insert_impl.__name__, arg_types,
                                           void, insert_impl)
            builder.call(insert_extern,
                         [context_arg] + key_values + payload_values)
            return

        if isinstance(sink, AggregateSink):
            group_values = [compiler.compile(expr) for expr in sink.group_by]
            argument_values = []
            argument_types = []
            for spec in sink.aggregates:
                if spec.argument is None:
                    continue
                argument_values.append(compiler.compile(spec.argument))
                argument_types.append(ir_type_of(spec.argument.result_type))
            update_impl = self.runtime.make_agg_update(sink)
            arg_types = ([ptr] + [ir_type_of(expr.result_type)
                                  for expr in sink.group_by] + argument_types)
            update_extern = ExternFunction(update_impl.__name__, arg_types,
                                           void, update_impl)
            builder.call(update_extern,
                         [context_arg] + group_values + argument_values)
            return

        if isinstance(sink, OutputSink):
            values = [compiler.compile(expr) for _, expr in sink.output]
            types = [ir_type_of(expr.result_type) for _, expr in sink.output]
            # Sort keys ride along at the end of each emitted row so the
            # finish step can order rows without re-evaluating expressions.
            for expr, _ in sink.order_by:
                values.append(compiler.compile(expr))
                types.append(ir_type_of(expr.result_type))
            emit_impl = self.runtime.make_emit(sink)
            emit_extern = ExternFunction(emit_impl.__name__, [ptr] + types,
                                         void, emit_impl)
            builder.call(emit_extern, [context_arg] + values)
            return

        raise CodegenError(f"unknown sink {type(sink).__name__}")

    # ------------------------------------------------------------------ #
    def _finish_step(self, pipeline: Pipeline) -> Optional[Callable[[], None]]:
        sink = pipeline.sink
        if isinstance(sink, AggregateSink):
            runtime = self.runtime

            def finish():
                runtime.finalize_aggregate(sink)
            return finish
        return None

    def _null_extern(self, sql_type: SQLType) -> ExternFunction:
        """A pure extern producing the typed NULL of one payload column.

        The IR stays statically typed (one extern per IR type); at runtime
        every tier passes the Python ``None`` through unchanged.
        """
        ir_type = ir_type_of(sql_type)
        return self._cached_extern(("null", ir_type), f"rt_null_{ir_type}",
                                   [], ir_type, QueryRuntime.null_value,
                                   pure=True)

    def _cached_extern(self, key: tuple, name: str, arg_types, return_type,
                       impl, pure: bool = False) -> ExternFunction:
        extern = self._extern_cache.get(key)
        if extern is None:
            extern = ExternFunction(name, arg_types, return_type, impl,
                                    has_side_effects=not pure)
            self._extern_cache[key] = extern
        return extern
