"""Data-centric code generation: pipeline plans -> IR worker functions."""

from .runtime import QueryState, QueryRuntime
from .generator import CodeGenerator, GeneratedQuery, GeneratedPipeline

__all__ = [
    "QueryState", "QueryRuntime",
    "CodeGenerator", "GeneratedQuery", "GeneratedPipeline",
]
