"""Compilation of typed SQL expressions into IR."""

from __future__ import annotations

from typing import Callable, Optional

from ..errors import CodegenError
from ..ir.builder import IRBuilder
from ..ir.function import ExternFunction
from ..ir.types import IRType, f64, i1, i64, ptr, void
from ..ir.values import Constant, Value
from ..semantics.expressions import (
    AggregateExpr,
    ArithmeticExpr,
    BetweenExpr,
    CaseExpr,
    CastExpr,
    ColumnExpr,
    ComparisonExpr,
    ExtractExpr,
    InListExpr,
    LikeExpr,
    LiteralExpr,
    LogicalExpr,
    NotExpr,
    ParameterExpr,
    TypedExpression,
    like_to_predicate,
)
from ..types import SQLType
from .runtime import QueryRuntime

#: SQL type -> IR type for values flowing through generated code.
def ir_type_of(sql_type: SQLType) -> IRType:
    if sql_type is SQLType.FLOAT64:
        return f64
    if sql_type is SQLType.STRING:
        return ptr
    if sql_type is SQLType.BOOL:
        return i1
    return i64


_COMPARE_PREDICATE = {"=": "eq", "<>": "ne", "<": "lt", "<=": "le",
                      ">": "gt", ">=": "ge"}


class ExpressionCompiler:
    """Emits IR for typed expressions within one worker function.

    ``column_resolver`` maps a :class:`ColumnExpr` to an IR value for the
    current row (a column load for the pipeline source, a payload getter call
    for probed hash tables).  The compiler caches nothing itself; callers may
    cache resolved columns per row because generated control flow always
    nests downstream operators inside blocks dominated by earlier ones.
    """

    def __init__(self, builder: IRBuilder, error_block,
                 column_resolver: Callable[[ColumnExpr], Value],
                 extern_cache: dict,
                 params: Optional[list] = None):
        self.builder = builder
        self.error_block = error_block
        self.column_resolver = column_resolver
        self._externs = extern_cache
        #: The query state's parameter-value list (referenced by identity:
        #: parameter loads close over it, executions rebind it in place).
        self.params = params

    # ------------------------------------------------------------------ #
    def compile(self, expr: TypedExpression) -> Value:
        b = self.builder

        if isinstance(expr, LiteralExpr):
            return self._literal(expr)
        if isinstance(expr, ParameterExpr):
            return self._parameter(expr)
        if isinstance(expr, ColumnExpr):
            return self.column_resolver(expr)
        if isinstance(expr, CastExpr):
            value = self.compile(expr.operand)
            if expr.result_type is SQLType.FLOAT64 and value.type is i64:
                return b.sitofp(value)
            if expr.result_type in (SQLType.INT64, SQLType.DATE) \
                    and value.type is f64:
                return b.fptosi(value)
            return value
        if isinstance(expr, ArithmeticExpr):
            return self._arithmetic(expr)
        if isinstance(expr, ComparisonExpr):
            left = self.compile(expr.left)
            right = self.compile(expr.right)
            left, right = self._unify(left, right)
            return b.cmp(_COMPARE_PREDICATE[expr.operator], left, right)
        if isinstance(expr, LogicalExpr):
            values = [self.compile(op) for op in expr.operands]
            result = values[0]
            for value in values[1:]:
                result = (b.and_(result, value) if expr.operator == "and"
                          else b.or_(result, value))
            return result
        if isinstance(expr, NotExpr):
            value = self.compile(expr.operand)
            return b.binary("xor", value, Constant(i1, 1))
        if isinstance(expr, BetweenExpr):
            value = self.compile(expr.expr)
            low = self.compile(expr.low)
            high = self.compile(expr.high)
            value_low, low = self._unify(value, low)
            value_high, high = self._unify(value, high)
            lower = b.cmp("ge", value_low, low)
            upper = b.cmp("le", value_high, high)
            result = b.and_(lower, upper)
            if expr.negated:
                result = b.binary("xor", result, Constant(i1, 1))
            return result
        if isinstance(expr, InListExpr):
            value = self.compile(expr.expr)
            result: Optional[Value] = None
            for candidate in expr.values:
                candidate_value = self.compile(candidate)
                left, right = self._unify(value, candidate_value)
                equal = b.cmp("eq", left, right)
                result = equal if result is None else b.or_(result, equal)
            if result is None:
                result = Constant(i1, 0)
            if expr.negated:
                result = b.binary("xor", result, Constant(i1, 1))
            return result
        if isinstance(expr, LikeExpr):
            value = self.compile(expr.expr)
            extern = self._like_extern(expr.pattern)
            result = b.call(extern, [value])
            if expr.negated:
                result = b.binary("xor", result, Constant(i1, 1))
            return result
        if isinstance(expr, CaseExpr):
            return self._case(expr)
        if isinstance(expr, ExtractExpr):
            value = self.compile(expr.operand)
            extern = self._extract_extern(expr.field_name)
            return b.call(extern, [value])
        if isinstance(expr, AggregateExpr):
            raise CodegenError(
                "aggregate expressions must be rewritten before code "
                "generation (planner bug)")
        raise CodegenError(
            f"cannot generate code for expression {type(expr).__name__}")

    # ------------------------------------------------------------------ #
    def _literal(self, expr: LiteralExpr) -> Constant:
        if expr.result_type is SQLType.FLOAT64:
            return Constant(f64, float(expr.value))
        if expr.result_type is SQLType.STRING:
            return Constant(ptr, expr.value)
        if expr.result_type is SQLType.BOOL:
            return Constant(i1, 1 if expr.value else 0)
        return Constant(i64, int(expr.value))

    def _parameter(self, expr: ParameterExpr) -> Value:
        """A runtime load of one bind-parameter slot.

        Emitted as a call to a pure, argument-less extern that reads the
        query state's params list; the literal value is therefore *not*
        baked into the IR, so one generated module (and every bytecode /
        compiled tier derived from it) serves all bindings of the query
        shape.  Being side-effect free, repeated loads of one slot CSE away
        in the optimized tier.
        """
        if self.params is None:
            raise CodegenError(
                f"parameter {expr.index} has no parameter storage; the "
                f"compiler was built without a query state params list")
        key = ("param", expr.index)
        extern = self._externs.get(key)
        if extern is None:
            def param_load(_values=self.params, _index=expr.index):
                return _values[_index]

            param_load.__name__ = f"rt_param_{expr.index}"
            extern = ExternFunction(param_load.__name__, [],
                                    ir_type_of(expr.result_type), param_load,
                                    has_side_effects=False)
            self._externs[key] = extern
        return self.builder.call(extern, [])

    def _arithmetic(self, expr: ArithmeticExpr) -> Value:
        b = self.builder
        left = self.compile(expr.left)
        right = self.compile(expr.right)
        left, right = self._unify(left, right)
        operator = expr.operator
        if left.type is f64:
            opcode = {"+": "fadd", "-": "fsub", "*": "fmul",
                      "/": "fdiv", "%": None}.get(operator)
            if opcode is None:
                raise CodegenError("modulo on floating point is unsupported")
            return b.binary(opcode, left, right)
        # Integer arithmetic is overflow-checked, mirroring the paper's
        # generated code (Section IV-F).
        if operator == "+":
            return b.checked_add(left, right, self.error_block)
        if operator == "-":
            return b.checked_sub(left, right, self.error_block)
        if operator == "*":
            return b.checked_mul(left, right, self.error_block)
        if operator == "/":
            return b.binary("sdiv", left, right)
        if operator == "%":
            return b.binary("srem", left, right)
        raise CodegenError(f"unknown arithmetic operator {operator!r}")

    def _unify(self, left: Value, right: Value) -> tuple[Value, Value]:
        """Insert int->float conversions when operand IR types differ."""
        if left.type is right.type:
            return left, right
        b = self.builder
        if left.type is f64 and right.type is i64:
            return left, b.sitofp(right)
        if left.type is i64 and right.type is f64:
            return b.sitofp(left), right
        if left.type is i1 and right.type is i64:
            return b.zext(left, i64), right
        if left.type is i64 and right.type is i1:
            return left, b.zext(right, i64)
        raise CodegenError(
            f"cannot unify operand types {left.type} and {right.type}")

    def _case(self, expr: CaseExpr) -> Value:
        b = self.builder
        result_type = ir_type_of(expr.result_type)
        merge = b.new_block("case.merge")
        incoming: list[tuple[Value, object]] = []

        for condition, value in expr.branches:
            cond_value = self.compile(condition)
            then_block = b.new_block("case.then")
            else_block = b.new_block("case.else")
            b.condbr(cond_value, then_block, else_block)
            b.set_block(then_block)
            branch_value = self.compile(value)
            incoming.append((branch_value, b.block))
            b.br(merge)
            b.set_block(else_block)

        default_value = (self.compile(expr.default)
                         if expr.default is not None
                         else Constant(result_type, 0))
        incoming.append((default_value, b.block))
        b.br(merge)

        b.set_block(merge)
        phi = b.phi(result_type, "case.result")
        for value, block in incoming:
            phi.add_incoming(value, block)
        return phi

    # ------------------------------------------------------------------ #
    # externs
    # ------------------------------------------------------------------ #
    def _like_extern(self, pattern: str) -> ExternFunction:
        key = ("like", pattern)
        extern = self._externs.get(key)
        if extern is None:
            predicate = like_to_predicate(pattern)

            def like_impl(value, _predicate=predicate):
                return 1 if _predicate(value) else 0

            like_impl.__name__ = f"rt_like_{len(self._externs)}"
            extern = ExternFunction(like_impl.__name__, [ptr], i1, like_impl,
                                    has_side_effects=False)
            self._externs[key] = extern
        return extern

    def _extract_extern(self, field_name: str) -> ExternFunction:
        key = ("extract", field_name)
        extern = self._externs.get(key)
        if extern is None:
            impl = QueryRuntime.date_extract(field_name)
            extern = ExternFunction(f"rt_extract_{field_name}", [i64], i64,
                                    impl, has_side_effects=False)
            self._externs[key] = extern
        return extern
