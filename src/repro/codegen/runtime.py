"""Query runtime: the "C++ side" of the generated code.

Generated worker functions call into a small set of runtime functions -- hash
table inserts and probes, aggregate updates, result emission, string
predicates and date field extraction.  These are the Python equivalents of
the pre-compiled C++ runtime HyPer links against; they are deliberately kept
small so the per-tuple work stays in generated code where the execution tiers
differ.

All runtime state of one query execution lives in a :class:`QueryState`.
Worker functions never allocate shared state themselves, which is what makes
morsels independent and execution-mode switches safe (paper Section III-B).

Pipeline breakers (join builds, aggregations, result collection) are
**partition-parallel**: every worker slot accumulates into its own
:class:`WorkerContext` -- hash-partitioned partial dictionaries and a local
output buffer -- so the per-tuple hot path acquires no shared lock at all.
When a pipeline's morsels are done, a merge phase folds the partials into
the state's *sealed* partition tables (one independent task per partition,
runnable on the shared worker pool), and downstream probe / intermediate-scan
pipelines read the sealed partitions without synchronisation.  The worker
context travels through the generated code as the worker function's ``state``
argument, so every tier -- IR interpreter, bytecode VM and both compiled
tiers -- threads it through unchanged, and a mid-pipeline tier switch simply
keeps appending to the same slot-local partials.

The escape hatch (``ExecOptions.use_partitioned_breakers=False``) restores
the historical single-table path: workers receive ``None`` as their context
and write straight into the sealed tables (aggregate read-modify-writes are
then guarded by one counted fallback lock).
"""

from __future__ import annotations

import heapq
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from ..errors import ExecutionError
from ..plan.physical import (
    AggregateSink,
    AggregateSpec,
    HashBuildSink,
    OutputSink,
    Pipeline,
    PhysicalPlan,
    IntermediateSource,
    TableSource,
)
from ..types import SQLType, days_to_date


def round_up_pow2(value: int) -> int:
    """The smallest power of two >= ``value`` (at least 1)."""
    result = 1
    while result < max(int(value), 1):
        result <<= 1
    return result


def initial_cells(specs: Sequence[AggregateSpec]) -> list:
    """Fresh accumulator cells for one group (AVG uses a [sum, count] pair)."""
    cells = []
    for spec in specs:
        if spec.function == "count":
            cells.append(0)
        elif spec.function == "avg":
            cells.append([0.0, 0])
        elif spec.function in ("min", "max"):
            cells.append(None)
        else:  # sum
            cells.append(0 if spec.result_type is SQLType.INT64 else 0.0)
    return cells


def combine_cells(specs: Sequence[AggregateSpec], target: list,
                  other: list) -> None:
    """Fold one partial's accumulator cells into another (merge phase)."""
    for index, spec in enumerate(specs):
        value = other[index]
        if spec.function in ("count", "sum"):
            target[index] += value
        elif spec.function == "avg":
            pair = target[index]
            pair[0] += value[0]
            pair[1] += value[1]
        elif spec.function == "min":
            current = target[index]
            if current is None or (value is not None and value < current):
                target[index] = value
        else:  # max
            current = target[index]
            if current is None or (value is not None and value > current):
                target[index] = value


def merge_join_partition(target: dict, partials: Sequence[dict]) -> None:
    """Merge one partition's per-worker join partials into ``target``.

    Bucket lists of the first contributor are adopted by identity (the
    partials are discarded after the merge), later contributors extend.
    """
    for partial in partials:
        for key, bucket in partial.items():
            existing = target.get(key)
            if existing is None:
                target[key] = bucket
            else:
                existing.extend(bucket)


def merge_agg_partition(specs: Sequence[AggregateSpec], target: dict,
                        partials: Sequence[dict]) -> None:
    """Merge one partition's per-worker aggregation partials into ``target``."""
    for partial in partials:
        for key, cells in partial.items():
            existing = target.get(key)
            if existing is None:
                target[key] = cells
            else:
                combine_cells(specs, existing, cells)


class WorkerContext:
    """One worker slot's partial breaker state for one pipeline run.

    Slots are exclusive (at most one in-flight morsel per slot, see
    :class:`repro.scheduler.MorselSource`), so nothing here is locked.  The
    context is handed to the generated worker function as its ``state``
    argument and survives execution-mode switches: the partials belong to
    the slot, not to the tier that filled them.
    """

    __slots__ = ("joins", "aggs", "rows", "topk")

    def __init__(self):
        #: join_id -> list of partition dicts (key -> list of payloads)
        self.joins: dict[int, list[dict]] = {}
        #: agg_id -> list of partition dicts (key -> accumulator cells)
        self.aggs: dict[int, list[dict]] = {}
        #: slot-local output rows
        self.rows: list[tuple] = []
        #: slot-local bounded top-k heap (:class:`_TopKEntry` min-heap whose
        #: root is the worst kept row); used instead of ``rows`` when the
        #: output sink runs as a top-k breaker
        self.topk: list = []


@dataclass
class BreakerMergeStats:
    """Per-pipeline metrics of one partial-merge phase.

    ``partitions`` is the hash-partition count of the pipeline's breaker --
    0 for output pipelines (their partials are unpartitioned row buffers)
    and on the single-table fallback path (no partials exist at all).
    """

    partitions: int = 0
    #: Total entries across all worker partials before the merge (groups /
    #: distinct join keys per partial, output rows for output pipelines).
    partial_entries: int = 0
    merge_seconds: float = 0.0


class QueryState:
    """All mutable state of one query execution."""

    def __init__(self, plan: PhysicalPlan):
        self.plan = plan
        #: join_id -> sealed partition tables (list of key -> payload-list
        #: dicts).  The *list* identity is stable for the lifetime of the
        #: state -- generated probe code captures it -- while the partition
        #: dicts inside are rebuilt by :meth:`configure_breakers`.
        self.join_partitions: dict[int, list[dict]] = {}
        #: agg_id -> sealed partition tables (list of key -> cells dicts)
        self.agg_partitions: dict[int, list[dict]] = {}
        #: agg_id -> materialised intermediate columns (lists, pre-created so
        #: that generated code can hold stable pointers to them)
        self.intermediate_columns: dict[int, list[list]] = {}
        #: agg_id -> row count of the materialised intermediate
        self.intermediate_rows: dict[int, int] = {}
        #: collected output rows (tuples)
        self.output_rows: list[tuple] = []
        #: Bind-parameter values of the current execution, one (encoded)
        #: value per slot of ``plan.parameters``.  Generated code references
        #: this list *by identity* (parameter-slot loads are extern closures
        #: over it), so it is updated in place via :meth:`set_params` and
        #: deliberately survives :meth:`reset`.
        self.params: list = [None] * len(getattr(plan, "parameters", ()))
        #: Whether workers accumulate into per-slot partials (the default)
        #: or write the sealed tables directly (the single-table fallback).
        self.use_partitioned = True
        self._partition_count = 1
        #: Single lock guarding aggregate read-modify-writes on the fallback
        #: path only; the partitioned hot path never touches it.
        self._fallback_lock = threading.Lock()
        #: Number of fallback-lock acquisitions of the current execution
        #: (always 0 for partitioned executions -- asserted by the
        #: pipeline-breaker benchmark).
        self.lock_acquisitions = 0
        #: Top-k breaker configuration of the current execution (set by
        #: :meth:`configure_output` after the LIMIT is resolved against the
        #: bound parameters): ``topk_k`` is the resolved k when the output
        #: sink runs as a bounded-heap breaker, else ``None`` (plain row
        #: collection).  ``topk_key_fn`` maps an emitted row to its total
        #: ordering key; ``topk_entries`` collects the merged (or, on the
        #: fallback path, directly maintained) heap entries.
        self.topk_k: Optional[int] = None
        self.topk_key_fn: Optional[Callable] = None
        self.topk_entries: list = []
        #: LIMIT-without-ORDER-BY early termination: ``early_limit`` is the
        #: resolved row quota, ``rows_emitted`` a racy-but-monotone counter
        #: the executors poll between morsels (correctness comes from the
        #: final slice, the counter only stops dispatch early), and
        #: ``early_terminated`` records that the quota cancelled dispatch.
        self.early_limit: Optional[int] = None
        self.rows_emitted = 0
        self.early_terminated = False
        #: True while EXPLAIN ANALYZE wants sink-side cardinalities that are
        #: not O(1) to read (join build tables); plain executions skip them.
        self.collect_operator_stats = False

        for pipeline in plan.pipelines:
            sink = pipeline.sink
            if isinstance(sink, HashBuildSink):
                self.join_partitions[sink.join_id] = [{}]
            elif isinstance(sink, AggregateSink):
                self.agg_partitions[sink.agg_id] = [{}]
                self.intermediate_columns[sink.agg_id] = [
                    [] for _ in sink.intermediate.columns]
                self.intermediate_rows[sink.agg_id] = 0

    # ------------------------------------------------------------------ #
    @property
    def partition_count(self) -> int:
        """Current number of breaker partitions (a power of two)."""
        return self._partition_count

    def configure_breakers(self, partitions: Optional[int] = None,
                           use_partitioned: bool = True) -> None:
        """Set this execution's breaker layout (before any pipeline runs).

        ``partitions`` is rounded up to a power of two (the partition index
        is ``hash(key) & (count - 1)``).  ``use_partitioned=False`` selects
        the single-table fallback, which forces one partition.  The sealed
        partition *lists* keep their identity (generated code captured
        them); only their contents are replaced.
        """
        count = 1 if not use_partitioned else round_up_pow2(partitions or 1)
        self.use_partitioned = use_partitioned
        self.lock_acquisitions = 0
        if count != self._partition_count:
            self._partition_count = count
            for parts in self.join_partitions.values():
                parts[:] = [{} for _ in range(count)]
            for parts in self.agg_partitions.values():
                parts[:] = [{} for _ in range(count)]

    def configure_output(self, sink: OutputSink, use_topk: bool = True
                         ) -> None:
        """Choose this execution's output-sink strategy (after parameters).

        Must run after :meth:`set_params` -- a ``LIMIT ?`` resolves against
        the bound values.  ORDER BY + LIMIT becomes a top-k breaker (bounded
        per-slot heaps, unless ``use_topk`` is off); LIMIT alone arms the
        early-termination quota.  DISTINCT disables both (deduplication
        needs every row).
        """
        limit = resolve_limit(sink.limit, self.params)
        if limit is None or sink.distinct:
            return
        if sink.order_by:
            if use_topk:
                self.topk_k = limit
                self.topk_key_fn = make_sort_key_fn(sink)
        else:
            self.early_limit = limit

    def limit_satisfied(self) -> bool:
        """True once the early-termination quota is met (if armed)."""
        return (self.early_limit is not None
                and self.rows_emitted >= self.early_limit)

    def new_context(self, pipeline: Pipeline) -> WorkerContext:
        """A fresh worker context with partials for ``pipeline``'s sink."""
        context = WorkerContext()
        sink = pipeline.sink
        count = self._partition_count
        if isinstance(sink, HashBuildSink):
            context.joins[sink.join_id] = [{} for _ in range(count)]
        elif isinstance(sink, AggregateSink):
            context.aggs[sink.agg_id] = [{} for _ in range(count)]
        return context

    # ------------------------------------------------------------------ #
    def reset(self) -> None:
        """Clear all per-execution state in place for a fresh execution.

        Generated code and the runtime closures hold direct references to
        these containers (the sealed partition lists, intermediate column
        lists, the output row list), so the containers are cleared rather
        than replaced: object identity must survive a reset for a
        cached/prepared query to stay executable.
        """
        for parts in self.join_partitions.values():
            for table in parts:
                table.clear()
        for parts in self.agg_partitions.values():
            for table in parts:
                table.clear()
        for columns in self.intermediate_columns.values():
            for column in columns:
                column.clear()
        for agg_id in self.intermediate_rows:
            self.intermediate_rows[agg_id] = 0
        self.output_rows.clear()
        self.topk_k = None
        self.topk_key_fn = None
        self.topk_entries.clear()
        self.early_limit = None
        self.rows_emitted = 0
        self.early_terminated = False

    def set_params(self, values: list) -> None:
        """Install one execution's bind-parameter values (in place)."""
        if len(values) != len(self.params):
            raise ExecutionError(
                f"query state expects {len(self.params)} parameter "
                f"value(s), got {len(values)}")
        self.params[:] = values

    # ------------------------------------------------------------------ #
    def source_row_count(self, pipeline: Pipeline) -> int:
        """Number of input rows of a pipeline (known once its inputs exist)."""
        source = pipeline.source
        if isinstance(source, TableSource):
            return source.table.num_rows
        sink_agg_id = _agg_id_of_intermediate(self.plan, source)
        return self.intermediate_rows[sink_agg_id]


def _agg_id_of_intermediate(plan: PhysicalPlan,
                            source: IntermediateSource) -> int:
    for pipeline in plan.pipelines:
        sink = pipeline.sink
        if isinstance(sink, AggregateSink) and sink.intermediate is source:
            return sink.agg_id
    raise ExecutionError(
        f"intermediate source {source.name!r} has no producing pipeline")


# --------------------------------------------------------------------------- #
# per-pipeline breaker lifecycle (used by every executor)
# --------------------------------------------------------------------------- #
class BreakerRun:
    """Carries one pipeline run's per-slot worker contexts.

    Executors call :meth:`context` with the dense worker-slot id of each
    morsel (slots are exclusive, so the lazy creation is race-free) and
    :meth:`merge` once after the last morsel.  With the partitioned path
    disabled every slot gets ``None`` and the merge is a no-op -- workers
    wrote the sealed tables directly.
    """

    def __init__(self, state: QueryState, pipeline: Pipeline,
                 max_slots: int):
        self.state = state
        self.pipeline = pipeline
        self.contexts: list[Optional[WorkerContext]] = \
            [None] * max(int(max_slots), 1)

    def context(self, slot: int) -> Optional[WorkerContext]:
        if not self.state.use_partitioned:
            return None
        context = self.contexts[slot]
        if context is None:
            context = self.state.new_context(self.pipeline)
            self.contexts[slot] = context
        return context

    def merge(self, run_tasks: Optional[Callable[[list], None]] = None
              ) -> BreakerMergeStats:
        return merge_breaker_partials(self.state, self.pipeline,
                                      self.contexts, run_tasks)


def merge_breaker_partials(state: QueryState, pipeline: Pipeline,
                           contexts: Sequence[Optional[WorkerContext]],
                           run_tasks: Optional[Callable[[list], None]] = None
                           ) -> BreakerMergeStats:
    """Merge per-worker partials into the state's sealed partition tables.

    ``run_tasks`` executes the per-partition merge thunks (each touches
    exactly one partition, so they are mutually independent); ``None`` runs
    them serially on the calling thread.  Output pipelines concatenate the
    slot-local row buffers in slot order on the calling thread (order is
    the workers' morsel interleaving either way).
    """
    stats = BreakerMergeStats()
    live = [context for context in contexts if context is not None]
    sink = pipeline.sink
    if state.use_partitioned and isinstance(sink,
                                            (HashBuildSink, AggregateSink)):
        stats.partitions = state.partition_count
    start = time.perf_counter()

    if isinstance(sink, OutputSink):
        if state.topk_k is not None:
            # Top-k breaker: concatenate the bounded slot heaps; the finish
            # step sorts the (at most slots * k) entries and slices k.
            for context in live:
                stats.partial_entries += len(context.topk)
                state.topk_entries.extend(context.topk)
                context.topk = []
        else:
            for context in live:
                stats.partial_entries += len(context.rows)
                state.output_rows.extend(context.rows)
                context.rows = []
    elif isinstance(sink, HashBuildSink) and live:
        partials = [context.joins[sink.join_id] for context in live]
        stats.partial_entries = sum(len(part) for parts in partials
                                    for part in parts)
        targets = state.join_partitions[sink.join_id]
        tasks = [
            (lambda p=p: merge_join_partition(
                targets[p], [parts[p] for parts in partials]))
            for p in range(len(targets))]
        if run_tasks is None:
            for task in tasks:
                task()
        else:
            run_tasks(tasks)
    elif isinstance(sink, AggregateSink) and live:
        partials = [context.aggs[sink.agg_id] for context in live]
        stats.partial_entries = sum(len(part) for parts in partials
                                    for part in parts)
        targets = state.agg_partitions[sink.agg_id]
        specs = list(sink.aggregates)
        tasks = [
            (lambda p=p: merge_agg_partition(
                specs, targets[p], [parts[p] for parts in partials]))
            for p in range(len(targets))]
        if run_tasks is None:
            for task in tasks:
                task()
        else:
            run_tasks(tasks)

    stats.merge_seconds = time.perf_counter() - start
    return stats


def group_sort_key(key):
    """Deterministic ordering key for GROUP BY keys (scalar or tuple)."""
    return key


# --------------------------------------------------------------------------- #
# ordered output: canonical sort keys, top-k heap entries, limit resolution
# --------------------------------------------------------------------------- #
def _canonical_cell(value):
    """A totally ordered stand-in for one sort-cell value.

    Ranks make NULL and NaN comparable to everything: normal values first,
    then NaN, then NULL (for an ascending key).  Within rank 0 the column's
    own values compare; a column never mixes value types.
    """
    if value is None:
        return (2, 0)
    if value != value:  # NaN
        return (1, 0)
    return (0, value)


class _Desc:
    """Inverts the ordering of one canonical cell (descending sort keys)."""

    __slots__ = ("cell",)

    def __init__(self, cell):
        self.cell = cell

    def __lt__(self, other):
        return other.cell < self.cell

    def __eq__(self, other):
        return other.cell == self.cell


def make_sort_key_fn(sink: OutputSink) -> Callable[[tuple], tuple]:
    """Total-order sort key for one emitted row of ``sink``.

    The ORDER BY cells (appended after the visible columns by the code
    generator) come first; the canonicalised visible columns follow as a
    tiebreak, so the output order is fully determined by row *values* --
    identical across execution modes, worker counts and partition counts
    even for duplicate sort keys -- and top-k results match sort-then-slice
    exactly.
    """
    num_visible = len(sink.output)
    directions = [ascending for _, ascending in sink.order_by]

    def key_fn(row):
        cells = []
        for offset, ascending in enumerate(directions):
            cell = _canonical_cell(row[num_visible + offset])
            cells.append(cell if ascending else _Desc(cell))
        for index in range(num_visible):
            cells.append(_canonical_cell(row[index]))
        return tuple(cells)

    return key_fn


class _TopKEntry:
    """One kept row in a bounded top-k heap.

    The comparison is *inverted* so that :mod:`heapq`'s min-heap root is the
    worst kept row (the one that sorts last), which is the row a better
    candidate must displace.
    """

    __slots__ = ("key", "row")

    def __init__(self, key, row):
        self.key = key
        self.row = row

    def __lt__(self, other):
        return other.key < self.key


def resolve_limit(limit, params: Sequence) -> Optional[int]:
    """Resolve a sink's LIMIT (``None``, int, or ParameterExpr) to an int."""
    if limit is None or isinstance(limit, int):
        return limit
    index = getattr(limit, "index", None)
    if index is None:  # pragma: no cover - planner invariant
        raise ExecutionError(f"unsupported LIMIT value {limit!r}")
    value = params[index]
    if isinstance(value, bool) or not isinstance(value, int):
        raise ExecutionError(
            f"LIMIT parameter must be an integer, got {value!r}")
    if value < 0:
        raise ExecutionError(f"LIMIT must not be negative, got {value}")
    return value


# --------------------------------------------------------------------------- #
# runtime function factories (captured by generated code as extern bindings)
# --------------------------------------------------------------------------- #
class QueryRuntime:
    """Builds the runtime closures for one query execution."""

    def __init__(self, state: QueryState):
        self.state = state

    # ---- hash joins ----------------------------------------------------- #
    def make_build_insert(self, join_id: int, num_keys: int,
                          num_payload: int) -> Callable:
        """Closure inserting (key, payload) into the join partials.

        ``ctx`` is the worker's :class:`WorkerContext` (partitioned path) or
        ``None`` (single-table fallback: insert straight into the sealed
        partitions -- ``dict.setdefault`` / ``list.append`` are atomic under
        the GIL, which is all the old shared-dict path relied on).
        """
        sealed = self.state.join_partitions[join_id]

        def insert_key(ctx, key, payload):
            parts = sealed if ctx is None else ctx.joins[join_id]
            part = parts[hash(key) & (len(parts) - 1)]
            bucket = part.get(key)
            if bucket is None:
                bucket = part.setdefault(key, [])
            bucket.append(payload)

        if num_keys == 1:
            def insert(ctx, key, *payload):
                insert_key(ctx, key, payload)
        else:
            def insert(ctx, *values):
                insert_key(ctx, values[:num_keys], values[num_keys:])
        insert.__name__ = f"rt_build_insert_{join_id}"
        return insert

    def make_probe(self, join_id: int, num_keys: int) -> Callable:
        """Closure returning the list of matching payload tuples (or []).

        Reads the sealed partition tables; probe pipelines only run after
        the build pipeline's merge phase, so no synchronisation is needed.
        """
        parts = self.state.join_partitions[join_id]
        empty: list = []

        if num_keys == 1:
            def probe(key):
                return parts[hash(key) & (len(parts) - 1)].get(key, empty)
        else:
            def probe(*key):
                return parts[hash(key) & (len(parts) - 1)].get(key, empty)
        probe.__name__ = f"rt_probe_{join_id}"
        return probe

    @staticmethod
    def match_count(matches) -> int:
        return len(matches)

    # ---- outer-join probe support ---------------------------------------- #
    # A LEFT OUTER JOIN probe with residual predicates needs to know, after
    # the match loop, whether *any* match passed the residuals.  The flag
    # lives in a tiny fresh cell per probe row (phi-based tracking is not
    # possible: the downstream operator chain jumps back to the loop latch
    # from arbitrary blocks).  All three helpers are side-effecting so no
    # tier caches, hoists or reorders them.
    @staticmethod
    def flag_new() -> list:
        return [0]

    @staticmethod
    def flag_set(cell) -> None:
        cell[0] = 1

    @staticmethod
    def flag_get(cell) -> bool:
        return cell[0] != 0

    @staticmethod
    def null_value():
        """The NULL payload of an unmatched preserved row (any type)."""
        return None

    @staticmethod
    def make_match_getter(column_index: int) -> Callable:
        def get(matches, row):
            return matches[row][column_index]
        get.__name__ = f"rt_match_get_{column_index}"
        return get

    # ---- aggregation ----------------------------------------------------- #
    def make_agg_update(self, sink: AggregateSink) -> Callable:
        """Closure folding one row into the worker's aggregation partials.

        The accumulator layout per group is one cell per aggregate; AVG uses
        a ``[sum, count]`` pair.  With a worker context the read-modify-write
        touches only slot-private partials and needs no lock; the ``None``
        fallback updates the sealed tables under the state's single counted
        fallback lock.
        """
        state = self.state
        sealed = state.agg_partitions[sink.agg_id]
        fallback_lock = state._fallback_lock
        agg_id = sink.agg_id
        num_groups = len(sink.group_by)
        specs = list(sink.aggregates)
        arg_positions: list[Optional[int]] = []
        next_arg = 0
        for spec in specs:
            if spec.argument is None:
                arg_positions.append(None)
            else:
                arg_positions.append(next_arg)
                next_arg += 1

        def make_initial():
            return initial_cells(specs)

        def apply(cells, args):
            for index, spec in enumerate(specs):
                position = arg_positions[index]
                if spec.function == "count":
                    cells[index] += 1
                    continue
                value = args[position]
                if spec.function == "sum":
                    cells[index] += value
                elif spec.function == "avg":
                    pair = cells[index]
                    pair[0] += value
                    pair[1] += 1
                elif spec.function == "min":
                    current = cells[index]
                    if current is None or value < current:
                        cells[index] = value
                elif spec.function == "max":
                    current = cells[index]
                    if current is None or value > current:
                        cells[index] = value

        def update(ctx, *values):
            if num_groups == 1:
                key = values[0]
            else:
                key = values[:num_groups]
            args = values[num_groups:]
            if ctx is not None:
                parts = ctx.aggs[agg_id]
                part = parts[hash(key) & (len(parts) - 1)]
                cells = part.get(key)
                if cells is None:
                    cells = part.setdefault(key, make_initial())
                apply(cells, args)
                return
            with fallback_lock:
                state.lock_acquisitions += 1
                part = sealed[hash(key) & (len(sealed) - 1)]
                cells = part.get(key)
                if cells is None:
                    cells = part.setdefault(key, make_initial())
                apply(cells, args)
        update.__name__ = f"rt_agg_update_{sink.agg_id}"
        return update

    def finalize_aggregate(self, sink: AggregateSink) -> int:
        """Materialise the aggregation result into the intermediate columns.

        Runs single-threaded in the pipeline's finish step (the equivalent of
        HyPer's pipeline post-processing in runtime code), after the merge
        phase sealed the partition tables.  Groups are emitted in ascending
        group-key order, so unordered GROUP BY results are deterministic
        across execution modes, worker counts and partition counts (the old
        dict-insertion order depended on all three; NaN group keys are the
        exception -- they sort arbitrarily and group by object identity).
        Returns the number of result groups.
        """
        parts = self.state.agg_partitions[sink.agg_id]
        columns = self.state.intermediate_columns[sink.agg_id]
        for column in columns:
            column.clear()
        num_groups = len(sink.group_by)
        total = sum(len(part) for part in parts)

        if total == 0 and num_groups == 0:
            # SQL scalar aggregates produce exactly one row on empty input.
            cells = []
            for spec in sink.aggregates:
                if spec.function == "count":
                    cells.append(0)
                elif spec.result_type is SQLType.INT64:
                    cells.append(0)
                else:
                    cells.append(0.0)
            for j, value in enumerate(cells):
                columns[num_groups + j].append(value)
            self.state.intermediate_rows[sink.agg_id] = 1
            return 1

        items = []
        for part in parts:
            items.extend(part.items())
        if num_groups:
            items.sort(key=lambda item: group_sort_key(item[0]))

        for key, cells in items:
            if num_groups == 1:
                columns[0].append(key)
            else:
                for i in range(num_groups):
                    columns[i].append(key[i])
            for j, spec in enumerate(sink.aggregates):
                cell = cells[j]
                if spec.function == "avg":
                    sum_value, count = cell
                    cell = sum_value / count if count else 0.0
                elif spec.function in ("min", "max") and cell is None:
                    cell = 0
                columns[num_groups + j].append(cell)
        self.state.intermediate_rows[sink.agg_id] = total
        return total

    # ---- output ----------------------------------------------------------- #
    def make_emit(self, sink: OutputSink) -> Callable:
        """Closure collecting one output row.

        The closure is created once per cached query, so the per-execution
        strategy is read from the state: with a top-k breaker armed each row
        goes through the slot's bounded heap (push below k, displace the
        heap's worst row otherwise -- the hot path touches only slot-private
        state); with an early-termination quota armed a racy monotone
        counter lets executors stop dispatching morsels.  The ``None``
        context fallback maintains the shared heap under the counted
        fallback lock.
        """
        state = self.state
        rows = state.output_rows
        fallback_lock = state._fallback_lock

        def emit(ctx, *values):
            k = state.topk_k
            if k is not None:
                if k == 0:
                    return
                entry = _TopKEntry(state.topk_key_fn(values), values)
                if ctx is None:
                    with fallback_lock:
                        state.lock_acquisitions += 1
                        heap = state.topk_entries
                        if len(heap) < k:
                            heapq.heappush(heap, entry)
                        elif entry.key < heap[0].key:
                            heapq.heapreplace(heap, entry)
                    return
                heap = ctx.topk
                if len(heap) < k:
                    heapq.heappush(heap, entry)
                elif entry.key < heap[0].key:
                    heapq.heapreplace(heap, entry)
                return
            if ctx is None:
                rows.append(values)
            else:
                ctx.rows.append(values)
            if state.early_limit is not None:
                state.rows_emitted += 1
        emit.__name__ = "rt_emit_row"
        return emit

    def finish_output(self, sink: OutputSink) -> list[tuple]:
        """Apply DISTINCT / ORDER BY / LIMIT to the collected rows.

        Returns a fresh list: the collected row list is reused (and cleared)
        across executions of a prepared query, so results must never alias it.
        With a top-k breaker armed only the merged heap entries are sorted --
        no full materialisation ever happened.
        """
        state = self.state
        if state.topk_k is not None:
            entries = sorted(state.topk_entries, key=lambda e: e.key)
            return [entry.row for entry in entries[:state.topk_k]]
        rows = list(state.output_rows)
        if sink.distinct:
            seen = set()
            unique = []
            for row in rows:
                if row not in seen:
                    seen.add(row)
                    unique.append(row)
            rows = unique
        if sink.order_by:
            rows = _sort_rows(rows, sink)
        limit = resolve_limit(sink.limit, state.params)
        if limit is not None:
            rows = rows[:limit]
        return rows

    # ---- scalar helpers --------------------------------------------------- #
    @staticmethod
    def date_extract(field_name: str) -> Callable:
        if field_name == "year":
            def extract(days):
                return days_to_date(days).year
        elif field_name == "month":
            def extract(days):
                return days_to_date(days).month
        else:
            def extract(days):
                return days_to_date(days).day
        extract.__name__ = f"rt_extract_{field_name}"
        return extract

    @staticmethod
    def raise_overflow():
        raise ExecutionError("numeric overflow during query execution")


def _sort_rows(rows: list[tuple], sink: OutputSink) -> list[tuple]:
    """Sort output rows by the sink's ORDER BY keys.

    The sort keys were appended to each emitted row *after* the visible
    output columns by the code generator, so sorting never has to re-evaluate
    expressions; the extra key columns are stripped afterwards.  The key
    function includes the full-row tiebreak (see :func:`make_sort_key_fn`),
    so the order is value-determined -- under parallel execution the rows
    arrive in nondeterministic morsel interleaving, which a merely *stable*
    sort would leak into tie order.
    """
    if not sink.order_by:
        return rows
    return sorted(rows, key=make_sort_key_fn(sink))


def strip_sort_keys(rows: list[tuple], sink: OutputSink) -> list[tuple]:
    """Remove the trailing sort-key columns appended by the code generator."""
    if not sink.order_by:
        return rows
    width = len(sink.output)
    return [row[:width] for row in rows]


# --------------------------------------------------------------------------- #
# extern contracts
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class ExternContract:
    """Declared contract of one family of runtime externs.

    The code generator declares externs with generated names
    (``rt_build_insert_3``, ``rt_match_get_2_0``, ...), so contracts are
    keyed by a regular expression that must fully match the extern name.
    ``min_args``/``max_args`` bound the *declared* IR arity (``max_args``
    of ``None`` means unbounded).  ``is_sink`` marks externs that mutate
    per-worker breaker state and therefore must receive the worker
    function's threaded ``state`` argument first (the PR 5 invariant);
    ``may_lock`` whitelists the two fallback-path externs that are allowed
    to take the counted fallback lock; ``pure`` means the extern must be
    declared side-effect free (and vice versa).
    """

    pattern: str
    description: str
    is_sink: bool = False
    may_lock: bool = False
    pure: bool = False
    min_args: int = 0
    max_args: Optional[int] = None


#: The full catalogue of runtime externs the code generator may declare.
#: ``repro.analysis.extern_contracts`` verifies every generated ``CallInst``
#: and the bound Python implementations against this table; an extern whose
#: name matches no entry is itself a finding.
EXTERN_CONTRACTS: tuple = (
    ExternContract(r"rt_build_insert_\d+", "hash-join build insert",
                   is_sink=True, min_args=2),
    ExternContract(r"rt_agg_update_\d+", "aggregate update",
                   is_sink=True, may_lock=True, min_args=1),
    ExternContract(r"rt_emit_row", "result row emission",
                   is_sink=True, may_lock=True, min_args=1),
    ExternContract(r"rt_probe_\d+", "hash-join probe",
                   pure=True, min_args=1),
    ExternContract(r"rt_match_count", "probe match count",
                   pure=True, min_args=1, max_args=1),
    ExternContract(r"rt_match_get_\d+_\d+", "probe match payload access",
                   pure=True, min_args=2, max_args=2),
    ExternContract(r"rt_flag_new", "outer-join match flag allocation",
                   min_args=0, max_args=0),
    ExternContract(r"rt_flag_set", "outer-join match flag set",
                   min_args=1, max_args=1),
    ExternContract(r"rt_flag_get", "outer-join match flag read",
                   min_args=1, max_args=1),
    ExternContract(r"rt_null_\w+", "typed NULL padding value",
                   pure=True, min_args=0, max_args=0),
    ExternContract(r"rt_param_\d+", "bind-parameter load",
                   pure=True, min_args=0, max_args=0),
    ExternContract(r"rt_like_\d+", "LIKE predicate evaluation",
                   pure=True, min_args=1, max_args=1),
    ExternContract(r"rt_extract_(year|month|day)", "date field extraction",
                   pure=True, min_args=1, max_args=1),
    ExternContract(r"rt_raise_overflow", "checked-arithmetic overflow trap",
                   min_args=0, max_args=0),
)
