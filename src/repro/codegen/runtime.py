"""Query runtime: the "C++ side" of the generated code.

Generated worker functions call into a small set of runtime functions -- hash
table inserts and probes, aggregate updates, result emission, string
predicates and date field extraction.  These are the Python equivalents of
the pre-compiled C++ runtime HyPer links against; they are deliberately kept
small so the per-tuple work stays in generated code where the execution tiers
differ.

All runtime state of one query execution lives in a :class:`QueryState`.
Worker functions never allocate shared state themselves, which is what makes
morsels independent and execution-mode switches safe (paper Section III-B).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..errors import ExecutionError
from ..plan.physical import (
    AggregateSink,
    AggregateSpec,
    HashBuildSink,
    OutputSink,
    Pipeline,
    PhysicalPlan,
    IntermediateSource,
    TableSource,
)
from ..types import SQLType, days_to_date


class QueryState:
    """All mutable state of one query execution."""

    def __init__(self, plan: PhysicalPlan):
        self.plan = plan
        #: join_id -> hash table (key -> list of payload tuples)
        self.hash_tables: dict[int, dict] = {}
        #: agg_id -> aggregation hash table (key -> list of accumulator cells)
        self.agg_tables: dict[int, dict] = {}
        #: agg_id -> lock protecting read-modify-write accumulator updates
        self.agg_locks: dict[int, threading.Lock] = {}
        #: agg_id -> materialised intermediate columns (lists, pre-created so
        #: that generated code can hold stable pointers to them)
        self.intermediate_columns: dict[int, list[list]] = {}
        #: agg_id -> row count of the materialised intermediate
        self.intermediate_rows: dict[int, int] = {}
        #: collected output rows (tuples)
        self.output_rows: list[tuple] = []
        #: Bind-parameter values of the current execution, one (encoded)
        #: value per slot of ``plan.parameters``.  Generated code references
        #: this list *by identity* (parameter-slot loads are extern closures
        #: over it), so it is updated in place via :meth:`set_params` and
        #: deliberately survives :meth:`reset`.
        self.params: list = [None] * len(getattr(plan, "parameters", ()))

        for pipeline in plan.pipelines:
            sink = pipeline.sink
            if isinstance(sink, HashBuildSink):
                self.hash_tables[sink.join_id] = {}
            elif isinstance(sink, AggregateSink):
                self.agg_tables[sink.agg_id] = {}
                self.agg_locks[sink.agg_id] = threading.Lock()
                self.intermediate_columns[sink.agg_id] = [
                    [] for _ in sink.intermediate.columns]
                self.intermediate_rows[sink.agg_id] = 0

    # ------------------------------------------------------------------ #
    def reset(self) -> None:
        """Clear all per-execution state in place for a fresh execution.

        Generated code and the runtime closures hold direct references to
        these containers (join hash tables, aggregation tables, intermediate
        column lists, the output row list), so the containers are cleared
        rather than replaced: object identity must survive a reset for a
        cached/prepared query to stay executable.
        """
        for table in self.hash_tables.values():
            table.clear()
        for table in self.agg_tables.values():
            table.clear()
        for columns in self.intermediate_columns.values():
            for column in columns:
                column.clear()
        for agg_id in self.intermediate_rows:
            self.intermediate_rows[agg_id] = 0
        self.output_rows.clear()

    def set_params(self, values: list) -> None:
        """Install one execution's bind-parameter values (in place)."""
        if len(values) != len(self.params):
            raise ExecutionError(
                f"query state expects {len(self.params)} parameter "
                f"value(s), got {len(values)}")
        self.params[:] = values

    # ------------------------------------------------------------------ #
    def source_row_count(self, pipeline: Pipeline) -> int:
        """Number of input rows of a pipeline (known once its inputs exist)."""
        source = pipeline.source
        if isinstance(source, TableSource):
            return source.table.num_rows
        sink_agg_id = _agg_id_of_intermediate(self.plan, source)
        return self.intermediate_rows[sink_agg_id]


def _agg_id_of_intermediate(plan: PhysicalPlan,
                            source: IntermediateSource) -> int:
    for pipeline in plan.pipelines:
        sink = pipeline.sink
        if isinstance(sink, AggregateSink) and sink.intermediate is source:
            return sink.agg_id
    raise ExecutionError(
        f"intermediate source {source.name!r} has no producing pipeline")


# --------------------------------------------------------------------------- #
# runtime function factories (captured by generated code as extern bindings)
# --------------------------------------------------------------------------- #
class QueryRuntime:
    """Builds the runtime closures for one query execution."""

    def __init__(self, state: QueryState):
        self.state = state

    # ---- hash joins ----------------------------------------------------- #
    def make_build_insert(self, join_id: int, num_keys: int,
                          num_payload: int) -> Callable:
        """Closure inserting (key, payload) into the join hash table."""
        table = self.state.hash_tables[join_id]

        if num_keys == 1:
            def insert(key, *payload):
                bucket = table.get(key)
                if bucket is None:
                    bucket = table.setdefault(key, [])
                bucket.append(payload)
        else:
            def insert(*values):
                key = values[:num_keys]
                payload = values[num_keys:]
                bucket = table.get(key)
                if bucket is None:
                    bucket = table.setdefault(key, [])
                bucket.append(payload)
        insert.__name__ = f"rt_build_insert_{join_id}"
        return insert

    def make_probe(self, join_id: int, num_keys: int) -> Callable:
        """Closure returning the list of matching payload tuples (or [])."""
        table = self.state.hash_tables[join_id]
        empty: list = []

        if num_keys == 1:
            def probe(key):
                return table.get(key, empty)
        else:
            def probe(*key):
                return table.get(key, empty)
        probe.__name__ = f"rt_probe_{join_id}"
        return probe

    @staticmethod
    def match_count(matches) -> int:
        return len(matches)

    @staticmethod
    def make_match_getter(column_index: int) -> Callable:
        def get(matches, row):
            return matches[row][column_index]
        get.__name__ = f"rt_match_get_{column_index}"
        return get

    # ---- aggregation ----------------------------------------------------- #
    def make_agg_update(self, sink: AggregateSink) -> Callable:
        """Closure folding one row into the aggregation hash table.

        The accumulator layout per group is one cell per aggregate; AVG uses
        a ``[sum, count]`` pair.  The update is guarded by a lock because the
        read-modify-write is not atomic under concurrent worker threads.
        """
        table = self.state.agg_tables[sink.agg_id]
        lock = self.state.agg_locks[sink.agg_id]
        num_groups = len(sink.group_by)
        specs = list(sink.aggregates)
        arg_positions: list[Optional[int]] = []
        next_arg = 0
        for spec in specs:
            if spec.argument is None:
                arg_positions.append(None)
            else:
                arg_positions.append(next_arg)
                next_arg += 1

        def initial_cells():
            cells = []
            for spec in specs:
                if spec.function == "count":
                    cells.append(0)
                elif spec.function == "avg":
                    cells.append([0.0, 0])
                elif spec.function in ("min", "max"):
                    cells.append(None)
                else:  # sum
                    cells.append(0 if spec.result_type is SQLType.INT64
                                 else 0.0)
            return cells

        def update(*values):
            if num_groups == 1:
                key = values[0]
            else:
                key = values[:num_groups]
            args = values[num_groups:]
            with lock:
                cells = table.get(key)
                if cells is None:
                    cells = table.setdefault(key, initial_cells())
                for index, spec in enumerate(specs):
                    position = arg_positions[index]
                    if spec.function == "count":
                        cells[index] += 1
                        continue
                    value = args[position]
                    if spec.function == "sum":
                        cells[index] += value
                    elif spec.function == "avg":
                        pair = cells[index]
                        pair[0] += value
                        pair[1] += 1
                    elif spec.function == "min":
                        current = cells[index]
                        if current is None or value < current:
                            cells[index] = value
                    elif spec.function == "max":
                        current = cells[index]
                        if current is None or value > current:
                            cells[index] = value
        update.__name__ = f"rt_agg_update_{sink.agg_id}"
        return update

    def finalize_aggregate(self, sink: AggregateSink) -> int:
        """Materialise the aggregation result into the intermediate columns.

        Runs single-threaded in the pipeline's finish step (the equivalent of
        HyPer's pipeline post-processing in runtime code).  Returns the number
        of result groups.
        """
        table = self.state.agg_tables[sink.agg_id]
        columns = self.state.intermediate_columns[sink.agg_id]
        for column in columns:
            column.clear()
        num_groups = len(sink.group_by)

        if not table and num_groups == 0:
            # SQL scalar aggregates produce exactly one row on empty input.
            cells = []
            for spec in sink.aggregates:
                if spec.function == "count":
                    cells.append(0)
                elif spec.result_type is SQLType.INT64:
                    cells.append(0)
                else:
                    cells.append(0.0)
            for j, value in enumerate(cells):
                columns[num_groups + j].append(value)
            self.state.intermediate_rows[sink.agg_id] = 1
            return 1

        for key, cells in table.items():
            if num_groups == 1:
                columns[0].append(key)
            else:
                for i in range(num_groups):
                    columns[i].append(key[i])
            for j, spec in enumerate(sink.aggregates):
                cell = cells[j]
                if spec.function == "avg":
                    total, count = cell
                    cell = total / count if count else 0.0
                elif spec.function in ("min", "max") and cell is None:
                    cell = 0
                columns[num_groups + j].append(cell)
        self.state.intermediate_rows[sink.agg_id] = len(table)
        return len(table)

    # ---- output ----------------------------------------------------------- #
    def make_emit(self, sink: OutputSink) -> Callable:
        rows = self.state.output_rows

        def emit(*values):
            rows.append(values)
        emit.__name__ = "rt_emit_row"
        return emit

    def finish_output(self, sink: OutputSink) -> list[tuple]:
        """Apply DISTINCT / ORDER BY / LIMIT to the collected rows.

        Returns a fresh list: the collected row list is reused (and cleared)
        across executions of a prepared query, so results must never alias it.
        """
        rows = list(self.state.output_rows)
        if sink.distinct:
            seen = set()
            unique = []
            for row in rows:
                if row not in seen:
                    seen.add(row)
                    unique.append(row)
            rows = unique
        if sink.order_by:
            rows = _sort_rows(rows, sink)
        if sink.limit is not None:
            rows = rows[:sink.limit]
        return rows

    # ---- scalar helpers --------------------------------------------------- #
    @staticmethod
    def date_extract(field_name: str) -> Callable:
        if field_name == "year":
            def extract(days):
                return days_to_date(days).year
        elif field_name == "month":
            def extract(days):
                return days_to_date(days).month
        else:
            def extract(days):
                return days_to_date(days).day
        extract.__name__ = f"rt_extract_{field_name}"
        return extract

    @staticmethod
    def raise_overflow():
        raise ExecutionError("numeric overflow during query execution")


def _sort_rows(rows: list[tuple], sink: OutputSink) -> list[tuple]:
    """Sort output rows by the sink's ORDER BY keys.

    The sort keys were appended to each emitted row *after* the visible
    output columns by the code generator, so sorting never has to re-evaluate
    expressions; the extra key columns are stripped afterwards.
    """
    num_visible = len(sink.output)
    keys = sink.order_by
    if not keys:
        return rows

    # Stable sort from the least-significant key to the most significant.
    ordered = list(rows)
    for offset in range(len(keys) - 1, -1, -1):
        _, ascending = keys[offset]
        ordered.sort(key=lambda row: row[num_visible + offset],
                     reverse=not ascending)
    return ordered


def strip_sort_keys(rows: list[tuple], sink: OutputSink) -> list[tuple]:
    """Remove the trailing sort-key columns appended by the code generator."""
    if not sink.order_by:
        return rows
    width = len(sink.output)
    return [row[:width] for row in rows]
