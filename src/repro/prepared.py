"""Prepared queries: plan and generate code once, execute many times.

A :class:`PreparedQuery` pins the immutable artifacts of one query -- the
physical plan, the generated IR module and the per-pipeline worker functions
-- together with the mutable :class:`repro.codegen.QueryState` the generated
code is bound to.  Re-execution resets that state in place (the generated
code references its containers by identity) and reuses every artifact the
previous executions already paid for:

* parse / bind / plan / codegen are never repeated,
* bytecode translations and compiled tiers of the static modes are cached
  per ``(pipeline, mode)``,
* the adaptive mode keeps its :class:`repro.adaptive.FunctionHandle` per
  pipeline, so a tier the Fig. 7 policy compiled in an earlier run is simply
  *the current mode* of the next run -- the compile cost is paid once.

Because the artifacts are bound to a single ``QueryState``, executions of one
``PreparedQuery`` are serialized by an internal lock; calling ``execute``
from many threads is safe, and distinct prepared queries execute fully
concurrently.  Each execution itself remains morsel-parallel, drawing its
workers from the database's shared pool (see :mod:`repro.scheduler`) rather
than spawning threads.  ``Database.execute`` never blocks on a busy entry: it uses
:meth:`PreparedQuery.execute_nowait` and falls back to an independent cold
build when another thread holds the cached entry.

Stale plans are detected through the catalog's per-table version counters:
an ``insert`` or DDL on a referenced table invalidates the entry (the plan
cache drops it; a directly held ``PreparedQuery`` transparently re-prepares
itself on the next ``execute``).
"""

from __future__ import annotations

import threading
from dataclasses import replace
from typing import Optional

from .adaptive import AdaptiveExecutor, StaticParallelExecutor
from .engine import ENGINE_MODES, PhaseTimings, QueryResult
from .errors import ExecutionError
from .options import ExecOptions
from .parameters import ParameterSpec, bind_parameter_values
from .plan.physical import TableSource


def referenced_tables(planning) -> frozenset[str]:
    """The lower-cased names of all base tables a physical plan reads."""
    names = set()
    for pipeline in planning.physical.pipelines:
        source = pipeline.source
        if isinstance(source, TableSource):
            names.add(source.table.name.lower())
    return frozenset(names)


class PreparedQuery:
    """One query's cached plan, code and compiled execution tiers."""

    def __init__(self, database, sql: str, generated, planning,
                 build_timings: PhaseTimings, catalog_version: int,
                 parameter_hints: Optional[list] = None):
        self.database = database
        self.sql = sql
        #: Literal values auto-parameterization extracted (None for
        #: explicitly written statements); re-used when the entry re-binds
        #: after invalidation, since hint-typed parameters (e.g. a constant
        #: projection) cannot be typed from context alone.
        self.parameter_hints = parameter_hints
        self.generated = generated
        self.planning = planning
        #: Phase timings of building this entry (parse/bind/plan/codegen);
        #: reported by the first execution, skipped by every later one.
        self.build_timings = build_timings
        #: Global catalog version snapshotted *before* the plan was built.
        #: A referenced table whose version exceeds this changed during or
        #: after the build window, so the plan is stale either way; taking
        #: the snapshot first closes the race in which a concurrent change
        #: between generation and capture would stamp a stale plan as valid.
        self._catalog_version = catalog_version
        self._referenced = referenced_tables(planning)
        #: Number of completed ``execute`` calls.
        self.executions = 0
        self._lock = threading.RLock()
        self._first_execution = True
        #: (pipeline index, mode) -> executable for the static tiers;
        #: populated lazily, reused across executions.
        self._tiers: dict = {}
        #: pipeline index -> FunctionHandle for the adaptive mode; keeps
        #: bytecode translations and policy-compiled tiers alive.
        self._handles: dict = {}

    # ------------------------------------------------------------------ #
    @property
    def referenced_tables(self) -> frozenset[str]:
        return self._referenced

    @property
    def parameters(self) -> list[ParameterSpec]:
        """The statement's bind-parameter slots (empty when literal-only)."""
        return self.planning.physical.parameters

    def is_valid(self) -> bool:
        """Whether no referenced table changed since this plan was built."""
        catalog = self.database.catalog
        return all(catalog.table_version(name) <= self._catalog_version
                   for name in self._referenced)

    def _rebuild(self) -> None:
        """Re-prepare after a referenced table changed (data or DDL)."""
        catalog_version = self.database.catalog.version
        generated, planning, timings = self.database.generate(
            self.sql, self.parameter_hints)
        self.generated = generated
        self.planning = planning
        self.build_timings = timings
        self._catalog_version = catalog_version
        self._referenced = referenced_tables(planning)
        self._tiers.clear()
        self._handles.clear()
        self._first_execution = True

    # ------------------------------------------------------------------ #
    def execute(self, mode: Optional[str] = None,
                threads: Optional[int] = None,
                collect_trace: Optional[bool] = None,
                cost_model=None,
                policy=None,
                options: Optional[ExecOptions] = None,
                params=None) -> QueryResult:
        """Execute the prepared query in any compiled-engine mode.

        ``params`` supplies the bind-parameter values of this execution (a
        sequence for positional ``?`` statements, a mapping for ``:name``
        statements).  ``cost_model`` / ``policy`` override the adaptive
        policy inputs for this execution (adaptive mode only).  The first
        execution after (re)preparation reports the full build timings;
        later executions report zero for parse/bind/plan/codegen and only
        pay compilation for tiers not compiled yet.
        """
        opts = ExecOptions.resolve(options, mode=mode, threads=threads,
                                   collect_trace=collect_trace)
        self._check_mode(opts.mode)
        with self._lock:
            return self._execute_locked(opts, cost_model, policy, params)

    def execute_nowait(self, mode: Optional[str] = None,
                       threads: Optional[int] = None,
                       collect_trace: Optional[bool] = None,
                       cost_model=None,
                       policy=None,
                       options: Optional[ExecOptions] = None,
                       params=None) -> Optional[QueryResult]:
        """Like :meth:`execute`, but returns ``None`` instead of blocking
        when another thread is currently executing this entry.

        ``Database.execute`` uses this to keep concurrent callers of the
        same statement independent: the loser of the race falls back to a
        cold build rather than waiting for the cached entry's state.
        """
        opts = ExecOptions.resolve(options, mode=mode, threads=threads,
                                   collect_trace=collect_trace)
        self._check_mode(opts.mode)
        if not self._lock.acquire(blocking=False):
            return None
        try:
            return self._execute_locked(opts, cost_model, policy, params)
        finally:
            self._lock.release()

    @staticmethod
    def _check_mode(mode: str) -> None:
        if mode not in ENGINE_MODES:
            raise ExecutionError(
                f"unknown execution mode {mode!r} for a prepared query; "
                f"expected one of {ENGINE_MODES}")

    def _execute_locked(self, opts: ExecOptions, cost_model,
                        policy, params) -> QueryResult:
        mode = opts.mode
        if not self.is_valid():
            self._rebuild()
        # Bind parameter values against the (possibly re-prepared) specs
        # before touching any state, so arity/type errors leave the entry
        # fully reusable.
        values = bind_parameter_values(self.parameters, params)
        first = self._first_execution
        self._first_execution = False
        timings = replace(self.build_timings) if first else PhaseTimings()
        self.generated.reset_for_execution()
        self.generated.state.set_params(values)
        database = self.database
        # Install this execution's breaker layout (the same cached artifacts
        # serve any partition count: generated code reads the partition
        # lists by identity and sizes masks per call).
        self.generated.state.configure_breakers(
            partitions=database.breaker_partitions_for(opts),
            use_partitioned=opts.use_partitioned_breakers)
        # Resolve LIMIT against the just-bound parameters and choose the
        # output strategy (top-k breaker / early termination / plain
        # collection) for this execution.
        self.generated.state.configure_output(
            self.generated.output_sink, use_topk=opts.use_topk_breaker)
        self.generated.state.collect_operator_stats = \
            opts.collect_operator_stats

        if mode == "adaptive":
            executor = AdaptiveExecutor(
                database, num_threads=opts.threads,
                collect_trace=opts.collect_trace,
                cost_model=cost_model, policy=policy, handles=self._handles,
                use_pruning=opts.use_pruning, verify_ir=opts.verify_ir)
            result = executor.execute(self.generated, self.planning, timings)
        elif opts.threads > 1:
            executor = StaticParallelExecutor(
                database, mode=mode, num_threads=opts.threads,
                collect_trace=opts.collect_trace, tiers=self._tiers,
                use_pruning=opts.use_pruning, verify_ir=opts.verify_ir)
            result = executor.execute(self.generated, self.planning, timings)
        else:
            result = database._execute_static(
                self.generated, self.planning, timings, mode,
                tiers=self._tiers, use_pruning=opts.use_pruning,
                verify_ir=opts.verify_ir)
        self.executions += 1
        result.cached = not first
        # Free the execution state eagerly: the result no longer aliases it
        # (finish_output copies the rows), and a cached entry would otherwise
        # pin its last execution's join/aggregation hash tables until the
        # next run.
        self.generated.reset_for_execution()
        return result

    # ------------------------------------------------------------------ #
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        tables = ",".join(sorted(self._referenced)) or "-"
        return (f"<PreparedQuery tables=[{tables}] "
                f"executions={self.executions}>")
