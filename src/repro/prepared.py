"""Prepared queries: plan and generate code once, execute many times.

A :class:`PreparedQuery` pins the immutable artifacts of one query -- the
physical plan, the generated IR module and the per-pipeline worker functions
-- together with the mutable :class:`repro.codegen.QueryState` the generated
code is bound to.  Re-execution resets that state in place (the generated
code references its containers by identity) and reuses every artifact the
previous executions already paid for:

* parse / bind / plan / codegen are never repeated,
* bytecode translations and compiled tiers of the static modes are cached
  per ``(pipeline, mode)``,
* the adaptive mode keeps its :class:`repro.adaptive.FunctionHandle` per
  pipeline, so a tier the Fig. 7 policy compiled in an earlier run is simply
  *the current mode* of the next run -- the compile cost is paid once.

Because the artifacts are bound to a single ``QueryState``, executions of one
``PreparedQuery`` are serialized by an internal lock; calling ``execute``
from many threads is safe, and distinct prepared queries execute fully
concurrently.  Each execution itself remains morsel-parallel, drawing its
workers from the database's shared pool (see :mod:`repro.scheduler`) rather
than spawning threads.  ``Database.execute`` never blocks on a busy entry: it uses
:meth:`PreparedQuery.execute_nowait` and falls back to an independent cold
build when another thread holds the cached entry.

Stale plans are detected through the catalog's per-table version counters:
an ``insert`` or DDL on a referenced table invalidates the entry (the plan
cache drops it; a directly held ``PreparedQuery`` transparently re-prepares
itself on the next ``execute``).
"""

from __future__ import annotations

import threading
from dataclasses import replace
from typing import Optional

from .adaptive import AdaptiveExecutor, StaticParallelExecutor
from .cache import normalize_sql
from .engine import ENGINE_MODES, PhaseTimings, QueryResult, _hint_type_tag
from .errors import ExecutionError, ParameterError
from .options import ExecOptions
from .parameters import ParameterSpec, bind_parameter_values
from .plan.physical import TableSource
from .result_cache import result_cache_key


def referenced_tables(planning) -> frozenset[str]:
    """The lower-cased names of all base tables a physical plan reads."""
    names = set()
    for pipeline in planning.physical.pipelines:
        source = pipeline.source
        if isinstance(source, TableSource):
            names.add(source.table.name.lower())
    return frozenset(names)


class PreparedQuery:
    """One query's cached plan, code and compiled execution tiers."""

    def __init__(self, database, sql: str, generated, planning,
                 build_timings: PhaseTimings, catalog_version: int,
                 parameter_hints: Optional[list] = None):
        self.database = database
        self.sql = sql
        #: Literal values auto-parameterization extracted (None for
        #: explicitly written statements); re-used when the entry re-binds
        #: after invalidation, since hint-typed parameters (e.g. a constant
        #: projection) cannot be typed from context alone.
        self.parameter_hints = parameter_hints
        self.generated = generated
        self.planning = planning
        #: Phase timings of building this entry (parse/bind/plan/codegen);
        #: reported by the first execution, skipped by every later one.
        self.build_timings = build_timings
        #: Global catalog version snapshotted *before* the plan was built.
        #: A referenced table whose version exceeds this changed during or
        #: after the build window, so the plan is stale either way; taking
        #: the snapshot first closes the race in which a concurrent change
        #: between generation and capture would stamp a stale plan as valid.
        self._catalog_version = catalog_version
        self._referenced = referenced_tables(planning)
        #: The plan-cache key of this statement: normalized SQL plus the
        #: auto-parameterization hint-type tag.  Also the first component
        #: of this statement's result-cache keys, which is what keeps
        #: ``a = 2`` and ``a = 2.0`` on separate cached results even when
        #: both normalize to ``a = ?``.
        self.plan_key = normalize_sql(sql)
        if parameter_hints is not None:
            self.plan_key += _hint_type_tag(parameter_hints)
        #: Number of completed ``execute`` calls.
        self.executions = 0
        self._lock = threading.RLock()
        self._first_execution = True
        #: (pipeline index, mode) -> executable for the static tiers;
        #: populated lazily, reused across executions.
        self._tiers: dict = {}
        #: pipeline index -> FunctionHandle for the adaptive mode; keeps
        #: bytecode translations and policy-compiled tiers alive.
        self._handles: dict = {}

    # ------------------------------------------------------------------ #
    @property
    def referenced_tables(self) -> frozenset[str]:
        return self._referenced

    @property
    def parameters(self) -> list[ParameterSpec]:
        """The statement's bind-parameter slots (empty when literal-only)."""
        return self.planning.physical.parameters

    def is_valid(self) -> bool:
        """Whether no referenced table changed since this plan was built."""
        catalog = self.database.catalog
        return all(catalog.table_version(name) <= self._catalog_version
                   for name in self._referenced)

    def _rebuild(self) -> None:
        """Re-prepare after a referenced table changed (data or DDL)."""
        catalog_version = self.database.catalog.version
        generated, planning, timings = self.database.generate(
            self.sql, self.parameter_hints)
        self.generated = generated
        self.planning = planning
        self.build_timings = timings
        self._catalog_version = catalog_version
        self._referenced = referenced_tables(planning)
        self._tiers.clear()
        self._handles.clear()
        self._first_execution = True

    # ------------------------------------------------------------------ #
    def execute(self, mode: Optional[str] = None,
                threads: Optional[int] = None,
                collect_trace: Optional[bool] = None,
                cost_model=None,
                policy=None,
                options: Optional[ExecOptions] = None,
                params=None) -> QueryResult:
        """Execute the prepared query in any compiled-engine mode.

        ``params`` supplies the bind-parameter values of this execution (a
        sequence for positional ``?`` statements, a mapping for ``:name``
        statements).  ``cost_model`` / ``policy`` override the adaptive
        policy inputs for this execution (adaptive mode only).  The first
        execution after (re)preparation reports the full build timings;
        later executions report zero for parse/bind/plan/codegen and only
        pay compilation for tiers not compiled yet.
        """
        opts = ExecOptions.resolve(options, mode=mode, threads=threads,
                                   collect_trace=collect_trace)
        self._check_mode(opts.mode)
        with self._lock:
            return self._execute_locked(opts, cost_model, policy, params)

    def execute_nowait(self, mode: Optional[str] = None,
                       threads: Optional[int] = None,
                       collect_trace: Optional[bool] = None,
                       cost_model=None,
                       policy=None,
                       options: Optional[ExecOptions] = None,
                       params=None) -> Optional[QueryResult]:
        """Like :meth:`execute`, but returns ``None`` instead of blocking
        when another thread is currently executing this entry.

        ``Database.execute`` uses this to keep concurrent callers of the
        same statement independent: the loser of the race falls back to a
        cold build rather than waiting for the cached entry's state.
        """
        opts = ExecOptions.resolve(options, mode=mode, threads=threads,
                                   collect_trace=collect_trace)
        self._check_mode(opts.mode)
        if not self._lock.acquire(blocking=False):
            return None
        try:
            return self._execute_locked(opts, cost_model, policy, params)
        finally:
            self._lock.release()

    def execute_many(self, bindings, mode: Optional[str] = None,
                     threads: Optional[int] = None,
                     options: Optional[ExecOptions] = None,
                     cost_model=None, policy=None) -> list[QueryResult]:
        """Execute one prepared shape for every binding in ``bindings``.

        Returns one :class:`QueryResult` per binding, in order.  The whole
        batch runs as a single fused pass over this entry's prepared
        artifacts: validity is checked once, every binding is encoded up
        front (so a bad binding fails *before* any execution), and the
        per-binding executions share the plan, the generated IR, compiled
        tiers and adaptive handles -- each binding only pays parameter
        rebinding plus sargable re-pruning of the shared scan.  With the
        result cache enabled, identical bindings within the batch are
        deduplicated (one execution, shared rows) and previously cached
        bindings skip execution entirely.
        """
        opts = ExecOptions.resolve(options, mode=mode, threads=threads)
        self._check_mode(opts.mode)
        with self._lock:
            return self._execute_many_locked(opts, cost_model, policy,
                                             list(bindings))

    def execute_many_nowait(self, bindings,
                            options: Optional[ExecOptions] = None,
                            cost_model=None, policy=None
                            ) -> Optional[list[QueryResult]]:
        """Like :meth:`execute_many`, but ``None`` when the entry is busy."""
        opts = ExecOptions.resolve(options)
        self._check_mode(opts.mode)
        if not self._lock.acquire(blocking=False):
            return None
        try:
            return self._execute_many_locked(opts, cost_model, policy,
                                             list(bindings))
        finally:
            self._lock.release()

    def _execute_many_locked(self, opts: ExecOptions, cost_model, policy,
                             bindings: list) -> list[QueryResult]:
        if not bindings:
            return []
        if not self.is_valid():
            self._rebuild()
        # Encode every binding before executing any of them: a malformed
        # binding fails the whole batch up front instead of after a prefix
        # of it already ran.
        encoded = [bind_parameter_values(self.parameters, binding)
                   for binding in bindings]
        result_cache = self._usable_result_cache(opts)
        results: list[Optional[QueryResult]] = [None] * len(bindings)
        if result_cache is None:
            # No reuse layer: still fused (one validity check, shared
            # artifacts), but every binding executes for real.
            for index, values in enumerate(encoded):
                results[index] = self._run_bound(opts, cost_model, policy,
                                                 values)
            return results
        # Group identical bindings: the first occurrence executes (or is
        # served from the cache), the rest share its materialized rows.
        groups: dict[tuple, list[int]] = {}
        for index, values in enumerate(encoded):
            key = result_cache_key(self.plan_key, opts.mode, values)
            groups.setdefault(key, []).append(index)
        table_version = self.database.catalog.table_version
        for key, indices in groups.items():
            entry = result_cache.get(key, table_version)
            if entry is not None:
                self.executions += 1
                result = entry.to_result()
            else:
                versions = self._snapshot_versions()
                result = self._run_bound(opts, cost_model, policy,
                                         encoded[indices[0]])
                result_cache.put(key, versions, result)
            results[indices[0]] = result
            for duplicate in indices[1:]:
                results[duplicate] = self._share_result(result)
        return results

    @staticmethod
    def _share_result(result: QueryResult) -> QueryResult:
        """A result sharing another's rows (deduplicated batch binding)."""
        shared = QueryResult(
            column_names=list(result.column_names),
            column_types=list(result.column_types),
            rows=list(result.rows),
            mode=result.mode,
            timings=PhaseTimings(),
            early_terminated=result.early_terminated)
        shared.cached = True
        shared.cache_source = "result"
        return shared

    @staticmethod
    def _check_mode(mode: str) -> None:
        if mode not in ENGINE_MODES:
            raise ExecutionError(
                f"unknown execution mode {mode!r} for a prepared query; "
                f"expected one of {ENGINE_MODES}")

    # ------------------------------------------------------------------ #
    # result-cache integration
    # ------------------------------------------------------------------ #
    def _usable_result_cache(self, opts: ExecOptions):
        """The database's result cache if this execution may use it.

        Executions that exist to *observe* execution (trace collection,
        per-morsel telemetry, operator-stat collection for EXPLAIN
        ANALYZE) must run for real, so they bypass the cache in both
        directions.  ``use_cache=False`` -- the cold-measurement escape
        hatch -- implies the result cache off as well.
        """
        result_cache = getattr(self.database, "result_cache", None)
        if result_cache is None or not result_cache.enabled:
            return None
        if not opts.use_cache or not opts.use_result_cache:
            return None
        if opts.collect_trace or opts.collect_operator_stats \
                or opts.telemetry == "trace":
            return None
        return result_cache

    def _snapshot_versions(self) -> dict[str, int]:
        """Per-table catalog versions of every referenced table, *now*.

        Taken before execution starts reading: a concurrent mutation that
        completes mid-scan bumps the versions afterwards, so the entry we
        store can only be keyed to an older snapshot and later lookups
        miss (never serve rows the mutation may have influenced).
        """
        catalog = self.database.catalog
        return {name: catalog.table_version(name)
                for name in self._referenced}

    def cached_result(self, options: Optional[ExecOptions] = None,
                      params=None, **overrides) -> Optional[QueryResult]:
        """A result-cache hit for this statement + bindings, or ``None``.

        Lock-free probe: never executes, never builds, never blocks on a
        busy entry.  Used by ``Database.execute`` when the cached entry is
        mid-execution on another thread, and by the network server to
        serve hot reads without consuming a scheduler admission slot.
        """
        opts = ExecOptions.resolve(options, **overrides)
        result_cache = self._usable_result_cache(opts)
        if result_cache is None or not self.is_valid():
            return None
        try:
            values = bind_parameter_values(self.parameters, params)
        except ParameterError:
            return None  # let the execution path raise the real error
        key = result_cache_key(self.plan_key, opts.mode, values)
        entry = result_cache.get(key, self.database.catalog.table_version)
        if entry is None:
            return None
        return entry.to_result()

    def _execute_locked(self, opts: ExecOptions, cost_model,
                        policy, params) -> QueryResult:
        if not self.is_valid():
            self._rebuild()
        # Bind parameter values against the (possibly re-prepared) specs
        # before touching any state, so arity/type errors leave the entry
        # fully reusable.
        values = bind_parameter_values(self.parameters, params)
        result_cache = self._usable_result_cache(opts)
        key = versions = None
        if result_cache is not None:
            key = result_cache_key(self.plan_key, opts.mode, values)
            entry = result_cache.get(key,
                                     self.database.catalog.table_version)
            if entry is not None:
                self.executions += 1
                return entry.to_result()
            versions = self._snapshot_versions()
        result = self._run_bound(opts, cost_model, policy, values)
        if result_cache is not None:
            result_cache.put(key, versions, result)
        return result

    def _run_bound(self, opts: ExecOptions, cost_model, policy,
                   values: list) -> QueryResult:
        """Run one execution with already-encoded parameter values."""
        mode = opts.mode
        first = self._first_execution
        self._first_execution = False
        timings = replace(self.build_timings) if first else PhaseTimings()
        self.generated.reset_for_execution()
        self.generated.state.set_params(values)
        database = self.database
        # Install this execution's breaker layout (the same cached artifacts
        # serve any partition count: generated code reads the partition
        # lists by identity and sizes masks per call).
        self.generated.state.configure_breakers(
            partitions=database.breaker_partitions_for(opts),
            use_partitioned=opts.use_partitioned_breakers)
        # Resolve LIMIT against the just-bound parameters and choose the
        # output strategy (top-k breaker / early termination / plain
        # collection) for this execution.
        self.generated.state.configure_output(
            self.generated.output_sink, use_topk=opts.use_topk_breaker)
        self.generated.state.collect_operator_stats = \
            opts.collect_operator_stats

        if mode == "adaptive":
            executor = AdaptiveExecutor(
                database, num_threads=opts.threads,
                collect_trace=opts.collect_trace,
                cost_model=cost_model, policy=policy, handles=self._handles,
                use_pruning=opts.use_pruning, verify_ir=opts.verify_ir)
            result = executor.execute(self.generated, self.planning, timings)
        elif opts.threads > 1:
            executor = StaticParallelExecutor(
                database, mode=mode, num_threads=opts.threads,
                collect_trace=opts.collect_trace, tiers=self._tiers,
                use_pruning=opts.use_pruning, verify_ir=opts.verify_ir)
            result = executor.execute(self.generated, self.planning, timings)
        else:
            result = database._execute_static(
                self.generated, self.planning, timings, mode,
                tiers=self._tiers, use_pruning=opts.use_pruning,
                verify_ir=opts.verify_ir)
        self.executions += 1
        result.cached = not first
        if result.cached:
            result.cache_source = "plan"
        # Free the execution state eagerly: the result no longer aliases it
        # (finish_output copies the rows), and a cached entry would otherwise
        # pin its last execution's join/aggregation hash tables until the
        # next run.
        self.generated.reset_for_execution()
        return result

    # ------------------------------------------------------------------ #
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        tables = ",".join(sorted(self._referenced)) or "-"
        return (f"<PreparedQuery tables=[{tables}] "
                f"executions={self.executions}>")
