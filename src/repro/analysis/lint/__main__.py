"""Command-line driver: ``python -m repro.analysis.lint <paths...>``.

Exits 0 when no rule fires, 1 when there are findings, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from . import lint_paths
from .rules import ALL_RULES


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.lint",
        description="AST-based concurrency/invariant lint for engine code.")
    parser.add_argument("paths", nargs="*", type=Path,
                        help="files or directories to lint (default: the "
                             "repro package itself)")
    parser.add_argument("--list", action="store_true",
                        help="list the active rules and exit")
    parser.add_argument("--rule", action="append", default=None,
                        metavar="RULE_ID",
                        help="run only the given rule (repeatable)")
    arguments = parser.parse_args(argv)

    rules = [cls() for cls in ALL_RULES]
    if arguments.list:
        for rule in rules:
            print(f"{rule.rule_id:18} {rule.description}")
        return 0
    if arguments.rule:
        unknown = set(arguments.rule) - {r.rule_id for r in rules}
        if unknown:
            print(f"unknown rule id(s): {', '.join(sorted(unknown))}",
                  file=sys.stderr)
            return 2
        rules = [r for r in rules if r.rule_id in arguments.rule]

    paths = arguments.paths or [Path(__file__).resolve().parents[2]]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(f"no such path(s): {', '.join(map(str, missing))}",
              file=sys.stderr)
        return 2

    findings = lint_paths(paths, rules)
    for finding in findings:
        print(finding)
    if findings:
        print(f"{len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
