"""Built-in lint rules.

Each rule encodes one invariant the engine has already paid for in bug-hunt
time (see DESIGN.md, "Static verification & lint").  Rules are deliberately
narrow: a lint that cries wolf gets deleted, so every rule below was tuned
to run clean over the current ``src/repro`` tree and to fire on the
historical bug shapes.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Iterator, Optional

from . import Finding, Rule

#: Names that refer to a lock (locals, attributes, freevars).
_LOCK_NAME = re.compile(r"lock|mutex|semaphore", re.IGNORECASE)
#: The single sanctioned lock of the codegen'd fallback path.
_SANCTIONED = re.compile(r"fallback_lock")
#: Attributes holding per-chunk columnar storage (sealed once published).
_CHUNK_ATTR = re.compile(r"(^|_)(chunks|zone_maps|numpy_chunks)$")
#: List/dict mutator method names.
_MUTATORS = frozenset({
    "append", "extend", "insert", "remove", "pop", "clear", "sort",
    "reverse", "update", "setdefault", "popitem",
})


def _terminal_name(node: ast.AST) -> Optional[str]:
    """The rightmost identifier of a Name/Attribute chain, else None."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _is_lock_expr(node: ast.AST) -> bool:
    name = _terminal_name(node)
    return name is not None and bool(_LOCK_NAME.search(name))


# --------------------------------------------------------------------------- #
# R1: lock discipline
# --------------------------------------------------------------------------- #
class LockDisciplineRule(Rule):
    """An attribute written under ``with self._lock:`` in one method must
    never be written unguarded in another method of the same class.

    This is the invariant behind the chunk-sealing publish-order race
    (PR 4): ``_num_rows`` is the published row count, and a store outside
    the table lock can expose rows before their chunk data is visible.
    ``__init__`` is exempt (the object is not yet shared), as are methods
    whose name ends in ``_locked`` (the caller holds the lock by
    convention).
    """

    rule_id = "lock-discipline"
    description = ("attributes guarded by a lock in one method must not be "
                   "written unguarded elsewhere in the class")

    def check(self, tree: ast.Module, source: str) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(node)

    def _check_class(self, cls: ast.ClassDef) -> Iterator[Finding]:
        guarded: set = set()
        unguarded: dict = {}
        for method in cls.body:
            if not isinstance(method, (ast.FunctionDef,
                                       ast.AsyncFunctionDef)):
                continue
            exempt = (method.name == "__init__"
                      or method.name.endswith("_locked"))
            for attr, store, under_lock in _self_attr_stores(method):
                if under_lock:
                    guarded.add(attr)
                elif not exempt:
                    unguarded.setdefault(attr, []).append((method.name,
                                                           store))
        for attr in sorted(guarded):
            for method_name, store in unguarded.get(attr, ()):
                yield self.finding(
                    store,
                    f"self.{attr} is written under a lock elsewhere in "
                    f"{cls.name} but stored unguarded in {method_name}()")


def _self_attr_stores(method: ast.AST):
    """Yield ``(attr_name, store_node, under_lock)`` for ``self.X = ...``."""

    def walk(node: ast.AST, under_lock: bool):
        if isinstance(node, ast.With):
            holds = any(_is_lock_expr(item.context_expr)
                        for item in node.items)
            for child in node.body:
                yield from walk(child, under_lock or holds)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)) and node is not method:
            return  # nested scope: a different "self" discipline
        targets = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        for target in targets:
            if (isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"):
                yield target.attr, node, under_lock
        for child in ast.iter_child_nodes(node):
            yield from walk(child, under_lock)

    yield from walk(method, False)


# --------------------------------------------------------------------------- #
# R2: sealed-chunk immutability
# --------------------------------------------------------------------------- #
class SealedChunkRule(Rule):
    """Only the unsealed tail chunk (index ``-1``) may be mutated.

    Sealed chunks are published to concurrent readers without a lock
    (scans, zone-map pruning, numpy snapshots — the ragged-snapshot race of
    PR 2/4 came from exactly this).  Any mutator call or element store on a
    chunk obtained with a non-``-1`` chunk index is therefore a race.
    """

    rule_id = "sealed-chunk"
    description = ("chunk storage (``*_chunks``/``zone_maps``) may only be "
                   "mutated at the tail index -1")

    def check(self, tree: ast.Module, source: str) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(node)

    def _check_function(self, function: ast.AST) -> Iterator[Finding]:
        # Aliases bound from a sealed (non-tail) chunk expression.
        sealed_aliases: set = set()
        tail_aliases: set = set()
        for node in ast.walk(function):
            if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name):
                kind = _chunk_expr_kind(node.value)
                if kind == "sealed":
                    sealed_aliases.add(node.targets[0].id)
                elif kind == "tail":
                    tail_aliases.add(node.targets[0].id)

        def receiver_is_sealed(node: ast.AST) -> bool:
            kind = _chunk_expr_kind(node)
            if kind == "sealed":
                return True
            if isinstance(node, ast.Name):
                return (node.id in sealed_aliases
                        and node.id not in tail_aliases)
            return False

        for node in ast.walk(function):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _MUTATORS
                    and receiver_is_sealed(node.func.value)):
                yield self.finding(
                    node, f".{node.func.attr}() mutates a sealed chunk "
                          f"(only the tail chunk [-1] is writable)")
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (node.targets if isinstance(node, ast.Assign)
                           else [node.target])
                for target in targets:
                    if (isinstance(target, ast.Subscript)
                            and receiver_is_sealed(target.value)):
                        yield self.finding(
                            node, "element store into a sealed chunk "
                                  "(only the tail chunk [-1] is writable)")


def _chunk_expr_kind(node: ast.AST) -> Optional[str]:
    """Classify ``<chunk-attr>[col][idx]``: 'tail' (idx == -1), 'sealed'
    (any other idx), or None (not a chunk element expression)."""
    if not isinstance(node, ast.Subscript):
        return None
    inner = node.value
    if not isinstance(inner, ast.Subscript):
        return None
    name = _terminal_name(inner.value)
    if name is None or not _CHUNK_ATTR.search(name):
        return None
    index = node.slice
    if (isinstance(index, ast.UnaryOp) and isinstance(index.op, ast.USub)
            and isinstance(index.operand, ast.Constant)
            and index.operand.value == 1):
        return "tail"
    return "sealed"


# --------------------------------------------------------------------------- #
# R3: hot-path lock ban
# --------------------------------------------------------------------------- #
class HotPathLockRule(Rule):
    """Codegen'd runtime externs (``rt_*``) must not acquire locks.

    The morsel hot path calls these once per tuple; the partitioned-breaker
    design (PR 5 onward) exists so they never synchronise.  The single
    counted ``fallback_lock`` of the non-partitioned escape hatch is the
    one sanctioned exception.
    """

    rule_id = "hot-path-lock"
    description = ("no lock acquisition inside rt_* runtime externs "
                   "(fallback_lock excepted)")

    def check(self, tree: ast.Module, source: str) -> Iterator[Finding]:
        extern_names = _extern_function_names(tree)
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if node.name not in extern_names \
                    and not node.name.startswith("rt_"):
                continue
            yield from self._check_extern(node)

    def _check_extern(self, function: ast.AST) -> Iterator[Finding]:
        for node in ast.walk(function):
            offender = None
            if isinstance(node, ast.With):
                for item in node.items:
                    expr = item.context_expr
                    if _is_lock_expr(expr) and not _sanctioned(expr):
                        offender = f"with {ast.unparse(expr)}:"
            elif (isinstance(node, ast.Call)
                  and isinstance(node.func, ast.Attribute)
                  and node.func.attr == "acquire"
                  and _is_lock_expr(node.func.value)
                  and not _sanctioned(node.func.value)):
                offender = f"{ast.unparse(node.func)}()"
            elif (isinstance(node, ast.Call)
                  and _terminal_name(node.func) in ("Lock", "RLock",
                                                    "Semaphore",
                                                    "BoundedSemaphore")):
                offender = f"{ast.unparse(node.func)}() constructed"
            if offender:
                yield self.finding(
                    node, f"lock use inside runtime extern "
                          f"{function.name}(): {offender} — hot-path "
                          f"externs must stay lock-free")


def _sanctioned(node: ast.AST) -> bool:
    name = _terminal_name(node)
    return name is not None and bool(_SANCTIONED.search(name))


def _extern_function_names(tree: ast.Module) -> set:
    """Functions whose ``__name__`` is rebound to an ``rt_*`` string.

    The runtime names its closures generically (``update``, ``emit``) and
    stamps the extern name afterwards::

        update.__name__ = f"rt_agg_update_{sink.agg_id}"
    """
    names: set = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        target = node.targets[0]
        if not (isinstance(target, ast.Attribute)
                and target.attr == "__name__"
                and isinstance(target.value, ast.Name)):
            continue
        if _leading_literal(node.value).startswith("rt_"):
            names.add(target.value.id)
    return names


def _leading_literal(node: ast.AST) -> str:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.JoinedStr) and node.values:
        return _leading_literal(node.values[0])
    return ""


# --------------------------------------------------------------------------- #
# R4: stats-key guard
# --------------------------------------------------------------------------- #
class StatsKeyRule(Rule):
    """No stringly-keyed ``stats["..."]`` dicts outside ``telemetry/``.

    Engine code reports observations through the typed telemetry
    instruments (``MetricsRegistry``, ``QueryTrace``,
    ``PipelineRunStats``); the telemetry package owns the only legitimate
    string-keyed surfaces (snapshot dicts, exporters).  Replaces the old
    grep CI guard with the same policy, minus its false positives on
    comments and string literals.
    """

    rule_id = "stats-key"
    description = ("no string-keyed subscripts on *stats containers "
                   "outside src/repro/telemetry/")

    def applies_to(self, path: Path) -> bool:
        return "telemetry" not in path.parts

    def check(self, tree: ast.Module, source: str) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Subscript):
                continue
            if not (isinstance(node.slice, ast.Constant)
                    and isinstance(node.slice.value, str)):
                continue
            name = _terminal_name(node.value)
            if name is not None and name.lower().endswith("stats"):
                yield self.finding(
                    node, f"string-keyed subscript {name}[{node.slice.value!r}] "
                          f"— use the typed telemetry instruments instead")


# --------------------------------------------------------------------------- #
# R5: result-cache key construction
# --------------------------------------------------------------------------- #
class ResultCacheKeyRule(Rule):
    """Result-cache lookups must key through ``result_cache_key()``.

    The semantic result cache is only sound if every probe and store uses
    the one sanctioned key constructor: it type-qualifies binding values
    (``a = 2`` and ``a = 2.0`` hash equal but are different queries) and
    fixes the ``(plan key, mode, bindings)`` structure invalidation relies
    on.  A hand-rolled tuple key at any ``.get()``/``.put()`` site would
    silently reintroduce the cross-type collision, so the key argument
    must be a direct ``result_cache_key(...)`` call or a local assigned
    from one in the same function.
    """

    rule_id = "result-cache-key"
    description = ("result-cache .get()/.put() keys must come from "
                   "result_cache_key()")

    def check(self, tree: ast.Module, source: str) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(node)

    def _check_function(self, function: ast.AST) -> Iterator[Finding]:
        sanctioned: set = set()
        for node in ast.walk(function):
            if isinstance(node, ast.Assign) \
                    and _is_key_constructor_call(node.value):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        sanctioned.add(target.id)
        for node in ast.walk(function):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in ("get", "put")
                    and _is_result_cache_expr(node.func.value)
                    and node.args):
                continue
            key = node.args[0]
            if _is_key_constructor_call(key):
                continue
            if isinstance(key, ast.Name) and key.id in sanctioned:
                continue
            yield self.finding(
                node, f".{node.func.attr}() on a result cache with a key "
                      f"not built by result_cache_key() — hand-rolled keys "
                      f"lose the type qualification of binding values")


def _is_result_cache_expr(node: ast.AST) -> bool:
    name = _terminal_name(node)
    return name is not None and "result_cache" in name


def _is_key_constructor_call(node: ast.AST) -> bool:
    return (isinstance(node, ast.Call)
            and _terminal_name(node.func) == "result_cache_key")


#: Registry of active rules, in reporting order.
ALL_RULES = (LockDisciplineRule, SealedChunkRule, HotPathLockRule,
             StatsKeyRule, ResultCacheKeyRule)
