"""AST-based concurrency/invariant linter for the engine's own source.

The engine's past bug classes (publish-order races on chunk sealing, ragged
numpy snapshots, unguarded writes to lock-protected attributes, locks inside
codegen'd hot paths) are all *patterns in the Python source*, not properties
of any single run — so they are enforced here, statically, over
``src/repro/**`` in CI:

    python -m repro.analysis.lint src/repro

Rules are plugins: subclass :class:`Rule`, implement ``check(tree, source)``
yielding :class:`Finding` objects, and add the class to
:data:`repro.analysis.lint.rules.ALL_RULES`.  A finding can be suppressed
for one line with a trailing ``# lint: ignore[rule-id]`` comment.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

_SUPPRESS = re.compile(r"#\s*lint:\s*ignore\[([a-z0-9-]+)\]")


@dataclass(frozen=True)
class Finding:
    """One lint violation."""

    rule: str
    path: str
    line: int
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


class Rule:
    """Base class of all lint rules.

    ``rule_id`` is the stable kebab-case identifier used in output and in
    ``# lint: ignore[...]`` suppressions; ``description`` is one line for
    ``--list``.  ``check`` receives the parsed module and the source text
    and yields findings (``path`` may be left empty — the driver fills it
    in).
    """

    rule_id: str = ""
    description: str = ""

    def check(self, tree: ast.Module, source: str) -> Iterator[Finding]:
        raise NotImplementedError

    def applies_to(self, path: Path) -> bool:
        """Whether this rule runs over ``path`` (default: every file)."""
        return True

    def finding(self, node: ast.AST, message: str) -> Finding:
        return Finding(self.rule_id, "", getattr(node, "lineno", 0), message)


def _suppressed_lines(source: str) -> dict[int, set]:
    suppressed: dict[int, set] = {}
    for number, text in enumerate(source.splitlines(), start=1):
        for match in _SUPPRESS.finditer(text):
            suppressed.setdefault(number, set()).add(match.group(1))
    return suppressed


def lint_file(path: Path, rules: Iterable[Rule]) -> list:
    """Run ``rules`` over one file and return its findings."""
    source = path.read_text()
    tree = ast.parse(source, filename=str(path))
    suppressed = _suppressed_lines(source)
    findings = []
    for rule in rules:
        if not rule.applies_to(path):
            continue
        for found in rule.check(tree, source):
            if rule.rule_id in suppressed.get(found.line, ()):
                continue
            findings.append(Finding(found.rule, str(path), found.line,
                                    found.message))
    return findings


def lint_paths(paths: Iterable[Path], rules: Iterable[Rule]) -> list:
    """Run ``rules`` over files/trees and return all findings, sorted."""
    rules = list(rules)
    findings = []
    for root in paths:
        root = Path(root)
        files = sorted(root.rglob("*.py")) if root.is_dir() else [root]
        for file in files:
            findings.extend(lint_file(file, rules))
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings
