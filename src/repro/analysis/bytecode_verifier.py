"""Bytecode verifier for the VM tier (abstract interpretation).

The IR tier has an LLVM-style structural verifier; this module gives the
bytecode tier the same safety net.  After :func:`repro.vm.translate_function`
(and the register allocator behind it) has produced a
:class:`repro.vm.BytecodeFunction`, :func:`verify_bytecode` checks that the
flat instruction list is well formed along *every* path:

* every opcode is known and carries an :data:`repro.vm.opcodes.OPCODE_SIGNATURES`
  entry,
* jump targets are absolute instruction indices inside the code list,
* execution can never fall off the end of the code,
* every register operand addresses a slot of the register file, and no
  instruction overwrites the reserved constant slots (0/1) or a pooled
  constant slot,
* call descriptors are structurally valid ``(impl, arg_slots)`` pairs,
* a forward dataflow over the instruction-level CFG proves that every
  register read is preceded by a write (or frame initialisation: reserved
  constants, the constant pool, the argument slots) on **all** paths.

:func:`verify_allocation` separately cross-checks a register allocation
against a fresh liveness computation (:mod:`repro.vm.liveness`): two values
may share a slot only if their live ranges cannot overlap under the
allocator's own reuse rules.
"""

from __future__ import annotations

from typing import Optional

from ..errors import BytecodeVerificationError
from ..ir.analysis import LoopInfo
from ..ir.function import Function
from ..vm.bytecode import BytecodeFunction
from ..vm.liveness import LiveRange, compute_live_ranges
from ..vm.opcodes import OPCODE_SIGNATURES, BCInstruction, Opcode
from ..vm.regalloc import RESERVED_SLOTS, RegisterAllocation

#: Fields of a :class:`BCInstruction` by name, for signature-driven access.
_FIELDS = ("a1", "a2", "a3", "lit")

#: ``BCInstruction`` tuple index per field name -- indexed access is much
#: cheaper than ``getattr`` on the per-instruction hot path.
_FIELD_INDEX = {name: BCInstruction._fields.index(name) for name in _FIELDS}

#: Per-opcode signature with field names resolved to tuple indices:
#: ``(read_indices, write_indices, jump_indices, call, falls_through)``.
_INDEXED_SIGNATURES = {
    op: (tuple(_FIELD_INDEX[name] for name in sig.reads),
         tuple(_FIELD_INDEX[name] for name in sig.writes),
         tuple(_FIELD_INDEX[name] for name in sig.jumps),
         sig.call, sig.falls_through)
    for op, sig in OPCODE_SIGNATURES.items()
}


def _field(inst: BCInstruction, name: str):
    return getattr(inst, name)


def _fail(message: str, function: BytecodeFunction, offset: int = None
          ) -> None:
    instruction = None
    if offset is not None and 0 <= offset < len(function.code):
        instruction = repr(function.code[offset]).strip()
    raise BytecodeVerificationError(message, function_name=function.name,
                                    offset=offset, instruction=instruction)


# --------------------------------------------------------------------------- #
# structural checks + defined-register dataflow
# --------------------------------------------------------------------------- #
def verify_bytecode(function: BytecodeFunction) -> None:
    """Verify one translated function.  Raises
    :class:`BytecodeVerificationError` on the first violation."""
    code = function.code
    if not code:
        _fail("function has no instructions", function)
    num_registers = function.num_registers

    # Frame-initialised slots: reserved constants, pooled constants, args.
    constant_slots = set()
    for slot, _value in function.constant_slots:
        if not (0 <= slot < num_registers):
            _fail(f"constant slot {slot} outside the register file "
                  f"(size {num_registers})", function)
        if slot < RESERVED_SLOTS or slot in constant_slots:
            _fail(f"constant pool reuses slot {slot}", function)
        constant_slots.add(slot)
    for slot in function.arg_slots:
        if not (0 <= slot < num_registers):
            _fail(f"argument slot {slot} outside the register file "
                  f"(size {num_registers})", function)

    #: Slots no instruction may ever write: the reserved 0/1 cells and the
    #: pooled constants (both initialised once per frame, read-only after).
    immutable = 0
    for slot in range(min(RESERVED_SLOTS, num_registers)):
        immutable |= 1 << slot
    for slot in constant_slots:
        immutable |= 1 << slot

    initial = immutable
    for slot in function.arg_slots:
        initial |= 1 << slot

    reads_of: list[list] = []       # per instruction: slots read
    read_mask: list[int] = []       # per instruction: bitmask of slots read
    write_mask: list[int] = []      # per instruction: bitmask of slots written
    successors: list[list] = []     # per instruction: successor indices

    code_len = len(code)
    signatures = _INDEXED_SIGNATURES
    for offset, inst in enumerate(code):
        indexed = signatures.get(inst.op)
        if indexed is None:
            try:
                opcode = Opcode(inst.op)
            except ValueError:
                _fail(f"unknown opcode {inst.op!r}", function, offset)
            _fail(f"opcode {opcode.name} has no signature "
                  f"(OPCODE_SIGNATURES is out of date)", function, offset)
        read_fields, write_fields, jump_fields, is_call, falls = indexed

        reads = []
        for index in read_fields:
            slot = inst[index]
            if not isinstance(slot, int) or not (0 <= slot < num_registers):
                _fail(f"{Opcode(inst.op).name} reads register {slot!r} outside the "
                      f"register file (size {num_registers})",
                      function, offset)
            reads.append(slot)

        mask = 0
        for index in write_fields:
            slot = inst[index]
            if not isinstance(slot, int) or not (0 <= slot < num_registers):
                _fail(f"{Opcode(inst.op).name} writes register {slot!r} outside the "
                      f"register file (size {num_registers})",
                      function, offset)
            if (immutable >> slot) & 1:
                _fail(f"{Opcode(inst.op).name} overwrites read-only "
                      f"constant slot {slot}", function, offset)
            mask |= 1 << slot

        if is_call:
            descriptor = inst.lit
            if (not isinstance(descriptor, tuple) or len(descriptor) != 2
                    or not callable(descriptor[0])):
                _fail(f"{Opcode(inst.op).name} has a malformed call descriptor "
                      f"{descriptor!r} (expected (impl, arg_slots))",
                      function, offset)
            for slot in descriptor[1]:
                if not isinstance(slot, int) \
                        or not (0 <= slot < num_registers):
                    _fail(f"{Opcode(inst.op).name} argument register {slot!r} "
                          f"outside the register file (size {num_registers})",
                          function, offset)
                reads.append(slot)

        if jump_fields:
            succ = []
            for index in jump_fields:
                target = inst[index]
                if not isinstance(target, int) \
                        or not (0 <= target < code_len):
                    _fail(f"{Opcode(inst.op).name} jump target {target!r} out of "
                          f"range [0, {code_len})", function, offset)
                succ.append(target)
        else:
            succ = []
        if falls:
            if offset + 1 >= code_len:
                _fail(f"{Opcode(inst.op).name} falls off the end of the code",
                      function, offset)
            succ.append(offset + 1)

        reads_of.append(reads)
        rmask = 0
        for slot in reads:
            rmask |= 1 << slot
        read_mask.append(rmask)
        write_mask.append(mask)
        successors.append(succ)

    # Forward dataflow: a register read is legal only if every path from
    # entry wrote the slot first.  IN[i] is the set of definitely-defined
    # slots (bitmask); meet is intersection over predecessors.
    unknown = object()
    defined_in: list = [unknown] * len(code)
    defined_in[0] = initial
    worklist = [0]
    while worklist:
        offset = worklist.pop()
        incoming = defined_in[offset]
        rmask = read_mask[offset]
        if incoming & rmask != rmask:
            for slot in reads_of[offset]:
                if not (incoming >> slot) & 1:
                    _fail(f"{Opcode(code[offset].op).name} reads register "
                          f"{slot}, which is not defined on every path "
                          f"from entry", function, offset)
        outgoing = incoming | write_mask[offset]
        for succ in successors[offset]:
            current = defined_in[succ]
            if current is unknown:
                defined_in[succ] = outgoing
                worklist.append(succ)
            else:
                merged = current & outgoing
                if merged != current:
                    defined_in[succ] = merged
                    worklist.append(succ)


# --------------------------------------------------------------------------- #
# allocation / liveness cross-check
# --------------------------------------------------------------------------- #
def verify_allocation(function: Function, allocation: RegisterAllocation,
                      loop_info: Optional[LoopInfo] = None) -> None:
    """Check an allocation against a fresh liveness computation.

    Raises :class:`BytecodeVerificationError` when two values whose live
    ranges may overlap share a register slot, when a value has no slot, or
    when a slot collides with the constant pool.  The overlap rules mirror
    the allocator's own reuse discipline (:mod:`repro.vm.regalloc`):

    * values spanning several blocks conflict when their block intervals
      intersect at all (spanning slots are only recycled after the range's
      last block is fully processed),
    * two values local to the same block conflict unless one's last use
      strictly precedes the other's definition,
    * a block-local value conflicts with any spanning range whose block
      interval covers its block.
    """
    ranges, _info = compute_live_ranges(function, loop_info)
    first_free = RESERVED_SLOTS + len(allocation.constant_slot_of)

    def fail(message: str) -> None:
        raise BytecodeVerificationError(message,
                                        function_name=function.name)

    constant_slots = sorted(allocation.constant_slot_of.values())
    if len(set(constant_slots)) != len(constant_slots):
        fail("two pooled constants share a register slot")
    for slot in constant_slots:
        if not (RESERVED_SLOTS <= slot < first_free):
            fail(f"constant slot {slot} outside the constant pool region "
                 f"[{RESERVED_SLOTS}, {first_free})")

    by_slot: dict[int, list[LiveRange]] = {}
    for uid, live_range in ranges.items():
        slot = allocation.slot_of.get(uid)
        if slot is None:
            fail(f"value {live_range.value.short_name()} has a live range "
                 f"but no register slot")
        if not (first_free <= slot < allocation.num_registers):
            fail(f"value {live_range.value.short_name()} assigned slot "
                 f"{slot} outside the allocatable region "
                 f"[{first_free}, {allocation.num_registers})")
        by_slot.setdefault(slot, []).append(live_range)

    for slot, shared in by_slot.items():
        if len(shared) < 2:
            continue
        shared.sort(key=lambda r: (r.start_block, r.def_position))
        for i, first in enumerate(shared):
            for second in shared[i + 1:]:
                if second.start_block > first.end_block:
                    break  # sorted by start_block: no later range overlaps
                if _conflicts(first, second):
                    fail(f"values {first.value.short_name()} and "
                         f"{second.value.short_name()} share slot {slot} "
                         f"but their live ranges overlap "
                         f"(blocks [{first.start_block},{first.end_block}] "
                         f"vs [{second.start_block},{second.end_block}])")


def _conflicts(first: LiveRange, second: LiveRange) -> bool:
    """Whether two live ranges may be simultaneously live (allocator rules)."""
    if not first.overlaps(second):
        return False
    if first.single_block and second.single_block:
        # Same block (overlap + single-block implies equal indices): the
        # allocator recycles a local slot only when the previous holder's
        # last use strictly precedes the next definition.
        return not (first.last_use_position < second.def_position
                    or second.last_use_position < first.def_position)
    # At least one range spans blocks: any block-interval intersection is a
    # conflict (spanning slots are held for their whole interval).
    return True
