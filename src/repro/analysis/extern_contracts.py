"""Extern-contract checker for the codegen / runtime boundary.

The code generator declares runtime externs (:class:`repro.ir.ExternFunction`)
with generated names and calls them from every worker function; the runtime
(:mod:`repro.codegen.runtime`) supplies the Python implementations.  Nothing
used to tie the two sides together — a sink extern called without the
threaded ``state`` argument (the PR 5 bug class), an extern whose declared
arity drifts from its implementation, or a "pure" extern that quietly takes
a lock would only surface as a wrong answer three tiers later.

This module verifies every generated module against the declared
:data:`repro.codegen.runtime.EXTERN_CONTRACTS` registry:

* every called extern's name matches a declared contract (unknown externs
  are findings),
* the declared IR arity lies inside the contract's bounds,
* the declared purity matches the contract (``pure`` externs must be
  declared ``has_side_effects=False`` and vice versa),
* sink externs receive the worker function's own first argument (the
  threaded ``state``) as their first call operand, by identity,
* the bound Python implementation positionally accepts the declared arity
  (via :func:`inspect.signature`),
* the implementation's closure/code only references lock-like names when
  the contract grants ``may_lock`` (the fallback-path aggregate update and
  row emission are the only sanctioned lock takers).

:func:`check_extern_contracts` returns findings for tests and tooling;
:func:`verify_extern_contracts` raises :class:`repro.errors.CodegenError`
on the first finding for use as a hard gate.
"""

from __future__ import annotations

import inspect
import re
from dataclasses import dataclass
from typing import Optional

from ..codegen.runtime import EXTERN_CONTRACTS, ExternContract
from ..errors import CodegenError
from ..ir.function import ExternFunction, Function, Module
from ..ir.instructions import CallInst
from ..ir.types import ptr

#: Substrings that mark a code-object name as referring to a lock.
_LOCK_NAME = re.compile(r"lock|mutex|semaphore|rlock", re.IGNORECASE)
#: Lock-related names the ``may_lock`` contracts are allowed to reference:
#: the counted fallback lock itself plus its acquisition counter.
_SANCTIONED_LOCK = re.compile(r"fallback_lock|lock_acquisitions")


@dataclass(frozen=True)
class ContractFinding:
    """One violation of an extern contract."""

    rule: str            # machine-readable rule id, e.g. "sink-state"
    extern: str          # extern name
    function: Optional[str]  # IR function containing the call (None: module)
    message: str

    def __str__(self) -> str:
        where = f" in {self.function}" if self.function else ""
        return f"[{self.rule}] @{self.extern}{where}: {self.message}"


def find_contract(name: str) -> Optional[ExternContract]:
    """Return the declared contract whose pattern fully matches ``name``."""
    for contract in EXTERN_CONTRACTS:
        if re.fullmatch(contract.pattern, name):
            return contract
    return None


def check_extern_contracts(module: Module) -> list:
    """Check every extern call of a module.  Returns a list of findings."""
    findings: list = []
    checked: set = set()
    for function in module.functions.values():
        for inst in function.instructions():
            if not isinstance(inst, CallInst):
                continue
            callee = inst.callee
            if not isinstance(callee, ExternFunction):
                continue  # direct IR-to-IR call: the IR verifier's job
            contract = find_contract(callee.name)
            if contract is None:
                if callee.name not in checked:
                    checked.add(callee.name)
                    findings.append(ContractFinding(
                        "undeclared-extern", callee.name, function.name,
                        "extern matches no contract in EXTERN_CONTRACTS"))
                continue
            if id(callee) not in checked:
                checked.add(id(callee))
                findings.extend(_check_declaration(callee, contract,
                                                   function.name))
            findings.extend(_check_call_site(inst, callee, contract,
                                             function))
    return findings


def verify_extern_contracts(module: Module) -> None:
    """Raise :class:`CodegenError` on the first extern-contract violation."""
    findings = check_extern_contracts(module)
    if findings:
        raise CodegenError("extern contract violation: "
                           + "; ".join(str(f) for f in findings[:3]))


# --------------------------------------------------------------------------- #
# declaration-level checks (once per extern object)
# --------------------------------------------------------------------------- #
def _check_declaration(callee: ExternFunction, contract: ExternContract,
                       function_name: str) -> list:
    findings = []

    arity = len(callee.arg_types)
    if arity < contract.min_args or (contract.max_args is not None
                                     and arity > contract.max_args):
        upper = "inf" if contract.max_args is None else contract.max_args
        findings.append(ContractFinding(
            "arity", callee.name, function_name,
            f"declared with {arity} argument(s), contract allows "
            f"[{contract.min_args}, {upper}]"))

    if contract.pure and callee.has_side_effects:
        findings.append(ContractFinding(
            "purity", callee.name, function_name,
            "contract declares the extern pure but it is marked "
            "has_side_effects=True"))
    if not contract.pure and not callee.has_side_effects:
        findings.append(ContractFinding(
            "purity", callee.name, function_name,
            "extern is marked side-effect free but its contract does not "
            "declare it pure (CSE/DCE could drop a stateful call)"))

    if contract.is_sink and (not callee.arg_types
                             or callee.arg_types[0] != ptr):
        findings.append(ContractFinding(
            "sink-state", callee.name, function_name,
            "sink extern must declare the threaded state pointer as its "
            "first argument"))

    impl = callee.python_impl
    if impl is None:
        findings.append(ContractFinding(
            "impl-missing", callee.name, function_name,
            "extern has no bound Python implementation"))
        return findings

    findings.extend(_check_impl_arity(callee, impl, function_name))
    findings.extend(_check_impl_locks(callee, contract, impl, function_name))
    return findings


def _check_impl_arity(callee: ExternFunction, impl, function_name: str
                      ) -> list:
    try:
        signature = inspect.signature(impl)
    except (TypeError, ValueError):
        return []  # builtins without introspectable signatures
    lower = 0
    upper: Optional[int] = 0
    for parameter in signature.parameters.values():
        if parameter.kind in (parameter.POSITIONAL_ONLY,
                              parameter.POSITIONAL_OR_KEYWORD):
            if parameter.default is parameter.empty:
                lower += 1
            if upper is not None:
                upper += 1
        elif parameter.kind == parameter.VAR_POSITIONAL:
            upper = None
    arity = len(callee.arg_types)
    if arity < lower or (upper is not None and arity > upper):
        bound = "inf" if upper is None else upper
        return [ContractFinding(
            "impl-signature", callee.name, function_name,
            f"declared IR arity {arity} but the Python implementation "
            f"{impl.__name__!r} accepts [{lower}, {bound}] positional "
            f"argument(s)")]
    return []


def _iter_code_objects(impl):
    code = getattr(impl, "__code__", None)
    if code is None:
        return
    stack = [code]
    while stack:
        current = stack.pop()
        yield current
        for const in current.co_consts:
            if type(const).__name__ == "code":
                stack.append(const)


def _check_impl_locks(callee: ExternFunction, contract: ExternContract,
                      impl, function_name: str) -> list:
    lockish: set = set()
    for code in _iter_code_objects(impl):
        for name in (*code.co_freevars, *code.co_names):
            if _LOCK_NAME.search(name):
                lockish.add(name)
    closure = getattr(impl, "__closure__", None)
    code = getattr(impl, "__code__", None)
    if closure and code:
        # Also catch a lock smuggled through an innocuously named freevar.
        for name, cell in zip(code.co_freevars, closure):
            try:
                value = cell.cell_contents
            except ValueError:
                continue
            if _LOCK_NAME.search(type(value).__name__) or \
                    hasattr(value, "acquire") and hasattr(value, "release"):
                lockish.add(name)
    if not lockish:
        return []
    if not contract.may_lock:
        return [ContractFinding(
            "lock", callee.name, function_name,
            f"implementation references lock-like name(s) "
            f"{sorted(lockish)} but its contract does not grant may_lock")]
    unsanctioned = {name for name in lockish
                    if not _SANCTIONED_LOCK.search(name)}
    if unsanctioned:
        return [ContractFinding(
            "lock", callee.name, function_name,
            f"may_lock extern references unsanctioned lock name(s) "
            f"{sorted(unsanctioned)} (only the counted fallback lock is "
            f"allowed)")]
    return []


# --------------------------------------------------------------------------- #
# call-site checks (per CallInst)
# --------------------------------------------------------------------------- #
def _check_call_site(inst: CallInst, callee: ExternFunction,
                     contract: ExternContract, function: Function) -> list:
    if not contract.is_sink:
        return []
    state = function.args[0] if function.args else None
    if not inst.args or inst.args[0] is not state:
        got = inst.args[0].short_name() if inst.args else "<nothing>"
        return [ContractFinding(
            "sink-state", callee.name, function.name,
            f"sink extern must receive the worker's threaded state "
            f"argument first, got {got}")]
    return []
