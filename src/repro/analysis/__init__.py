"""Static verification and lint layer.

Three verifiers and one linter guard the engine's correctness invariants:

* :mod:`repro.ir.verifier` (re-exported here for one-stop imports) — the
  LLVM-style structural verifier for generated IR,
* :mod:`repro.analysis.bytecode_verifier` — abstract interpretation over
  translated VM bytecode plus a register-allocation/liveness cross-check,
* :mod:`repro.analysis.extern_contracts` — the declared runtime extern
  contracts (arity, purity, sink state-threading, lock discipline) checked
  against generated call sites and the bound Python implementations,
* :mod:`repro.analysis.lint` — an AST-based concurrency/invariant linter
  over the engine's own source (``python -m repro.analysis.lint src/repro``).

Pass-pipeline validation (re-verifying IR after each optimization pass) is
switched by ``ExecOptions.verify_ir``; when that option is unset the
``REPRO_VERIFY_IR`` environment variable decides (see
:func:`verify_ir_enabled`), which is how CI keeps verification on for the
whole test suite.
"""

from __future__ import annotations

import os

from ..ir.verifier import verify_function, verify_module
from .bytecode_verifier import verify_allocation, verify_bytecode
from .extern_contracts import (
    ContractFinding,
    check_extern_contracts,
    find_contract,
    verify_extern_contracts,
)

_TRUTHY = {"1", "true", "yes", "on"}


def verify_ir_enabled(option=None) -> bool:
    """Resolve the effective verify-ir switch.

    An explicit ``ExecOptions.verify_ir`` value wins; otherwise the
    ``REPRO_VERIFY_IR`` environment variable decides (unset or a falsy
    string means off).
    """
    if option is not None:
        return bool(option)
    return os.environ.get("REPRO_VERIFY_IR", "").strip().lower() in _TRUTHY


__all__ = [
    "ContractFinding",
    "check_extern_contracts",
    "find_contract",
    "verify_allocation",
    "verify_bytecode",
    "verify_extern_contracts",
    "verify_function",
    "verify_ir_enabled",
    "verify_module",
]
