"""The database engine facade.

:class:`Database` glues the whole stack together: catalog, SQL front end,
planner, code generator and the execution tiers.  It exposes the same
execution modes the paper evaluates:

* ``"ir-interp"``     -- direct IR interpretation (the "LLVM interpreter"
  stand-in, slowest; Fig. 2 only),
* ``"bytecode"``      -- translate to VM bytecode and interpret,
* ``"unoptimized"``   -- compile every worker without IR passes,
* ``"optimized"``     -- run the pass pipeline and compile every worker,
* ``"adaptive"``      -- the paper's contribution: start in bytecode,
  switch per pipeline based on runtime feedback,
* ``"volcano"`` / ``"vectorized"`` -- the interpretation baselines
  (PostgreSQL / MonetDB stand-ins) implemented in :mod:`repro.baselines`.

Every :class:`QueryResult` carries a per-phase timing breakdown (parse,
analysis, planning, code generation, compilation, execution), which is what
the Table I / Fig. 1 / Fig. 3 reproductions report.

Repeated queries are served from a plan/artifact cache: ``execute`` looks up
the normalized SQL in an LRU :class:`repro.cache.PlanCache` of
:class:`repro.prepared.PreparedQuery` entries, so re-executions skip
parse/bind/plan/codegen entirely and reuse bytecode translations and
compiled tiers.  ``prepare_query`` exposes the same machinery explicitly;
``use_cache=False`` bypasses it for cold-path measurements.  Entries are
invalidated through the catalog's per-table version counters (bumped by
``insert`` and DDL).

Concurrent serving goes through :mod:`repro.scheduler`: a database owns one
shared :class:`~repro.scheduler.WorkerPool` (all parallel executions draw
their morsel workers from it -- no per-query thread spawning), one shared
:class:`~repro.scheduler.CompileExecutor` for background tier compilation,
and a lazily created :class:`~repro.scheduler.QueryScheduler` behind
``submit(sql) -> QueryTicket`` with bounded admission.  ``session()``
creates per-client default/stat carriers, and ``close()`` (or using the
database as a context manager) shuts the serving machinery down.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field, replace
from typing import Optional, Sequence

from .cache import PlanCache, auto_parameterize_sql, normalize_sql
from .result_cache import ResultCache, result_cache_key
from .catalog import Catalog
from .codegen import CodeGenerator, GeneratedQuery, QueryRuntime, QueryState
from .errors import ExecutionError, ReproError, SchedulerError
from .options import ExecOptions
from .optimizer import Planner, PlanningResult
from .parameters import bind_parameter_values
from .plan.physical import AggregateSink, HashBuildSink, OutputSink
from .plan.sargs import plan_pipeline_scan
from .telemetry import (MetricsRegistry, QueryTelemetry, TELEMETRY_LEVELS,
                        build_explain_analyze, build_explain_plan,
                        split_explain)
from .scheduler import CompileExecutor, QueryScheduler, QueryTicket, \
    Session, WorkerPool
from .semantics import Binder, BoundQuery
from .sqlparser import parse
from .types import SQLType, decode_internal_value
from .vm import IRInterpreter, VirtualMachine, translate_function
from .backend import compile_function
from .codegen.runtime import BreakerRun, round_up_pow2, strip_sort_keys

#: Execution modes backed by the compiled-query engine.
ENGINE_MODES = ("ir-interp", "bytecode", "unoptimized", "optimized",
                "adaptive")
#: Baseline engines (separate implementations).
BASELINE_MODES = ("volcano", "vectorized")

#: Default morsel size (tuples per work unit), as in the paper (~10k).
DEFAULT_MORSEL_SIZE = 10_000


def _hint_type_tag(hints: list) -> str:
    """Cache-key suffix encoding the natural types of auto-param literals."""
    codes = {int: "i", float: "f", str: "s"}
    return "#" + "".join(codes.get(type(hint), "x") for hint in hints)

#: Default worker-pool size of a database (shared by all its queries).
DEFAULT_WORKERS = 4


@dataclass
class PhaseTimings:
    """Wall-clock seconds spent in each phase of one query execution."""

    parse: float = 0.0
    bind: float = 0.0
    plan: float = 0.0
    codegen: float = 0.0
    compile: float = 0.0      # bytecode translation or backend compilation
    execution: float = 0.0
    #: Seconds spent queued before the scheduler started the query (0.0 for
    #: direct ``execute`` calls).  Deliberately *not* part of :attr:`total`,
    #: which keeps its meaning of "time spent doing work"; end-to-end
    #: latency of a submitted query is ``queue + total``.
    queue: float = 0.0
    #: Storage chunks skipped / scanned by zone-map pruning, summed over all
    #: table-scan pipelines of the execution (not part of :attr:`total`).
    chunks_pruned: int = 0
    chunks_scanned: int = 0
    #: Pipeline-breaker metrics: hash partitions per breaker, total partial
    #: entries across worker contexts before merging, wall-clock seconds of
    #: the merge phases (part of :attr:`execution`, broken out here) and
    #: fallback-lock acquisitions (0 whenever the partitioned path ran).
    breaker_partitions: int = 0
    breaker_partials: int = 0
    breaker_merge: float = 0.0
    breaker_locks: int = 0

    @property
    def planning(self) -> float:
        """Parsing + semantic analysis + optimization (paper's "plan")."""
        return self.parse + self.bind + self.plan

    @property
    def total(self) -> float:
        return (self.parse + self.bind + self.plan + self.codegen
                + self.compile + self.execution)

    @property
    def latency(self) -> float:
        """End-to-end seconds including scheduler queue wait."""
        return self.queue + self.total


@dataclass
class PipelineExecution:
    """Execution statistics of one pipeline."""

    name: str
    rows: int
    morsels: int
    seconds: float
    mode_history: list[str] = field(default_factory=list)
    ir_instructions: int = 0
    #: Breaker metrics of this pipeline.  ``breaker_partitions`` is the
    #: hash-partition count of a partitioned join-build/aggregate breaker
    #: (0 for output pipelines and on the single-table fallback path);
    #: ``breaker_partial_entries`` counts entries across all worker
    #: partials before the merge (buffered rows for output pipelines).
    breaker_partitions: int = 0
    breaker_partial_entries: int = 0
    merge_seconds: float = 0.0
    #: Operator chain of the pipeline (``Pipeline.describe()``), filled by
    #: every execution path so EXPLAIN ANALYZE can annotate the plan.
    description: str = ""
    #: Rows the pipeline's sink produced: hash-table entries for a join
    #: build (only when ``collect_operator_stats`` is on -- counting them
    #: is O(keys)), groups for an aggregation, result rows for the output
    #: sink.  ``None`` when not collected.
    rows_out: Optional[int] = None
    #: Zone-map pruning outcome of this pipeline's scan.
    chunks_scanned: int = 0
    chunks_pruned: int = 0


@dataclass
class QueryResult:
    """The outcome of one query execution."""

    column_names: list[str]
    column_types: list[SQLType]
    rows: list[tuple]
    mode: str
    timings: PhaseTimings
    pipelines: list[PipelineExecution] = field(default_factory=list)
    ir_instructions: int = 0
    trace: Optional[object] = None
    #: True when this execution reused a prepared/cached plan (the parse /
    #: bind / plan / codegen phases were skipped entirely) or was served
    #: from the semantic result cache.
    cached: bool = False
    #: What was reused: ``"plan"`` (cached plan, real execution),
    #: ``"result"`` (materialized rows, no execution at all), or ``None``
    #: for a cold run.
    cache_source: Optional[str] = None
    #: True when a LIMIT-without-ORDER-BY quota cancelled morsel dispatch
    #: before the scan was exhausted.
    early_terminated: bool = False
    #: The unified :class:`repro.telemetry.QueryTrace` of this execution
    #: (lifecycle spans, tier-switch events; morsel events at telemetry
    #: level ``"trace"``).  ``None`` at level ``"off"``.
    query_trace: Optional[object] = None
    #: The structured :class:`repro.telemetry.ExplainResult` when this
    #: result came from an EXPLAIN / EXPLAIN ANALYZE statement.
    explain: Optional[object] = None

    @property
    def query_id(self) -> str:
        """Stable query id assigned by telemetry ("" at level "off")."""
        if self.query_trace is None:
            return ""
        return self.query_trace.query_id

    @property
    def stats(self) -> dict:
        """Execution statistics of this query (pruning + breaker counters)."""
        return {
            "mode": self.mode,
            "cached": self.cached,
            "cache_source": self.cache_source,
            "chunks_pruned": self.timings.chunks_pruned,
            "chunks_scanned": self.timings.chunks_scanned,
            "breaker_partitions": self.timings.breaker_partitions,
            "breaker_partial_entries": self.timings.breaker_partials,
            "breaker_merge_seconds": self.timings.breaker_merge,
            "breaker_lock_acquisitions": self.timings.breaker_locks,
            "limit_early_terminated": self.early_terminated,
        }

    def decoded_rows(self) -> list[tuple]:
        """Rows with DATE/BOOL columns decoded to Python objects."""
        decoded = []
        for row in self.rows:
            decoded.append(tuple(
                decode_internal_value(value, sql_type)
                for value, sql_type in zip(row, self.column_types)))
        return decoded

    def columns(self) -> dict[str, list]:
        """Column name -> list of values, in result-column order."""
        return {name: [row[index] for row in self.rows]
                for index, name in enumerate(self.column_names)}

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)


class Database:
    """A single-node, in-memory database instance.

    ``workers`` sizes the shared worker pool every parallel execution draws
    from; ``max_concurrent`` / ``max_pending`` bound the query scheduler
    behind :meth:`submit` (running queries and the admission queue).  The
    pool, the compile executor and the scheduler are all created lazily, so
    a database used purely synchronously never starts a thread.
    """

    def __init__(self, morsel_size: int = DEFAULT_MORSEL_SIZE,
                 plan_cache_size: int = 64,
                 workers: int = DEFAULT_WORKERS,
                 max_concurrent: Optional[int] = None,
                 max_pending: int = 256,
                 auto_parameterize: bool = True,
                 result_cache_size: Optional[int] = None,
                 result_cache_bytes: Optional[int] = None):
        self.catalog = Catalog()
        self.morsel_size = morsel_size
        self._vm = VirtualMachine()
        #: LRU cache of prepared queries; ``plan_cache_size=0`` disables it.
        self.plan_cache = PlanCache(plan_cache_size)
        #: Semantic result cache above the plan cache: repeated identical
        #: reads return materialized rows with zero execution (see
        #: :mod:`repro.result_cache`).  ``result_cache_size=0`` disables
        #: it; ``ExecOptions.use_result_cache=False`` bypasses per call.
        result_cache_kwargs = {}
        if result_cache_size is not None:
            result_cache_kwargs["capacity"] = result_cache_size
        if result_cache_bytes is not None:
            result_cache_kwargs["max_bytes"] = result_cache_bytes
        self.result_cache = ResultCache(**result_cache_kwargs)
        #: Default for extracting literal constants into synthetic bind
        #: parameters on ``execute`` so differing constants share one plan
        #: cache entry; per-call ``ExecOptions.auto_parameterize`` overrides.
        self.auto_parameterize = bool(auto_parameterize)
        self._workers = max(int(workers), 1)
        self._max_concurrent = max_concurrent
        self._max_pending = max_pending
        self._runtime_lock = threading.RLock()
        self._pool: Optional[WorkerPool] = None
        self._compile_executor: Optional[CompileExecutor] = None
        self._scheduler: Optional[QueryScheduler] = None
        self._servers: list = []
        self._closed = False
        #: Per-database metrics registry (``db.metrics.snapshot()`` /
        #: ``to_prometheus()`` / ``to_json_lines()``) and the query
        #: recorder feeding it.  Per-query recording is gated by
        #: ``ExecOptions.telemetry``; the registry itself always exists.
        self.metrics = MetricsRegistry()
        self._query_telemetry = QueryTelemetry(self.metrics)
        #: Per-call fused-batch size of ``execute_many`` (bindings that ran
        #: through the fused prepared path, after dedup and cache hits).
        self._fused_bindings = self.metrics.histogram(
            "execute_many.fused_bindings",
            "Bindings fused into one execute_many pass")
        self._batch_calls = self.metrics.counter(
            "execute_many.calls", "execute_many batch calls")
        self._batch_bindings = self.metrics.counter(
            "execute_many.bindings", "Total bindings across execute_many")
        self._batch_dispatched = self.metrics.counter(
            "execute_many.dispatched",
            "Bindings served by the grouped-dispatch fallback "
            "(baseline modes)")
        self._register_metric_callbacks()

    def _register_metric_callbacks(self) -> None:
        """Snapshot-time derived metrics over existing stats carriers.

        These read state that is already maintained under its own
        synchronization (scheduler/cache stats, pool liveness, the VM's
        sharded instruction counter), so they cost nothing on the query
        hot path -- the callback only runs when a snapshot is taken.
        """
        register = self.metrics.register_callback
        register("vm.instructions", lambda: self._vm.instructions_executed)
        register("plan_cache.entries", lambda: len(self.plan_cache))
        for name in ("hits", "misses", "evictions", "invalidations"):
            register(f"plan_cache.{name}",
                     lambda n=name: getattr(self.plan_cache.stats, n))
        register("plan_cache.hit_rate",
                 lambda: self.plan_cache.stats.hit_rate)
        register("result_cache.entries", lambda: len(self.result_cache))
        for name in ("hits", "misses", "evictions", "invalidations",
                     "rejected", "bytes"):
            register(f"result_cache.{name}",
                     lambda n=name: getattr(self.result_cache.stats, n))
        register("result_cache.hit_rate",
                 lambda: self.result_cache.stats.hit_rate)
        for name in ("submitted", "completed", "failed", "cancelled",
                     "rejected", "peak_running", "peak_pending"):
            register(f"scheduler.{name}", lambda n=name: (
                getattr(self._scheduler.stats, n)
                if self._scheduler is not None else 0))
        register("scheduler.queue_depth", lambda: (
            self._scheduler.pending_count
            if self._scheduler is not None and not self._scheduler.closed
            else 0))
        register("scheduler.running", lambda: (
            self._scheduler.running_count
            if self._scheduler is not None and not self._scheduler.closed
            else 0))
        register("pool.size", lambda: (
            self._pool.size if self._pool is not None else 0))
        register("pool.alive_workers", lambda: (
            self._pool.alive_workers() if self._pool is not None else 0))

    @property
    def vm_instructions(self) -> int:
        """Total bytecode instructions executed by this database's VM."""
        return self._vm.instructions_executed

    # ------------------------------------------------------------------ #
    # shared execution runtime (pool / compile thread / scheduler)
    # ------------------------------------------------------------------ #
    @property
    def worker_pool(self) -> WorkerPool:
        """The shared morsel worker pool (created lazily)."""
        with self._runtime_lock:
            if self._pool is None or self._pool.closed:
                self._pool = WorkerPool(self._workers, metrics=self.metrics)
            return self._pool

    @property
    def compile_executor(self) -> CompileExecutor:
        """The shared background tier-compilation thread (created lazily)."""
        with self._runtime_lock:
            if self._compile_executor is None or self._compile_executor.closed:
                self._compile_executor = CompileExecutor(metrics=self.metrics)
            return self._compile_executor

    @property
    def scheduler(self) -> QueryScheduler:
        """The admission-controlled query scheduler (created lazily)."""
        with self._runtime_lock:
            if self._closed:
                raise SchedulerError("database is closed")
            if self._scheduler is None or self._scheduler.closed:
                self._scheduler = QueryScheduler(
                    self, self.worker_pool,
                    max_concurrent=self._max_concurrent,
                    max_pending=self._max_pending)
            return self._scheduler

    def submit(self, sql: str, mode: Optional[str] = None,
               threads: Optional[int] = None,
               collect_trace: Optional[bool] = None,
               use_cache: Optional[bool] = None,
               session: Optional[Session] = None, block: bool = True,
               timeout: Optional[float] = None,
               options: Optional[ExecOptions] = None,
               params=None) -> QueryTicket:
        """Submit ``sql`` for asynchronous execution.

        Returns a :class:`~repro.scheduler.QueryTicket` immediately; use
        ``ticket.result()`` / ``ticket.done()`` / ``ticket.cancel()``.  The
        query runs on the shared worker pool once admission control lets it
        through; ``block`` / ``timeout`` govern what happens while the
        bounded admission queue is full.  ``options`` carries the execution
        options (legacy keywords override it); ``params`` supplies bind
        parameter values.
        """
        return self.scheduler.submit(
            sql, mode=mode, threads=threads, collect_trace=collect_trace,
            use_cache=use_cache, session=session, block=block,
            timeout=timeout, options=options, params=params)

    def session(self, mode: Optional[str] = None,
                threads: Optional[int] = None,
                collect_trace: Optional[bool] = None,
                use_cache: Optional[bool] = None,
                name: str = "",
                options: Optional[ExecOptions] = None) -> Session:
        """A new :class:`~repro.scheduler.Session` bound to this database."""
        with self._runtime_lock:
            if self._closed:
                raise SchedulerError("database is closed")
        return Session(self, mode=mode, threads=threads,
                       collect_trace=collect_trace, use_cache=use_cache,
                       name=name, options=options)

    def serve(self, host: str = "127.0.0.1", port: int = 0,
              auth_token: Optional[str] = None, **kwargs):
        """Start a :class:`repro.server.QueryServer` over this database.

        Binds ``host:port`` (``port=0`` picks an ephemeral port -- read it
        back from ``server.port``) and returns the started server.  Every
        accepted connection gets its own :class:`~repro.scheduler.Session`
        and prepared-statement registry; execution flows through
        :meth:`submit`, so admission control surfaces to clients as BUSY
        frames.  The server is closed by :meth:`close` (servers first, so
        wire traffic drains before the scheduler shuts down) or by its own
        ``close()``.
        """
        from .server import QueryServer

        with self._runtime_lock:
            if self._closed:
                raise SchedulerError("database is closed")
        server = QueryServer(self, host=host, port=port,
                             auth_token=auth_token, **kwargs)
        with self._runtime_lock:
            self._servers.append(server)
        try:
            server.start()
        except BaseException:
            self._unregister_server(server)
            raise
        return server

    def _unregister_server(self, server) -> None:
        with self._runtime_lock:
            if server in self._servers:
                self._servers.remove(server)

    def close(self, timeout: Optional[float] = None) -> None:
        """Shut down servers, scheduler, worker pool and compile thread.

        Idempotent and safe while queries are in flight: network servers
        drain first (in-flight wire requests finish or are cancelled at
        their drain deadline), then the scheduler cancels pending
        submissions and waits for running queries, then the pool and the
        compile thread stop.  ``timeout`` bounds the total wait -- when the
        deadline passes, whatever still runs is cancelled or abandoned to
        the daemon threads instead of blocking the caller forever.
        Synchronous ``execute`` keeps working afterwards (parallel
        executions lazily restart a pool), but ``submit``, ``session`` and
        ``serve`` raise.  A second ``close`` is a no-op.
        """
        with self._runtime_lock:
            if self._closed:
                return
            self._closed = True
            servers = list(self._servers)
            scheduler = self._scheduler
            pool = self._pool
            compile_executor = self._compile_executor
        deadline = (None if timeout is None
                    else time.monotonic() + max(float(timeout), 0.0))

        def remaining() -> Optional[float]:
            if deadline is None:
                return None
            return max(deadline - time.monotonic(), 0.0)

        for server in servers:
            server.close(timeout=remaining())
        if scheduler is not None:
            scheduler.close(wait=True, timeout=remaining())
        if pool is not None:
            pool.close(wait=True, timeout=remaining())
        if compile_executor is not None:
            compile_executor.close(wait=True, timeout=remaining())

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # DDL / DML passthroughs
    # ------------------------------------------------------------------ #
    def create_table(self, name: str, columns) -> None:
        self.catalog.create_table(name, columns)

    def drop_table(self, name: str) -> None:
        """Drop a table.

        Routes through the catalog's version counters: the drop bumps the
        table's version, which invalidates its statistics and every cached
        plan that references it (the plan cache drops such entries on the
        next lookup; a directly held ``PreparedQuery`` re-prepares -- and
        then fails its bind against the missing table).
        """
        self.catalog.drop_table(name)

    def insert(self, table_name: str, rows, encode: bool = True) -> int:
        # Version bumping / statistics invalidation happens inside the table
        # itself (the catalog installs a change callback on registration),
        # so every mutation path -- including a failed batch that appended a
        # prefix of its rows, and bulk ``append_columns`` -- invalidates
        # cached plans the same way.
        table = self.catalog.table(table_name)
        return table.insert_rows(rows, encode=encode)

    # ------------------------------------------------------------------ #
    # planning
    # ------------------------------------------------------------------ #
    def prepare(self, sql: str, parameter_hints: Optional[list] = None
                ) -> tuple[BoundQuery, PlanningResult, PhaseTimings]:
        """Parse, bind and plan a query, returning the phase timings so far.

        ``parameter_hints`` optionally carries the literal values extracted
        by auto-parameterization (one per parameter slot); the binder uses
        them to seed parameter types and the optimizer uses them for
        cardinality estimation, so an auto-parameterized statement plans
        exactly like its literal form.
        """
        timings = PhaseTimings()
        start = time.perf_counter()
        statement = parse(sql)
        timings.parse = time.perf_counter() - start

        start = time.perf_counter()
        bound = Binder(self.catalog).bind(statement,
                                          parameter_hints=parameter_hints)
        timings.bind = time.perf_counter() - start

        start = time.perf_counter()
        planning = Planner(self.catalog).plan(bound)
        timings.plan = time.perf_counter() - start
        return bound, planning, timings

    def generate(self, sql: str, parameter_hints: Optional[list] = None
                 ) -> tuple[GeneratedQuery, PlanningResult, PhaseTimings]:
        """Plan a query and generate its IR module (no execution)."""
        _, planning, timings = self.prepare(sql, parameter_hints)
        state = QueryState(planning.physical)
        generator = CodeGenerator(planning.physical, state)
        generated = generator.generate()
        timings.codegen = generated.codegen_seconds
        return generated, planning, timings

    # ------------------------------------------------------------------ #
    # prepared queries / plan cache
    # ------------------------------------------------------------------ #
    def prepare_query(self, sql: str,
                      parameter_hints: Optional[list] = None):
        """The :class:`repro.prepared.PreparedQuery` for ``sql``.

        Consults the plan cache first (keyed on normalized SQL); on a miss
        the query is parsed, bound, planned and code-generated once, and the
        resulting entry is cached for subsequent ``prepare_query`` and
        ``execute`` calls.  ``sql`` may contain ``?`` / ``:name``
        placeholders; supply the values per execution via ``params=``.

        With ``parameter_hints`` (the auto-parameterization path) the key is
        additionally qualified by the hints' natural types: the entry's
        parameter types were inferred from the first-seen constants, so
        ``a = 2`` and ``a = 2.5`` must land on *separate* entries -- an
        INT64-typed plan bound with 2.5 would silently diverge from the
        literal form.  Same-typed constants (the common case) still collide
        on one entry.
        """
        key = normalize_sql(sql)
        if parameter_hints is not None:
            key += _hint_type_tag(parameter_hints)
        if self.plan_cache.capacity > 0:
            prepared = self.plan_cache.get(key)
            if prepared is not None:
                return prepared
        prepared = self._build_prepared(sql, parameter_hints)
        self.plan_cache.put(key, prepared)
        return prepared

    def _build_prepared(self, sql: str,
                        parameter_hints: Optional[list] = None):
        from .prepared import PreparedQuery

        # Snapshot the catalog version before planning: a table change that
        # races with the build then makes the entry invalid instead of being
        # stamped into it as current.
        catalog_version = self.catalog.version
        generated, planning, timings = self.generate(sql, parameter_hints)
        return PreparedQuery(self, sql, generated, planning, timings,
                             catalog_version,
                             parameter_hints=parameter_hints)

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def _validate_options(self, sql: str, opts: ExecOptions) -> None:
        """Reject invalid mode/parameter combinations (shared with submit)."""
        mode = opts.mode
        if mode in BASELINE_MODES:
            if opts.threads > 1:
                raise ExecutionError(
                    f"baseline mode {mode!r} is single-threaded; "
                    f"got threads={opts.threads}")
            if opts.collect_trace:
                raise ExecutionError(
                    f"baseline mode {mode!r} does not record execution "
                    f"traces")
        elif mode not in ENGINE_MODES:
            raise ExecutionError(
                f"unknown execution mode {mode!r}; expected one of "
                f"{ENGINE_MODES + BASELINE_MODES}")
        if opts.telemetry not in TELEMETRY_LEVELS:
            raise ExecutionError(
                f"unknown telemetry level {opts.telemetry!r}; expected one "
                f"of {TELEMETRY_LEVELS}")

    def execute(self, sql: str, mode: Optional[str] = None,
                threads: Optional[int] = None,
                collect_trace: Optional[bool] = None,
                use_cache: Optional[bool] = None,
                use_result_cache: Optional[bool] = None,
                options: Optional[ExecOptions] = None,
                params=None,
                telemetry: Optional[str] = None) -> QueryResult:
        """Execute ``sql`` with the given execution options.

        ``options`` (an :class:`repro.ExecOptions`) describes how to run;
        the legacy ``mode`` / ``threads`` / ``collect_trace`` / ``use_cache``
        keywords (and the ``telemetry`` level) override individual fields.
        ``params`` supplies bind parameter values -- a sequence for ``?``
        placeholders, a mapping for ``:name`` placeholders.

        ``EXPLAIN <select>`` and ``EXPLAIN ANALYZE <select>`` statements are
        recognised here and return the annotated plan as a one-column result
        (the structured form rides along as ``result.explain``); see
        :meth:`explain` for the direct API.

        Engine modes are served through the plan cache: repeated executions
        of the same (normalized) SQL reuse the cached plan, IR and compiled
        tiers.  When a statement without placeholders arrives with caching
        enabled, its literal constants are auto-parameterized (unless opted
        out), so all executions of one query *shape* collide on one cache
        entry regardless of the constants.  ``use_cache=False`` forces a
        cold build of all artifacts from the original text.  Parallel
        executions (``threads > 1``) draw their workers from the database's
        shared pool; the calling thread participates, so this works both for
        direct calls and from scheduler workers.
        """
        opts = ExecOptions.resolve(options, mode=mode, threads=threads,
                                   collect_trace=collect_trace,
                                   use_cache=use_cache,
                                   use_result_cache=use_result_cache,
                                   telemetry=telemetry)
        explain_kind, inner_sql = split_explain(sql)
        if explain_kind == "plan":
            return self._explain_plan(inner_sql, opts)
        if explain_kind == "analyze":
            return self._explain_analyze(inner_sql, opts, params)
        return self._execute_resolved(sql, opts, params)

    def _execute_resolved(self, sql: str, opts: ExecOptions,
                          params=None) -> QueryResult:
        """Validated execution of a plain (non-EXPLAIN) statement."""
        self._validate_options(sql, opts)
        # Level "trace" implies the morsel-event timeline for engine modes;
        # the baselines have no morsel events, so the level degrades to
        # "basic" there (an *explicit* collect_trace still errors above).
        if opts.telemetry == "trace" and not opts.collect_trace \
                and opts.mode in ENGINE_MODES:
            opts = opts.merged(collect_trace=True)
        record = opts.telemetry != "off"
        try:
            if opts.mode in BASELINE_MODES:
                result = self._execute_baseline(sql, opts.mode, params,
                                                options=opts)
            else:
                result = self._execute_engine(sql, opts, params)
        except Exception:
            if record:
                self._query_telemetry.record_failure(opts.mode)
            raise
        if record:
            self._query_telemetry.record_result(sql, result)
        else:
            # Level "off": the executors may still have built a trace for
            # their own bookkeeping; the result must not surface it.
            result.query_trace = None
        return result

    def _execute_engine(self, sql: str, opts: ExecOptions,
                        params=None) -> QueryResult:
        """Engine-mode execution through the plan cache."""
        exec_sql, exec_params, hints = sql, params, None
        use_cache_now = opts.use_cache and self.plan_cache.capacity > 0
        auto = (opts.auto_parameterize if opts.auto_parameterize is not None
                else self.auto_parameterize)
        if auto and use_cache_now and params is None:
            rewritten = auto_parameterize_sql(sql)
            if rewritten is not None:
                exec_sql, extracted = rewritten
                exec_params = extracted
                hints = extracted

        if use_cache_now:
            prepared = self.prepare_query(exec_sql, parameter_hints=hints)
            result = prepared.execute_nowait(options=opts,
                                             params=exec_params)
            if result is not None:
                return result
            # The cached entry is mid-execution on another thread.  Before
            # paying an independent cold build, try the result cache -- a
            # hot identical read should never rebuild just because the
            # shared entry is busy.
            cached = prepared.cached_result(options=opts,
                                            params=exec_params)
            if cached is not None:
                return cached
        prepared = self._build_prepared(exec_sql, parameter_hints=hints)
        return prepared.execute(options=opts, params=exec_params)

    # ------------------------------------------------------------------ #
    # batch bindings / semantic result reuse
    # ------------------------------------------------------------------ #
    def _usable_result_cache(self, opts: ExecOptions):
        """The result cache if this execution may probe/populate it.

        Mirrors ``PreparedQuery._usable_result_cache``: executions that
        exist to observe execution (tracing, per-morsel telemetry,
        operator-stat collection) run for real, and ``use_cache=False``
        implies the result cache off as well.
        """
        if not self.result_cache.enabled:
            return None
        if not opts.use_cache or not opts.use_result_cache:
            return None
        if opts.collect_trace or opts.collect_operator_stats \
                or opts.telemetry == "trace":
            return None
        return self.result_cache

    def execute_many(self, sql: str, bindings, mode: Optional[str] = None,
                     threads: Optional[int] = None,
                     use_cache: Optional[bool] = None,
                     options: Optional[ExecOptions] = None,
                     telemetry: Optional[str] = None) -> list[QueryResult]:
        """Execute one statement for every binding; one result per binding.

        The batch form of :meth:`execute` for parameterized statements:
        ``bindings`` is a sequence of per-execution parameter values (each
        a sequence for ``?`` placeholders, a mapping for ``:name``
        placeholders, or ``None`` for a literal-only statement).  Engine
        modes fuse the whole batch into a single pass over one prepared
        entry -- prepare/validate once, encode all bindings up front,
        reuse compiled tiers across bindings, deduplicate identical
        bindings and serve repeats from the semantic result cache.
        Baseline modes take the grouped-dispatch fallback: one shared
        prepare, then a per-binding dispatch, with the same result-cache
        reuse -- so the API is total across all 7 execution modes.

        EXPLAIN statements are rejected (they describe one execution, not
        a batch); use :meth:`execute` / :meth:`explain` per statement.
        """
        opts = ExecOptions.resolve(options, mode=mode, threads=threads,
                                   use_cache=use_cache, telemetry=telemetry)
        explain_kind, _ = split_explain(sql)
        if explain_kind:
            raise ExecutionError(
                "execute_many does not support EXPLAIN statements; use "
                "execute() or explain() per statement")
        self._validate_options(sql, opts)
        bindings = list(bindings)
        if not bindings:
            return []
        if opts.telemetry == "trace" and not opts.collect_trace \
                and opts.mode in ENGINE_MODES:
            opts = opts.merged(collect_trace=True)
        record = opts.telemetry != "off"
        if record:
            self._batch_calls.inc()
            self._batch_bindings.inc(len(bindings))
        try:
            if opts.mode in BASELINE_MODES:
                results = self._execute_many_baseline(sql, opts, bindings)
                if record:
                    self._batch_dispatched.inc(len(bindings))
            else:
                results = self._execute_many_engine(sql, opts, bindings)
                if record:
                    self._fused_bindings.observe(len(bindings))
        except Exception:
            if record:
                self._query_telemetry.record_failure(opts.mode)
            raise
        for result in results:
            if record:
                self._query_telemetry.record_result(sql, result)
            else:
                result.query_trace = None
        return results

    def _execute_many_engine(self, sql: str, opts: ExecOptions,
                             bindings: list) -> list[QueryResult]:
        """Fused batch execution over one plan-cache entry."""
        if opts.use_cache and self.plan_cache.capacity > 0:
            prepared = self.prepare_query(sql)
            results = prepared.execute_many_nowait(bindings, options=opts)
            if results is not None:
                return results
            # Busy entry: fall through to an independent cold build, same
            # as the single-statement path.
        prepared = self._build_prepared(sql)
        return prepared.execute_many(bindings, options=opts)

    def _execute_many_baseline(self, sql: str, opts: ExecOptions,
                               bindings: list) -> list[QueryResult]:
        """Grouped dispatch: one shared prepare, one dispatch per binding."""
        from .prepared import referenced_tables

        mode = opts.mode
        bound, planning, build_timings = self.prepare(sql)
        encoded = [bind_parameter_values(bound.parameters, binding)
                   for binding in bindings]
        result_cache = self._usable_result_cache(opts)
        plan_key = normalize_sql(sql)
        referenced = referenced_tables(planning)
        results: list[Optional[QueryResult]] = [None] * len(bindings)
        first = True

        def run(values: list) -> QueryResult:
            nonlocal first
            timings = (replace(build_timings) if first else PhaseTimings())
            result = self._run_baseline(planning, timings, mode, opts,
                                        values)
            result.cached = not first
            if result.cached:
                result.cache_source = "plan"
            first = False
            return result

        if result_cache is None:
            for index, values in enumerate(encoded):
                results[index] = run(values)
            return results
        groups: dict[tuple, list[int]] = {}
        for index, values in enumerate(encoded):
            key = result_cache_key(plan_key, mode, values)
            groups.setdefault(key, []).append(index)
        from .prepared import PreparedQuery

        for key, indices in groups.items():
            entry = result_cache.get(key, self.catalog.table_version)
            if entry is not None:
                result = entry.to_result()
            else:
                versions = {name: self.catalog.table_version(name)
                            for name in referenced}
                result = run(encoded[indices[0]])
                result_cache.put(key, versions, result)
            results[indices[0]] = result
            for duplicate in indices[1:]:
                results[duplicate] = PreparedQuery._share_result(result)
        return results

    def cached_result(self, sql: str, params=None,
                      options: Optional[ExecOptions] = None,
                      **overrides) -> Optional[QueryResult]:
        """A pure result-cache probe: the cached result or ``None``.

        Never parses, plans, builds or executes anything -- the plan cache
        is only *peeked* (no stats, no LRU motion) to recover the
        statement's parameter specs, so this is safe to call from latency
        -sensitive contexts like the network server's event loop, which
        uses it to serve hot repeated reads without consuming a scheduler
        admission slot.  Baseline modes always return ``None`` (they do
        not populate the plan cache).
        """
        opts = ExecOptions.resolve(options, **overrides)
        if opts.mode not in ENGINE_MODES:
            return None
        if self._usable_result_cache(opts) is None \
                or self.plan_cache.capacity == 0:
            return None
        explain_kind, _ = split_explain(sql)
        if explain_kind:
            return None
        exec_params, hints = params, None
        key = sql
        auto = (opts.auto_parameterize if opts.auto_parameterize is not None
                else self.auto_parameterize)
        if auto and params is None:
            rewritten = auto_parameterize_sql(sql)
            if rewritten is not None:
                key, extracted = rewritten
                exec_params = extracted
                hints = extracted
        key = normalize_sql(key)
        if hints is not None:
            key += _hint_type_tag(hints)
        prepared = self.plan_cache.peek(key)
        if prepared is None:
            return None
        result = prepared.cached_result(options=opts, params=exec_params)
        if result is not None and opts.telemetry != "off":
            self._query_telemetry.record_result(sql, result)
        return result

    def submit_many(self, sql: str, bindings,
                    session: Optional[Session] = None, block: bool = True,
                    timeout: Optional[float] = None,
                    options: Optional[ExecOptions] = None,
                    **overrides) -> QueryTicket:
        """Submit a batch of bindings; the ticket resolves to a result list.

        The asynchronous form of :meth:`execute_many`: admission control
        treats the whole batch as one unit (one admission slot, one
        ticket), and ``ticket.result()`` returns the ordered
        ``list[QueryResult]``.
        """
        opts = ExecOptions.resolve(options, **overrides)
        return self.scheduler.submit(sql, session=session, block=block,
                                     timeout=timeout, options=opts,
                                     bindings=list(bindings))

    # ------------------------------------------------------------------ #
    # EXPLAIN / EXPLAIN ANALYZE
    # ------------------------------------------------------------------ #
    def explain(self, sql: str, analyze: bool = False,
                options: Optional[ExecOptions] = None, params=None,
                **overrides):
        """The structured :class:`repro.telemetry.ExplainResult` for ``sql``.

        Convenience wrapper over ``execute("EXPLAIN [ANALYZE] ...")``;
        ``sql`` must *not* already carry the EXPLAIN prefix.
        """
        opts = ExecOptions.resolve(options, **overrides)
        if analyze:
            return self._explain_analyze(sql, opts, params).explain
        return self._explain_plan(sql, opts).explain

    def _explain_plan(self, sql: str, opts: ExecOptions) -> QueryResult:
        """EXPLAIN: plan the statement, return the annotated plan text."""
        self._validate_options(sql, opts)
        _, planning, timings = self.prepare(sql)
        explain = build_explain_plan(sql, planning, opts.mode)
        return self._explain_to_result(explain, timings, opts.mode)

    def _explain_analyze(self, sql: str, opts: ExecOptions,
                         params=None) -> QueryResult:
        """EXPLAIN ANALYZE: execute, then annotate the plan with reality."""
        inner = self._execute_resolved(
            sql, opts.merged(collect_operator_stats=True), params)
        explain = build_explain_analyze(sql, inner)
        result = self._explain_to_result(explain, inner.timings, inner.mode)
        result.pipelines = inner.pipelines
        result.ir_instructions = inner.ir_instructions
        result.trace = inner.trace
        result.cached = inner.cached
        result.early_terminated = inner.early_terminated
        result.query_trace = inner.query_trace
        return result

    @staticmethod
    def _explain_to_result(explain, timings: PhaseTimings,
                           mode: str) -> QueryResult:
        lines = explain.render().splitlines()
        result = QueryResult(
            column_names=["plan"],
            column_types=[SQLType.STRING],
            rows=[(line,) for line in lines],
            mode=mode,
            timings=timings)
        result.explain = explain
        return result

    # ------------------------------------------------------------------ #
    def breaker_partitions_for(self, options: ExecOptions) -> int:
        """Resolve the breaker partition count of one execution."""
        if options.breaker_partitions is not None:
            return round_up_pow2(options.breaker_partitions)
        return round_up_pow2(self._workers)

    def _execute_static(self, generated: GeneratedQuery,
                        planning: PlanningResult, timings: PhaseTimings,
                        mode: str, tiers: Optional[dict] = None,
                        use_pruning: bool = True,
                        verify_ir: Optional[bool] = None) -> QueryResult:
        """Single-threaded execution with one statically chosen tier."""
        pipeline_stats: list[PipelineExecution] = []
        state = generated.state

        for index, pipeline in enumerate(generated.pipelines):
            executable, compile_seconds = self._tier_for(pipeline.function,
                                                         index, mode, tiers,
                                                         verify_ir=verify_ir)
            timings.compile += compile_seconds

            total_rows = state.source_row_count(pipeline.pipeline)
            scan = plan_pipeline_scan(pipeline.pipeline, total_rows,
                                      state.params, use_pruning=use_pruning)
            timings.chunks_pruned += scan.chunks_pruned
            timings.chunks_scanned += scan.chunks_scanned
            rows = scan.rows_to_scan
            breaker = BreakerRun(state, pipeline.pipeline, max_slots=1)
            start = time.perf_counter()
            morsels = 0
            stop = False
            for range_begin, range_end in scan.ranges:
                # Morsels stay within one chunk-aligned surviving range.
                for begin in range(range_begin, range_end, self.morsel_size):
                    end = min(begin + self.morsel_size, range_end)
                    executable(breaker.context(0), begin, end)
                    morsels += 1
                    if state.limit_satisfied():
                        state.early_terminated = True
                        stop = True
                        break
                if stop:
                    break
            merge_stats = breaker.merge()
            if pipeline.finish is not None:
                pipeline.finish()
            elapsed = time.perf_counter() - start
            timings.execution += elapsed
            timings.breaker_partitions = max(timings.breaker_partitions,
                                             merge_stats.partitions)
            timings.breaker_partials += merge_stats.partial_entries
            timings.breaker_merge += merge_stats.merge_seconds
            pipeline_stats.append(PipelineExecution(
                name=pipeline.name, rows=rows, morsels=morsels,
                seconds=elapsed, mode_history=[mode],
                ir_instructions=pipeline.function.instruction_count(),
                breaker_partitions=merge_stats.partitions,
                breaker_partial_entries=merge_stats.partial_entries,
                merge_seconds=merge_stats.merge_seconds,
                chunks_scanned=scan.chunks_scanned,
                chunks_pruned=scan.chunks_pruned))

        return self._assemble_result(generated, planning, timings, mode,
                                     pipeline_stats)

    def _tier_for(self, function, index: int, mode: str,
                  tiers: Optional[dict],
                  verify_ir: Optional[bool] = None):
        """Resolve one pipeline's executable, through the tier cache if given.

        On a cache hit the compile cost was already paid by an earlier
        execution, so 0.0 seconds are charged; on a miss the freshly prepared
        tier is stored under ``(pipeline index, mode)`` for the next run.
        """
        if tiers is not None:
            cached = tiers.get((index, mode))
            if cached is not None:
                return cached, 0.0
        executable, compile_seconds = self._prepare_tier(
            function, mode, verify_ir=verify_ir)
        if tiers is not None:
            tiers[(index, mode)] = executable
        return executable, compile_seconds

    def _prepare_tier(self, function, mode: str,
                      verify_ir: Optional[bool] = None):
        """Return ``(callable(state, begin, end), compile_seconds)`` for a tier."""
        from .analysis import verify_bytecode, verify_ir_enabled
        verify = verify_ir_enabled(verify_ir)
        if mode == "ir-interp":
            interpreter = IRInterpreter()

            def run_ir(state, begin, end):
                interpreter.execute(function, [state, begin, end])
            return run_ir, 0.0
        if mode == "bytecode":
            start = time.perf_counter()
            bytecode, _ = translate_function(function)
            if verify:
                verify_bytecode(bytecode)
            elapsed = time.perf_counter() - start
            vm = self._vm

            def run_bytecode(state, begin, end):
                vm.execute(bytecode, [state, begin, end])
            return run_bytecode, elapsed
        if mode in ("unoptimized", "optimized"):
            compiled = compile_function(function, mode, verify=verify)
            return compiled, compiled.compile_seconds
        raise ExecutionError(f"unknown tier {mode!r}")

    def _assemble_result(self, generated: GeneratedQuery,
                         planning: PlanningResult, timings: PhaseTimings,
                         mode: str,
                         pipeline_stats: list[PipelineExecution],
                         trace=None, query_trace=None) -> QueryResult:
        sink = generated.output_sink
        runtime = generated.runtime
        rows = runtime.finish_output(sink)
        rows = strip_sort_keys(rows, sink)
        state = generated.state
        timings.breaker_locks += state.lock_acquisitions
        # Annotate the pipeline stats with the operator chain and sink-side
        # cardinalities while the execution state is still populated (the
        # caller resets it right after assembling the result).
        for stats, pipeline in zip(pipeline_stats, generated.pipelines):
            physical = pipeline.pipeline
            stats.description = physical.describe()
            pipeline_sink = physical.sink
            if isinstance(pipeline_sink, AggregateSink):
                stats.rows_out = state.intermediate_rows.get(
                    pipeline_sink.agg_id)
            elif isinstance(pipeline_sink, OutputSink):
                stats.rows_out = len(rows)
            elif isinstance(pipeline_sink, HashBuildSink) \
                    and state.collect_operator_stats:
                parts = state.join_partitions.get(pipeline_sink.join_id, ())
                stats.rows_out = sum(len(bucket) for part in parts
                                     for bucket in part.values())
        column_names = [name for name, _ in planning.physical.output_columns]
        column_types = [sql_type for _, sql_type
                        in planning.physical.output_columns]
        return QueryResult(
            column_names=column_names,
            column_types=column_types,
            rows=rows,
            mode=mode,
            timings=timings,
            pipelines=pipeline_stats,
            ir_instructions=generated.instruction_count,
            trace=trace,
            early_terminated=state.early_terminated,
            query_trace=query_trace)

    # ------------------------------------------------------------------ #
    def _execute_baseline(self, sql: str, mode: str, params=None,
                          options: Optional[ExecOptions] = None
                          ) -> QueryResult:
        from .prepared import referenced_tables

        opts = options if options is not None else ExecOptions(mode=mode)
        bound, planning, timings = self.prepare(sql)
        values = bind_parameter_values(bound.parameters, params)
        # Baselines re-plan per call, so the probe sits behind the front
        # end; the key uses the literal normalized text (baselines do not
        # auto-parameterize, so differing constants differ textually).
        result_cache = self._usable_result_cache(opts)
        key = versions = None
        if result_cache is not None:
            key = result_cache_key(normalize_sql(sql), mode, values)
            entry = result_cache.get(key, self.catalog.table_version)
            if entry is not None:
                return entry.to_result()
            versions = {name: self.catalog.table_version(name)
                        for name in referenced_tables(planning)}
        result = self._run_baseline(planning, timings, mode, opts, values)
        if result_cache is not None:
            result_cache.put(key, versions, result)
        return result

    def _run_baseline(self, planning: PlanningResult, timings: PhaseTimings,
                      mode: str, opts: ExecOptions,
                      values: list) -> QueryResult:
        from .baselines import VectorizedEngine, VolcanoEngine

        if mode == "volcano":
            engine = VolcanoEngine(
                self.catalog, use_pruning=opts.use_pruning,
                breaker_partitions=self.breaker_partitions_for(opts),
                use_partitioned_breakers=opts.use_partitioned_breakers,
                use_topk_breaker=opts.use_topk_breaker)
        else:
            engine = VectorizedEngine(self.catalog,
                                      use_pruning=opts.use_pruning,
                                      use_topk_breaker=opts.use_topk_breaker)
        start = time.perf_counter()
        rows = engine.execute(planning.physical, values)
        timings.execution = time.perf_counter() - start
        timings.chunks_pruned = engine.chunks_pruned
        timings.chunks_scanned = engine.chunks_scanned
        timings.breaker_partitions = getattr(engine, "breaker_partitions_used",
                                             0)
        timings.breaker_partials = getattr(engine, "breaker_partial_entries",
                                           0)
        timings.breaker_merge = getattr(engine, "breaker_merge_seconds", 0.0)
        pipeline_stats = [
            PipelineExecution(
                name=stats.name, rows=stats.rows_in, morsels=0,
                seconds=stats.seconds, mode_history=[mode],
                chunks_scanned=stats.chunks_scanned,
                chunks_pruned=stats.chunks_pruned,
                description=stats.description,
                rows_out=stats.rows_out)
            for stats in getattr(engine, "pipeline_stats", [])]
        column_names = [name for name, _ in planning.physical.output_columns]
        column_types = [sql_type for _, sql_type
                        in planning.physical.output_columns]
        return QueryResult(column_names=column_names,
                           column_types=column_types,
                           rows=rows, mode=mode, timings=timings,
                           pipelines=pipeline_stats,
                           early_terminated=getattr(engine,
                                                    "early_terminated",
                                                    False))
