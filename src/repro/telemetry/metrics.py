"""Lock-cheap metrics instruments: counters, gauges, log-bucketed histograms.

The registry follows the same discipline PR 5 established for pipeline
breakers: the hot path writes only to *thread-exclusive* shards and the
shards are merged on read.  Every instrument hands each thread its own
mutable cell on first touch (one short-lived lock acquisition per thread
per instrument, ever); after that an update is a plain ``cell[i] += n`` on
a list no other thread writes -- atomic under the GIL, zero shared locks,
and exact (no sampling, no lost updates).

Reads (:meth:`MetricsRegistry.snapshot` and the ``value`` properties) sum
over all shards.  A counter's merged value is therefore *exact* once the
writing threads have quiesced, and monotone at all times; mid-flight reads
may miss increments that race with the read, which is the standard
contract of sharded counters.

Three instrument kinds cover the engine's needs:

* :class:`Counter` -- monotone event counts (queries served, morsels run,
  cache hits).
* :class:`Gauge` -- a level that goes up and down (busy workers, running
  queries).  Sharded the same way; the merged value is the sum of
  per-thread deltas.
* :class:`Histogram` -- log-bucketed value distributions (latencies,
  compile seconds).  Buckets double from 1 microsecond up, so 30 buckets
  span 1 us .. ~9 min with <= 2x relative error, and recording is two list
  increments -- no allocation, no lock.

Derived values that already live behind their own synchronization
(scheduler stats, plan-cache stats, pool liveness) are exposed through
*callbacks* registered on the registry: they cost nothing until a snapshot
is taken.
"""

from __future__ import annotations

import threading
from typing import Callable, Optional

#: Histogram bucket base: bucket 0 holds values < 1 microsecond, bucket i
#: holds values in ``[BASE * 2**(i-1), BASE * 2**i)``.
HISTOGRAM_BASE = 1e-6
#: Number of buckets (the last one is a catch-all for huge values).
HISTOGRAM_BUCKETS = 30


class _Sharded:
    """Base: per-thread cells created on first touch, merged on read."""

    __slots__ = ("name", "description", "_local", "_cells", "_lock")

    def __init__(self, name: str = "", description: str = ""):
        self.name = name
        self.description = description
        self._local = threading.local()
        self._cells: list = []
        self._lock = threading.Lock()

    def _new_cell(self):  # pragma: no cover - overridden
        raise NotImplementedError

    def _cell(self):
        cell = getattr(self._local, "cell", None)
        if cell is None:
            cell = self._new_cell()
            with self._lock:
                self._cells.append(cell)
            self._local.cell = cell
        return cell

    def _merged_cells(self) -> list:
        with self._lock:
            return list(self._cells)


class Counter(_Sharded):
    """A monotonically increasing sharded counter."""

    __slots__ = ()

    def _new_cell(self):
        return [0]

    def inc(self, amount: int = 1) -> None:
        self._cell()[0] += amount

    @property
    def value(self) -> int:
        return sum(cell[0] for cell in self._merged_cells())


class Gauge(_Sharded):
    """A sharded up/down level; the merged value sums per-thread deltas."""

    __slots__ = ()

    def _new_cell(self):
        return [0]

    def inc(self, amount: int = 1) -> None:
        self._cell()[0] += amount

    def dec(self, amount: int = 1) -> None:
        self._cell()[0] -= amount

    @property
    def value(self) -> int:
        return sum(cell[0] for cell in self._merged_cells())


def bucket_index(value: float) -> int:
    """The log2 bucket of ``value`` (seconds or any non-negative number)."""
    if value < HISTOGRAM_BASE:
        return 0
    scaled = int(value / HISTOGRAM_BASE)
    return min(scaled.bit_length(), HISTOGRAM_BUCKETS - 1)


def bucket_upper_bound(index: int) -> float:
    """Inclusive upper bound of bucket ``index`` (+inf for the last)."""
    if index >= HISTOGRAM_BUCKETS - 1:
        return float("inf")
    return HISTOGRAM_BASE * (2 ** index)


class Histogram(_Sharded):
    """A log-bucketed histogram of non-negative values (seconds, counts).

    Each thread's shard is ``[bucket_0 .. bucket_{n-1}, count, sum]`` -- one
    flat list, so recording is two plain increments on thread-exclusive
    storage.
    """

    __slots__ = ()

    _COUNT = HISTOGRAM_BUCKETS
    _SUM = HISTOGRAM_BUCKETS + 1

    def _new_cell(self):
        return [0] * HISTOGRAM_BUCKETS + [0, 0.0]

    def observe(self, value: float) -> None:
        cell = self._cell()
        cell[bucket_index(value)] += 1
        cell[self._COUNT] += 1
        cell[self._SUM] += value

    # ------------------------------------------------------------------ #
    def merged(self) -> tuple[list[int], int, float]:
        """``(buckets, count, sum)`` merged across all thread shards."""
        buckets = [0] * HISTOGRAM_BUCKETS
        count = 0
        total = 0.0
        for cell in self._merged_cells():
            for i in range(HISTOGRAM_BUCKETS):
                buckets[i] += cell[i]
            count += cell[self._COUNT]
            total += cell[self._SUM]
        return buckets, count, total

    @property
    def count(self) -> int:
        return self.merged()[1]

    @property
    def sum(self) -> float:
        return self.merged()[2]

    def quantile(self, q: float) -> float:
        """Approximate quantile: the upper bound of the covering bucket."""
        buckets, count, _ = self.merged()
        if count == 0:
            return 0.0
        target = q * count
        cumulative = 0
        for index, n in enumerate(buckets):
            cumulative += n
            if cumulative >= target:
                bound = bucket_upper_bound(index)
                if bound == float("inf"):
                    # Catch-all bucket: fall back to the mean of the tail.
                    return self.sum / count
                return bound
        return bucket_upper_bound(HISTOGRAM_BUCKETS - 1)

    def snapshot(self) -> dict:
        buckets, count, total = self.merged()
        return {
            "count": count,
            "sum": total,
            "mean": (total / count) if count else 0.0,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
            "buckets": buckets,
        }


class MetricsRegistry:
    """Per-database instrument registry with a nested-dict snapshot.

    Instruments are created on first use and keyed by dotted names
    (``"scheduler.queue_seconds"``); :meth:`snapshot` nests them by the
    dotted path.  ``register_callback`` adds zero-hot-path-cost derived
    values, evaluated only at snapshot time (a failing callback reports
    ``None`` instead of breaking the snapshot -- monitoring must never
    take the engine down).
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._instruments: dict[str, object] = {}
        self._callbacks: dict[str, Callable[[], object]] = {}

    # ------------------------------------------------------------------ #
    def _get_or_create(self, name: str, factory, kind):
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = factory(name)
                self._instruments[name] = instrument
            elif not isinstance(instrument, kind):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(instrument).__name__}, not {kind.__name__}")
            return instrument

    def counter(self, name: str, description: str = "") -> Counter:
        return self._get_or_create(
            name, lambda n: Counter(n, description), Counter)

    def gauge(self, name: str, description: str = "") -> Gauge:
        return self._get_or_create(
            name, lambda n: Gauge(n, description), Gauge)

    def histogram(self, name: str, description: str = "") -> Histogram:
        return self._get_or_create(
            name, lambda n: Histogram(n, description), Histogram)

    def register_callback(self, name: str,
                          callback: Callable[[], object]) -> None:
        """Register a snapshot-time derived value under ``name``."""
        with self._lock:
            self._callbacks[name] = callback

    def get(self, name: str) -> Optional[object]:
        """The instrument registered under ``name``, or ``None``."""
        with self._lock:
            return self._instruments.get(name)

    # ------------------------------------------------------------------ #
    def flat_snapshot(self) -> dict[str, object]:
        """``dotted name -> value`` for every instrument and callback."""
        with self._lock:
            instruments = dict(self._instruments)
            callbacks = dict(self._callbacks)
        flat: dict[str, object] = {}
        for name, instrument in instruments.items():
            if isinstance(instrument, Histogram):
                flat[name] = instrument.snapshot()
            else:
                flat[name] = instrument.value
        for name, callback in callbacks.items():
            try:
                flat[name] = callback()
            except Exception:
                flat[name] = None
        return flat

    def snapshot(self) -> dict:
        """All metrics as a nested dict keyed by the dotted-name segments."""
        nested: dict = {}
        for name, value in sorted(self.flat_snapshot().items()):
            parts = name.split(".")
            node = nested
            for part in parts[:-1]:
                child = node.get(part)
                if not isinstance(child, dict):
                    child = {}
                    node[part] = child
                node = child
            leaf = parts[-1]
            if isinstance(node.get(leaf), dict) and isinstance(value, dict):
                node[leaf].update(value)
            else:
                node[leaf] = value
        return nested

    # ------------------------------------------------------------------ #
    def to_json_lines(self) -> str:
        from .export import snapshot_to_json_lines
        return snapshot_to_json_lines(self.flat_snapshot())

    def to_prometheus(self) -> str:
        from .export import snapshot_to_prometheus
        return snapshot_to_prometheus(self.flat_snapshot(),
                                      registry=self)
