"""Engine-wide telemetry: metrics, unified tracing, EXPLAIN ANALYZE.

Three pillars (see DESIGN.md, "Telemetry & tracing"):

* :class:`MetricsRegistry` -- per-database instruments (sharded counters,
  gauges, log-bucketed histograms; zero shared locks on the hot path) plus
  snapshot-time callbacks over existing stats carriers.  Exposed as
  ``Database.metrics``; export with :meth:`MetricsRegistry.to_json_lines`
  / :meth:`MetricsRegistry.to_prometheus`.
* :class:`QueryTrace` -- the unified query-lifecycle trace (phase spans,
  per-morsel events, adaptive tier-switch events with their cost-model
  trigger), attached to every engine result as ``result.query_trace``.
* ``EXPLAIN [ANALYZE]`` -- annotated plans through the ordinary statement
  API, in all execution modes (see :mod:`repro.telemetry.explain`).
"""

from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    HISTOGRAM_BASE,
    HISTOGRAM_BUCKETS,
    bucket_index,
    bucket_upper_bound,
)
from .trace import (
    ExecutionTrace,
    QueryTrace,
    Span,
    TierSwitchEvent,
    TraceEvent,
    render_trace,
)
from .explain import (
    ExplainResult,
    PipelineAnnotation,
    build_explain_analyze,
    build_explain_plan,
    split_explain,
)
from .export import (
    prometheus_name,
    snapshot_to_json_lines,
    snapshot_to_prometheus,
    trace_to_json,
)
from .recorder import QueryTelemetry, TELEMETRY_LEVELS

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "HISTOGRAM_BASE", "HISTOGRAM_BUCKETS",
    "bucket_index", "bucket_upper_bound",
    "ExecutionTrace", "QueryTrace", "Span", "TierSwitchEvent",
    "TraceEvent", "render_trace",
    "ExplainResult", "PipelineAnnotation", "build_explain_analyze",
    "build_explain_plan", "split_explain",
    "prometheus_name", "snapshot_to_json_lines", "snapshot_to_prometheus",
    "trace_to_json",
    "QueryTelemetry", "TELEMETRY_LEVELS",
]
