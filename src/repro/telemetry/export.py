"""Metric snapshot exporters: JSON lines and Prometheus text format.

Both operate on a *flat* snapshot (``dotted name -> value``) as produced
by :meth:`repro.telemetry.MetricsRegistry.flat_snapshot`, so they can also
serialize externally assembled values.  Histograms arrive as the nested
dicts their ``snapshot()`` produces and are expanded into the idiomatic
form of each format (one JSON object per metric; Prometheus
``_bucket{le=...}`` / ``_sum`` / ``_count`` series).
"""

from __future__ import annotations

import json
import re
from typing import Optional

from .metrics import bucket_upper_bound

#: Prefix of every exported Prometheus metric name.
PROMETHEUS_PREFIX = "repro_"

_NAME_SANITIZE = re.compile(r"[^a-zA-Z0-9_:]")


def _is_histogram_snapshot(value) -> bool:
    return (isinstance(value, dict)
            and "buckets" in value and "count" in value and "sum" in value)


def snapshot_to_json_lines(flat: dict) -> str:
    """One JSON object per line: ``{"name": ..., ...value fields}``.

    Scalar metrics serialize as ``{"name": n, "value": v}``; histograms
    inline their summary fields (count/sum/mean/p50/p95/p99/buckets).
    """
    lines = []
    for name in sorted(flat):
        value = flat[name]
        if _is_histogram_snapshot(value):
            record = {"name": name}
            record.update(value)
        else:
            record = {"name": name, "value": value}
        lines.append(json.dumps(record))
    return "\n".join(lines) + ("\n" if lines else "")


def prometheus_name(name: str) -> str:
    """Map a dotted metric name onto a valid Prometheus metric name."""
    return PROMETHEUS_PREFIX + _NAME_SANITIZE.sub("_", name.replace(".", "_"))


def snapshot_to_prometheus(flat: dict, registry=None) -> str:
    """Render a flat snapshot in the Prometheus text exposition format.

    Histogram metrics become cumulative ``_bucket{le="..."}`` series plus
    ``_sum`` and ``_count``, matching the native Prometheus histogram
    type; scalar metrics become plain samples.  Non-numeric callback
    values are skipped (Prometheus samples must be numbers).
    """
    lines: list[str] = []
    for name in sorted(flat):
        value = flat[name]
        metric = prometheus_name(name)
        if _is_histogram_snapshot(value):
            instrument = registry.get(name) if registry is not None else None
            description = getattr(instrument, "description", "") or ""
            if description:
                lines.append(f"# HELP {metric} {description}")
            lines.append(f"# TYPE {metric} histogram")
            cumulative = 0
            for index, count in enumerate(value["buckets"]):
                cumulative += count
                bound = bucket_upper_bound(index)
                le = "+Inf" if bound == float("inf") else repr(bound)
                lines.append(
                    f'{metric}_bucket{{le="{le}"}} {cumulative}')
            lines.append(f"{metric}_sum {value['sum']}")
            lines.append(f"{metric}_count {value['count']}")
            continue
        if isinstance(value, bool):
            value = int(value)
        if not isinstance(value, (int, float)):
            continue
        instrument = registry.get(name) if registry is not None else None
        description = getattr(instrument, "description", "") or ""
        if description:
            lines.append(f"# HELP {metric} {description}")
        kind = ("counter" if type(instrument).__name__ == "Counter"
                else "gauge")
        lines.append(f"# TYPE {metric} {kind}")
        lines.append(f"{metric} {value}")
    return "\n".join(lines) + ("\n" if lines else "")


def trace_to_json(trace, indent: Optional[int] = None) -> str:
    """Serialize a :class:`repro.telemetry.QueryTrace` (or duck) to JSON."""
    to_json = getattr(trace, "to_json", None)
    if to_json is not None:
        return to_json(indent=indent)
    return json.dumps(trace, indent=indent)


__all__ = ["snapshot_to_json_lines", "snapshot_to_prometheus",
           "prometheus_name", "trace_to_json", "PROMETHEUS_PREFIX"]
