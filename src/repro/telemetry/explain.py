"""EXPLAIN / EXPLAIN ANALYZE: annotated plans through the statement API.

``EXPLAIN <select>`` is recognized lexically in front of the parser (the
SQL dialect itself is SELECT-only) and routed by ``Database.execute`` --
and therefore transparently by ``submit`` and sessions too:

* ``EXPLAIN <sql>`` plans the statement without executing it and returns
  the pipeline-decomposed physical plan with optimizer row estimates.
* ``EXPLAIN ANALYZE <sql>`` executes the statement (in whatever execution
  mode the options select -- all 5 engine tiers and both baselines) and
  annotates every pipeline with measured rows in/out, morsel counts,
  wall-clock seconds, the tier history, and scan-pruning detail.

The returned :class:`~repro.engine.QueryResult` carries one plan-text row
per line (column ``plan``) plus the structured :class:`ExplainResult` on
``result.explain``; for ANALYZE, ``result.explain.result`` holds the inner
query's full result so callers can cross-check cardinalities.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Optional

#: ``EXPLAIN [ANALYZE]`` prefix, case-insensitive, leading whitespace ok.
_EXPLAIN_RE = re.compile(r"^\s*explain\s+(analyze\s+)?", re.IGNORECASE)


def split_explain(sql: str) -> tuple[Optional[str], str]:
    """``(kind, inner_sql)`` where kind is ``"plan"`` / ``"analyze"`` / None.

    ``None`` means the statement is not an EXPLAIN and must be executed
    as-is.
    """
    match = _EXPLAIN_RE.match(sql)
    if match is None:
        return None, sql
    kind = "analyze" if match.group(1) else "plan"
    return kind, sql[match.end():]


@dataclass
class PipelineAnnotation:
    """One pipeline of an explained plan, with measurements if analyzed."""

    name: str
    description: str
    estimated_rows: float = 0.0
    #: Rows entering the pipeline (after scan pruning); None when unknown.
    rows_in: Optional[int] = None
    #: Rows leaving the pipeline through its sink (hash-table entries for a
    #: build, groups for an aggregation, result rows for the output sink).
    rows_out: Optional[int] = None
    morsels: Optional[int] = None
    seconds: Optional[float] = None
    mode_history: list[str] = field(default_factory=list)
    chunks_scanned: Optional[int] = None
    chunks_pruned: Optional[int] = None

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "description": self.description,
            "estimated_rows": self.estimated_rows,
            "rows_in": self.rows_in,
            "rows_out": self.rows_out,
            "morsels": self.morsels,
            "seconds": self.seconds,
            "mode_history": self.mode_history,
            "chunks_scanned": self.chunks_scanned,
            "chunks_pruned": self.chunks_pruned,
        }


@dataclass
class ExplainResult:
    """The structured outcome of EXPLAIN / EXPLAIN ANALYZE."""

    sql: str
    mode: str
    analyzed: bool
    pipelines: list[PipelineAnnotation]
    #: Total / per-phase seconds (ANALYZE only; the inner PhaseTimings).
    timings: Optional[object] = None
    #: The inner query's full result (ANALYZE only).
    result: Optional[object] = None

    @property
    def output_rows(self) -> Optional[int]:
        """Measured result cardinality (the output pipeline's rows_out)."""
        if not self.pipelines:
            return None
        return self.pipelines[-1].rows_out

    # ------------------------------------------------------------------ #
    def render(self) -> str:
        lines = [self._header()]
        for annotation in self.pipelines:
            lines.append(f"{annotation.name}: {annotation.description}")
            detail = self._detail(annotation)
            if detail:
                lines.append(f"    {detail}")
        if self.analyzed and self.result is not None:
            trace = getattr(self.result, "query_trace", None)
            if trace is not None:
                for event in getattr(trace, "tier_switches", ()):
                    lines.append(
                        f"    tier switch: {event.pipeline} "
                        f"{event.from_mode}->{event.to_mode} at "
                        f"{event.at * 1000:.2f} ms")
        return "\n".join(lines)

    def _header(self) -> str:
        if not self.analyzed:
            return f"EXPLAIN (mode={self.mode})"
        parts = [f"EXPLAIN ANALYZE (mode={self.mode}"]
        if self.timings is not None:
            parts.append(f", total={self.timings.total * 1000:.2f} ms"
                         f", execution={self.timings.execution * 1000:.2f} ms")
        if self.output_rows is not None:
            parts.append(f", rows={self.output_rows}")
        if self.result is not None and getattr(self.result, "cached", False):
            source = getattr(self.result, "cache_source", None)
            label = ("result-cache" if source == "result" else "plan-cache")
            parts.append(f", cached={label}")
        return "".join(parts) + ")"

    @staticmethod
    def _detail(a: PipelineAnnotation) -> str:
        parts: list[str] = []
        if not a.mode_history and a.rows_in is None:
            # Plain EXPLAIN: only the optimizer estimate is available.
            return f"estimated rows={a.estimated_rows:.0f}"
        if a.rows_in is not None:
            rows = f"rows={a.rows_in}"
            if a.rows_out is not None:
                rows += f" -> {a.rows_out}"
            parts.append(rows)
        if a.morsels is not None:
            parts.append(f"morsels={a.morsels}")
        if a.seconds is not None:
            parts.append(f"time={a.seconds * 1000:.2f} ms")
        if a.mode_history:
            parts.append(f"modes={'->'.join(a.mode_history)}")
        if a.chunks_scanned is not None and a.chunks_pruned is not None \
                and (a.chunks_scanned or a.chunks_pruned):
            parts.append(f"chunks={a.chunks_scanned} scanned"
                         f"/{a.chunks_pruned} pruned")
        return " | ".join(parts)

    def to_dict(self) -> dict:
        out = {
            "sql": self.sql,
            "mode": self.mode,
            "analyzed": self.analyzed,
            "pipelines": [a.to_dict() for a in self.pipelines],
            "output_rows": self.output_rows,
        }
        if self.timings is not None:
            out["total_seconds"] = self.timings.total
            out["execution_seconds"] = self.timings.execution
        return out


# ---------------------------------------------------------------------- #
def build_explain_plan(sql: str, planning, mode: str) -> ExplainResult:
    """EXPLAIN (no execution): plan structure plus optimizer estimates."""
    annotations = [
        PipelineAnnotation(name=f"P{pipeline.pipeline_id}",
                           description=pipeline.describe(),
                           estimated_rows=pipeline.estimated_rows)
        for pipeline in planning.physical.pipelines
    ]
    return ExplainResult(sql=sql, mode=mode, analyzed=False,
                         pipelines=annotations)


def build_explain_analyze(sql: str, result) -> ExplainResult:
    """EXPLAIN ANALYZE: per-pipeline measurements from an executed result.

    ``result`` is the inner :class:`~repro.engine.QueryResult`; every
    execution path (static / parallel / adaptive / both baselines) fills
    ``result.pipelines`` with per-pipeline stats including ``description``
    and ``rows_out``, which is all this builder needs.
    """
    annotations = []
    for stats in result.pipelines:
        annotations.append(PipelineAnnotation(
            name=stats.name,
            description=stats.description,
            rows_in=stats.rows,
            rows_out=stats.rows_out,
            morsels=stats.morsels,
            seconds=stats.seconds,
            mode_history=list(stats.mode_history),
            chunks_scanned=stats.chunks_scanned,
            chunks_pruned=stats.chunks_pruned))
    return ExplainResult(sql=sql, mode=result.mode, analyzed=True,
                         pipelines=annotations, timings=result.timings,
                         result=result)
