"""Unified query-lifecycle tracing (subsumes paper Fig. 14 traces).

Historically the engine had two disjoint records of what happened during a
query: :class:`~repro.engine.PhaseTimings` (per-phase wall-clock totals)
and the morsel-level ``ExecutionTrace`` the adaptive executor produced for
the Fig. 14 reproduction.  This module unifies them:

* :class:`TraceEvent` / :class:`ExecutionTrace` -- the original morsel /
  compile event model, unchanged (``repro.adaptive.trace`` re-exports it
  for backwards compatibility).
* :class:`Span` -- one named interval of the query lifecycle
  (``parse`` / ``bind`` / ``plan`` / ``codegen`` / ``compile`` /
  ``pipeline`` / ``execution``), nesting under the whole-query span.
* :class:`TierSwitchEvent` -- one adaptive tier-switch *decision* with the
  trigger that caused it (the Fig. 7 cost-model evaluation: projected
  remaining seconds per tier, observed tuple rate, progress), so a future
  history-informed policy can replay why the engine switched.
* :class:`QueryTrace` -- an :class:`ExecutionTrace` extended with a stable
  query id, the SQL text, lifecycle spans and tier-switch events, plus
  ``to_dict`` / ``to_json`` for machine-readable dumps.

All timestamps are seconds relative to the start of the query (the same
clock base the morsel events always used).  Phase spans derived from a
:class:`PhaseTimings` are laid out sequentially in phase order -- they
reconstruct the lifecycle from per-phase totals, so their offsets are
logical rather than measured wall-clock instants (morsel events, by
contrast, carry measured offsets).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Optional


@dataclass
class TraceEvent:
    """One morsel execution or compilation on one thread."""

    thread_id: int
    start: float
    end: float
    kind: str                 # "morsel" | "compile" | "finish"
    pipeline: str
    mode: str                 # bytecode | unoptimized | optimized
    tuples: int = 0

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class ExecutionTrace:
    """All events of one query execution."""

    label: str = ""
    events: list[TraceEvent] = field(default_factory=list)

    def add(self, event: TraceEvent) -> None:
        self.events.append(event)

    @property
    def duration(self) -> float:
        if not self.events:
            return 0.0
        return max(event.end for event in self.events)

    def events_for_thread(self, thread_id: int) -> list[TraceEvent]:
        return sorted((e for e in self.events if e.thread_id == thread_id),
                      key=lambda e: e.start)

    def thread_ids(self) -> list[int]:
        return sorted({event.thread_id for event in self.events})

    def pipelines(self) -> list[str]:
        seen: list[str] = []
        for event in sorted(self.events, key=lambda e: e.start):
            if event.pipeline not in seen:
                seen.append(event.pipeline)
        return seen

    def mode_switches(self) -> list[tuple[str, str]]:
        """Pipelines and the sequence of modes they were executed in."""
        order: dict[str, list[str]] = {}
        for event in sorted(self.events, key=lambda e: e.start):
            if event.kind != "morsel":
                continue
            modes = order.setdefault(event.pipeline, [])
            if not modes or modes[-1] != event.mode:
                modes.append(event.mode)
        return [(pipeline, "->".join(modes))
                for pipeline, modes in order.items()]


@dataclass
class Span:
    """One named interval of the query lifecycle."""

    name: str
    start: float
    end: float
    kind: str = "phase"       # "phase" | "pipeline" | "queue"
    meta: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start

    def to_dict(self) -> dict:
        out = {"name": self.name, "start": self.start, "end": self.end,
               "kind": self.kind}
        if self.meta:
            out["meta"] = self.meta
        return out


@dataclass
class TierSwitchEvent:
    """One adaptive tier-switch decision, with the trigger that caused it.

    ``trigger`` carries the cost-model evaluation the Fig. 7 policy based
    the decision on: ``decision`` (the chosen action), ``keep_seconds`` /
    ``unoptimized_seconds`` / ``optimized_seconds`` (projected remaining
    seconds per tier), ``rate`` (observed tuples/second), plus the
    progress estimate (``processed`` / ``total`` tuples) and the worker
    count the extrapolation assumed.
    """

    pipeline: str
    from_mode: str
    to_mode: str
    at: float                 # seconds since query start
    synchronous: bool = False
    trigger: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {"pipeline": self.pipeline, "from_mode": self.from_mode,
                "to_mode": self.to_mode, "at": self.at,
                "synchronous": self.synchronous, "trigger": self.trigger}


#: Lifecycle phases, in order, as attributes of ``PhaseTimings``.
_PHASES = ("queue", "parse", "bind", "plan", "codegen", "compile",
           "execution")


@dataclass
class QueryTrace(ExecutionTrace):
    """The unified trace of one query execution.

    Extends the morsel-level :class:`ExecutionTrace` with identity
    (``query_id``, ``sql``, ``mode``), lifecycle :class:`Span` s and
    adaptive :class:`TierSwitchEvent` s.  Produced for every engine-mode
    execution at telemetry level ``basic`` and above; morsel events are
    only populated at level ``trace`` (they are per-morsel and therefore
    not free).
    """

    query_id: str = ""
    sql: str = ""
    mode: str = ""
    spans: list[Span] = field(default_factory=list)
    tier_switches: list[TierSwitchEvent] = field(default_factory=list)

    # ------------------------------------------------------------------ #
    def add_span(self, name: str, start: float, end: float,
                 kind: str = "phase", **meta) -> Span:
        span = Span(name, start, end, kind, dict(meta))
        self.spans.append(span)
        return span

    def record_tier_switch(self, pipeline: str, from_mode: str,
                           to_mode: str, at: float,
                           synchronous: bool = False,
                           trigger: Optional[dict] = None) -> TierSwitchEvent:
        event = TierSwitchEvent(pipeline, from_mode, to_mode, at,
                                synchronous, trigger or {})
        self.tier_switches.append(event)
        return event

    def add_phase_spans(self, timings) -> None:
        """Lay the :class:`PhaseTimings` phases out as sequential spans.

        Zero-duration phases (e.g. parse/bind/plan on a cached execution)
        are skipped: a span records that a phase *ran*.
        """
        cursor = 0.0
        for phase in _PHASES:
            seconds = getattr(timings, phase, 0.0)
            if seconds <= 0.0:
                continue
            kind = "queue" if phase == "queue" else "phase"
            self.add_span(phase, cursor, cursor + seconds, kind=kind)
            cursor += seconds

    def add_pipeline_spans(self, pipeline_stats) -> None:
        """One span per executed pipeline (from ``PipelineExecution``)."""
        cursor = 0.0
        for stats in pipeline_stats:
            self.add_span(stats.name, cursor, cursor + stats.seconds,
                          kind="pipeline", rows=stats.rows,
                          morsels=stats.morsels,
                          modes="->".join(stats.mode_history))
            cursor += stats.seconds

    # ------------------------------------------------------------------ #
    @classmethod
    def from_execution(cls, trace: ExecutionTrace, query_id: str = "",
                       sql: str = "", mode: str = "") -> "QueryTrace":
        """Wrap a plain :class:`ExecutionTrace` (e.g. from the simulator)."""
        if isinstance(trace, cls):
            out = trace
        else:
            out = cls(label=trace.label, events=list(trace.events))
        if query_id:
            out.query_id = query_id
        if sql:
            out.sql = sql
        if mode:
            out.mode = mode or out.label
        return out

    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        return {
            "query_id": self.query_id,
            "sql": self.sql,
            "mode": self.mode,
            "label": self.label,
            "duration": self.duration,
            "spans": [span.to_dict() for span in self.spans],
            "tier_switches": [event.to_dict()
                              for event in self.tier_switches],
            "events": [{"thread_id": e.thread_id, "start": e.start,
                        "end": e.end, "kind": e.kind,
                        "pipeline": e.pipeline, "mode": e.mode,
                        "tuples": e.tuples}
                       for e in self.events],
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)


_MODE_CHARS = {"bytecode": "b", "unoptimized": "u", "optimized": "o",
               "compile": "C", "finish": "f"}


def render_trace(trace: ExecutionTrace, width: int = 100) -> str:
    """Render the trace as an ASCII per-thread timeline (Fig. 14 style).

    Each character cell covers ``duration / width`` seconds; morsel cells show
    the execution mode (``b``/``u``/``o``), compilations show ``C``.
    """
    duration = trace.duration
    if duration <= 0:
        return f"{trace.label}: (empty trace)"
    scale = width / duration
    lines = [f"{trace.label}  (total {duration * 1000:.2f} ms, "
             f"1 cell = {duration / width * 1000:.3f} ms)"]
    for thread_id in trace.thread_ids():
        cells = [" "] * width
        for event in trace.events_for_thread(thread_id):
            start_cell = min(int(event.start * scale), width - 1)
            end_cell = min(max(int(event.end * scale), start_cell + 1), width)
            char = ("C" if event.kind == "compile"
                    else _MODE_CHARS.get(event.mode, "?"))
            for cell in range(start_cell, end_cell):
                cells[cell] = char
        lines.append(f"thread {thread_id}: |{''.join(cells)}|")
    lines.append("legend: b=bytecode morsel, u=unoptimized morsel, "
                 "o=optimized morsel, C=compilation")
    if isinstance(trace, QueryTrace) and trace.tier_switches:
        for event in trace.tier_switches:
            lines.append(
                f"switch: {event.pipeline} {event.from_mode}->"
                f"{event.to_mode} at {event.at * 1000:.2f} ms")
    return "\n".join(lines)
