"""Per-database query-lifecycle recorder.

One :class:`QueryTelemetry` instance lives on every ``Database``.  It
pre-resolves all per-query instruments once (so the per-query hot path is
a handful of sharded-counter increments, no registry lookups, no string
formatting) and stamps every result with a stable query id and a
:class:`~repro.telemetry.QueryTrace`.

Telemetry levels (``ExecOptions.telemetry``):

* ``"off"``   -- nothing is recorded; the recorder is never called.
* ``"basic"`` -- the default: counters/histograms above plus a
  :class:`QueryTrace` with lifecycle phase spans and adaptive tier-switch
  events (already collected by the executor at zero extra cost).
* ``"trace"`` -- additionally collects the per-morsel event timeline
  (implies ``collect_trace`` for engine modes).
"""

from __future__ import annotations

import itertools

from .metrics import MetricsRegistry
from .trace import QueryTrace

#: Valid values of ``ExecOptions.telemetry``.
TELEMETRY_LEVELS = ("off", "basic", "trace")


class QueryTelemetry:
    """Records one database's query lifecycle into its metrics registry."""

    def __init__(self, registry: MetricsRegistry):
        self.registry = registry
        #: Monotone query-id source; ``itertools.count`` is GIL-atomic.
        self._ids = itertools.count(1)
        counter = registry.counter
        histogram = registry.histogram
        self.queries = counter(
            "query.count", "Queries executed (all modes)")
        self.failed = counter("query.failed", "Queries that raised")
        self.cached = counter(
            "query.cached",
            "Executions that reused a cache (plan or result)")
        self.result_cached = counter(
            "query.result_cached",
            "Executions served from the result cache (no execution)")
        self.rows = counter("query.rows", "Result rows returned")
        self.early_terminated = counter(
            "query.early_terminated", "LIMIT quota cancelled the scan")
        self.seconds = histogram(
            "query.seconds", "Per-query total seconds (work, not queue)")
        self.execution_seconds = histogram(
            "query.execution_seconds", "Per-query execution-phase seconds")
        self.compile_seconds = histogram(
            "query.compile_seconds",
            "Per-query bytecode-translation + tier-compilation seconds")
        self.chunks_scanned = counter(
            "storage.chunks_scanned", "Storage chunks scanned")
        self.chunks_pruned = counter(
            "storage.chunks_pruned", "Storage chunks skipped by zone maps")
        self.breaker_partials = counter(
            "breaker.partial_entries",
            "Per-worker partial entries merged by pipeline breakers")
        self.breaker_locks = counter(
            "breaker.lock_acquisitions",
            "Fallback-lock acquisitions (0 on the partitioned path)")
        self.breaker_merge_seconds = histogram(
            "breaker.merge_seconds", "Per-query breaker merge seconds")
        self.tier_switches = counter(
            "adaptive.tier_switches", "Adaptive tier-switch decisions")
        self._mode_counters: dict[str, object] = {}

    # ------------------------------------------------------------------ #
    def next_query_id(self) -> str:
        return f"q{next(self._ids):08d}"

    def _mode_counter(self, mode: str):
        counter = self._mode_counters.get(mode)
        if counter is None:
            counter = self.registry.counter(
                f"query.by_mode.{mode}", f"Queries executed in mode {mode}")
            self._mode_counters[mode] = counter
        return counter

    # ------------------------------------------------------------------ #
    def record_failure(self, mode: str = "") -> None:
        self.failed.inc()

    def record_result(self, sql: str, result) -> None:
        """Record one finished execution and attach its query trace.

        ``result`` is a :class:`~repro.engine.QueryResult`.  If an
        executor already built a :class:`QueryTrace` (adaptive / static
        parallel runs), it is reused and completed; otherwise a fresh one
        with lifecycle spans only is attached.
        """
        timings = result.timings
        self.queries.inc()
        self._mode_counter(result.mode).inc()
        self.rows.inc(len(result.rows))
        if result.cached:
            self.cached.inc()
            if getattr(result, "cache_source", None) == "result":
                self.result_cached.inc()
        if result.early_terminated:
            self.early_terminated.inc()
        self.seconds.observe(timings.total)
        self.execution_seconds.observe(timings.execution)
        if timings.compile > 0.0:
            self.compile_seconds.observe(timings.compile)
        if timings.chunks_scanned:
            self.chunks_scanned.inc(timings.chunks_scanned)
        if timings.chunks_pruned:
            self.chunks_pruned.inc(timings.chunks_pruned)
        if timings.breaker_partials:
            self.breaker_partials.inc(timings.breaker_partials)
        if timings.breaker_locks:
            self.breaker_locks.inc(timings.breaker_locks)
        if timings.breaker_merge > 0.0:
            self.breaker_merge_seconds.observe(timings.breaker_merge)

        trace = result.query_trace
        if trace is None:
            trace = QueryTrace(label=result.mode)
            result.query_trace = trace
        trace.query_id = self.next_query_id()
        trace.sql = sql
        trace.mode = result.mode
        if not trace.spans:
            trace.add_phase_spans(timings)
            trace.add_pipeline_spans(result.pipelines)
        if trace.tier_switches:
            self.tier_switches.inc(len(trace.tier_switches))
