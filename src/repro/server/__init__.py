"""Network serving front end: asyncio wire protocol over the scheduler.

The package that turns the engine into a reachable service:

* :mod:`repro.server.protocol` -- the length-prefixed binary frame codec
  shared by the server and the blocking client (:mod:`repro.client`).
* :class:`QueryServer` -- the asyncio TCP server; one engine
  :class:`~repro.scheduler.Session` and prepared-statement registry per
  connection, ``Database.submit`` admission control surfaced as explicit
  ``BUSY`` backpressure frames, bounded result-batch streaming, graceful
  drain on shutdown.

``Database.serve()`` is the user-facing entry point (see
:mod:`repro.engine`); ``repro.client.connect()`` is the matching client.
"""

from .protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    decode_header,
    decode_payload,
    decode_result_rows,
    encode_frame,
)
from .server import (
    DEFAULT_BATCH_ROWS,
    MAX_BATCH_ROWS,
    QueryServer,
    error_code_for,
)

__all__ = [
    "QueryServer",
    "DEFAULT_BATCH_ROWS", "MAX_BATCH_ROWS",
    "PROTOCOL_VERSION", "MAX_FRAME_BYTES",
    "encode_frame", "decode_header", "decode_payload",
    "decode_result_rows", "error_code_for",
]
